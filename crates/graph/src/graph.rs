//! The validated task graph.

use crate::error::GraphError;
use crate::quantity::{Area, Latency};
use crate::task::Task;
use std::collections::HashSet;
use std::fmt;

/// Index of a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Raw index of the task in [`TaskGraph::tasks`].
    pub const fn index(self) -> usize {
        self.0
    }

    /// Builds a task id from a raw index. The id is only meaningful for the
    /// graph whose task at that index is intended; passing it to another
    /// graph addresses whatever task sits at the same position there.
    pub const fn from_index(index: usize) -> TaskId {
        TaskId(index)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of an edge within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// Raw index of the edge in [`TaskGraph::edges`].
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed data dependency `t_src → t_dst` carrying `B(t_src, t_dst)`
/// data units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub(crate) src: TaskId,
    pub(crate) dst: TaskId,
    pub(crate) data: u64,
}

impl Edge {
    /// Source (producer) task.
    pub fn src(&self) -> TaskId {
        self.src
    }

    /// Destination (consumer) task.
    pub fn dst(&self) -> TaskId {
        self.dst
    }

    /// Data units communicated, `B(src, dst)`.
    pub fn data(&self) -> u64 {
        self.data
    }
}

/// A validated, acyclic task graph: the behavioral specification input of the
/// temporal partitioning system.
///
/// Construct one through [`TaskGraphBuilder`](crate::TaskGraphBuilder), which
/// enforces the invariants documented there (acyclicity, unique names, at
/// least one design point per task, positive design-point areas).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) successors: Vec<Vec<TaskId>>,
    pub(crate) predecessors: Vec<Vec<TaskId>>,
    pub(crate) topo: Vec<TaskId>,
}

impl TaskGraph {
    /// Validates and assembles a graph; used by the builder.
    pub(crate) fn assemble(tasks: Vec<Task>, edges: Vec<Edge>) -> Result<Self, GraphError> {
        if tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut names = HashSet::new();
        for t in &tasks {
            if !names.insert(t.name().to_owned()) {
                return Err(GraphError::DuplicateTaskName { name: t.name().to_owned() });
            }
            if t.design_points().is_empty() {
                return Err(GraphError::NoDesignPoints { task: t.name().to_owned() });
            }
            for dp in t.design_points() {
                if dp.area() == Area::ZERO {
                    return Err(GraphError::ZeroAreaDesignPoint {
                        task: t.name().to_owned(),
                        design_point: dp.name().to_owned(),
                    });
                }
            }
        }
        let n = tasks.len();
        let mut seen_edges = HashSet::new();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        for e in &edges {
            for id in [e.src, e.dst] {
                if id.0 >= n {
                    return Err(GraphError::UnknownTask { index: id.0, task_count: n });
                }
            }
            if e.src == e.dst {
                return Err(GraphError::SelfLoop { task: tasks[e.src.0].name().to_owned() });
            }
            if !seen_edges.insert((e.src, e.dst)) {
                return Err(GraphError::DuplicateEdge {
                    src: tasks[e.src.0].name().to_owned(),
                    dst: tasks[e.dst.0].name().to_owned(),
                });
            }
            successors[e.src.0].push(e.dst);
            predecessors[e.dst.0].push(e.src);
        }
        let topo = topological_order(n, &successors, &predecessors, &tasks)?;
        Ok(TaskGraph { tasks, edges, successors, predecessors, topo })
    }

    /// Number of tasks `|T|`.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All tasks, indexable by [`TaskId::index`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All edges, indexable by [`EdgeId::index`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Iterator over all task ids in index order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Iterator over all edge ids in index order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Looks up a task by name.
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().position(|t| t.name() == name).map(TaskId)
    }

    /// Direct successors of `id` (consumers of its data).
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.successors[id.0]
    }

    /// Direct predecessors of `id` (producers it depends on).
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.predecessors[id.0]
    }

    /// Tasks with no predecessors: the paper's root set `T_r`.
    pub fn roots(&self) -> Vec<TaskId> {
        self.task_ids().filter(|t| self.predecessors[t.0].is_empty()).collect()
    }

    /// Tasks with no successors: the paper's leaf set `T_l`.
    pub fn leaves(&self) -> Vec<TaskId> {
        self.task_ids().filter(|t| self.successors[t.0].is_empty()).collect()
    }

    /// A topological order of the tasks (dependencies before dependents).
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Sum of minimum-area design points over all tasks — the numerator of
    /// the paper's `MinAreaPartitions()` bound `N_min^l`.
    pub fn total_min_area(&self) -> Area {
        self.tasks.iter().map(|t| t.min_area_point().area()).sum()
    }

    /// Sum of maximum-area design points over all tasks — the numerator of
    /// the paper's `MaxAreaPartitions()` bound `N_min^u`.
    pub fn total_max_area(&self) -> Area {
        self.tasks.iter().map(|t| t.max_area_point().area()).sum()
    }

    /// Sum of maximum-latency design points over all tasks: the serial
    /// worst-case execution time of the paper's `MaxLatency(N)` (excluding
    /// reconfiguration overhead).
    pub fn total_max_latency(&self) -> Latency {
        self.tasks.iter().map(|t| t.max_latency_point().latency()).sum()
    }

    /// Longest root→leaf path latency when every task uses its
    /// minimum-latency design point: the execution component of the paper's
    /// `MinLatency(N)` lower bound.
    ///
    /// Computed by dynamic programming over the topological order, so it is
    /// exact even when explicit path enumeration would blow up.
    pub fn critical_path_min_latency(&self) -> Latency {
        let mut best = vec![Latency::ZERO; self.tasks.len()];
        let mut overall = Latency::ZERO;
        for &t in &self.topo {
            let own = self.tasks[t.0].min_latency_point().latency();
            let pred_best =
                self.predecessors[t.0].iter().map(|p| best[p.0]).fold(Latency::ZERO, Latency::max);
            best[t.0] = pred_best + own;
            overall = overall.max(best[t.0]);
        }
        overall
    }

    /// `true` if `ancestor` can reach `descendant` along directed edges.
    pub fn reaches(&self, ancestor: TaskId, descendant: TaskId) -> bool {
        if ancestor == descendant {
            return true;
        }
        let mut stack = vec![ancestor];
        let mut seen = vec![false; self.tasks.len()];
        seen[ancestor.0] = true;
        while let Some(t) = stack.pop() {
            for &s in &self.successors[t.0] {
                if s == descendant {
                    return true;
                }
                if !seen[s.0] {
                    seen[s.0] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

fn topological_order(
    n: usize,
    successors: &[Vec<TaskId>],
    predecessors: &[Vec<TaskId>],
    tasks: &[Task],
) -> Result<Vec<TaskId>, GraphError> {
    let mut indegree: Vec<usize> = predecessors.iter().map(Vec::len).collect();
    let mut ready: Vec<TaskId> = (0..n).filter(|&i| indegree[i] == 0).map(TaskId).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(t) = ready.pop() {
        order.push(t);
        for &s in &successors[t.0] {
            indegree[s.0] -= 1;
            if indegree[s.0] == 0 {
                ready.push(s);
            }
        }
    }
    if order.len() != n {
        // `order.len() != n` means some task kept a positive indegree; the
        // `unwrap_or` is a defensive fallback, not a reachable path.
        let on_cycle = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
        return Err(GraphError::Cycle { task: tasks[on_cycle].name().to_owned() });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TaskGraphBuilder;
    use crate::task::DesignPoint;

    fn dp(area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new("dp", Area::new(area), Latency::from_ns(lat))
    }

    /// Diamond: a -> b, a -> c, b -> d, c -> d.
    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp(10, 100.0)).finish();
        let t_b = b.add_task("b").design_point(dp(20, 200.0)).finish();
        let c = b.add_task("c").design_point(dp(30, 50.0)).finish();
        let d = b.add_task("d").design_point(dp(40, 300.0)).finish();
        b.add_edge(a, t_b, 1).unwrap();
        b.add_edge(a, c, 1).unwrap();
        b.add_edge(t_b, d, 1).unwrap();
        b.add_edge(c, d, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roots_and_leaves() {
        let g = diamond();
        assert_eq!(g.roots(), vec![TaskId(0)]);
        assert_eq!(g.leaves(), vec![TaskId(3)]);
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        let pos: Vec<usize> =
            g.task_ids().map(|t| order.iter().position(|&x| x == t).unwrap()).collect();
        for e in g.edges() {
            assert!(pos[e.src().index()] < pos[e.dst().index()]);
        }
    }

    #[test]
    fn critical_path_uses_min_latency_points() {
        let g = diamond();
        // a(100) -> b(200) -> d(300) = 600 is the longest chain.
        assert_eq!(g.critical_path_min_latency().as_ns(), 600.0);
    }

    #[test]
    fn critical_path_picks_fastest_design_point() {
        let mut b = TaskGraphBuilder::new();
        let a = b
            .add_task("a")
            .design_point(dp(10, 500.0))
            .design_point(DesignPoint::new("fast", Area::new(90), Latency::from_ns(100.0)))
            .finish();
        let c = b.add_task("c").design_point(dp(10, 50.0)).finish();
        b.add_edge(a, c, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.critical_path_min_latency().as_ns(), 150.0);
    }

    #[test]
    fn totals() {
        let g = diamond();
        assert_eq!(g.total_min_area(), Area::new(100));
        assert_eq!(g.total_max_area(), Area::new(100));
        assert_eq!(g.total_max_latency().as_ns(), 650.0);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.reaches(TaskId(0), TaskId(3)));
        assert!(g.reaches(TaskId(1), TaskId(3)));
        assert!(!g.reaches(TaskId(1), TaskId(2)));
        assert!(!g.reaches(TaskId(3), TaskId(0)));
        assert!(g.reaches(TaskId(2), TaskId(2)));
    }

    #[test]
    fn cycle_detected() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp(1, 1.0)).finish();
        let c = b.add_task("b").design_point(dp(1, 1.0)).finish();
        b.add_edge(a, c, 1).unwrap();
        b.add_edge(c, a, 1).unwrap();
        assert!(matches!(b.build(), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn task_lookup_by_name() {
        let g = diamond();
        assert_eq!(g.task_by_name("c"), Some(TaskId(2)));
        assert_eq!(g.task_by_name("zzz"), None);
    }

    #[test]
    fn id_display() {
        assert_eq!(TaskId(4).to_string(), "t4");
        assert_eq!(EdgeId(2).to_string(), "e2");
    }
}
