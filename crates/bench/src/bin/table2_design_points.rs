//! Table 2: the DCT task kinds and their design points (input data of the
//! case study; reconstructed — see DESIGN.md).
//!
//! `cargo run --release -p rtr-bench --bin table2_design_points`

use rtr_bench::BenchRun;
use rtr_workloads::dct::dct_4x4;

fn main() {
    let graph = dct_4x4();
    println!("Table 2 — design points for the DCT task kinds (reconstructed)");
    println!("{:<6} {:<12} {:>8} {:>12}", "Task", "Module set", "Area", "Latency(ns)");
    for name in ["vp1_r0_c0", "vp2_r0_c0"] {
        let id = graph.task_by_name(name).expect("task exists");
        let task = graph.task(id);
        let kind = if name.starts_with("vp1") { "T1" } else { "T2" };
        for dp in task.design_points() {
            println!(
                "{:<6} {:<12} {:>8} {:>12.0}",
                kind,
                dp.name(),
                dp.area().units(),
                dp.latency().as_ns()
            );
        }
    }
    println!("\nderived quantities (these pin the reconstruction to the paper):");
    println!("  Σ max-latency  = {:>8.0} ns (paper: 25,440)", graph.total_max_latency().as_ns());
    println!(
        "  critical path  = {:>8.0} ns (paper: 905)",
        graph.critical_path_min_latency().as_ns()
    );
    println!("  Σ min-area     = {:>8} (N_min^l: 8 @ 576, 5 @ 1024)", graph.total_min_area());
    println!("  Σ max-area     = {:>8} (N_min^u: 11 @ 576, 7 @ 1024)", graph.total_max_area());

    let mut bench = BenchRun::new("table2");
    bench.counter("tasks", graph.tasks().len() as u64);
    bench.counter("edges", graph.edge_count() as u64);
    bench.metric("total_max_latency_ns", graph.total_max_latency().as_ns());
    bench.metric("critical_path_ns", graph.critical_path_min_latency().as_ns());
    bench.counter("total_min_area", graph.total_min_area().units() as u64);
    bench.counter("total_max_area", graph.total_max_area().units() as u64);
    bench.write_and_report();
}
