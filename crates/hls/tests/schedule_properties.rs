//! Randomized tests for the list scheduler on seeded random operation
//! dataflow graphs: dependency correctness, functional-unit exclusivity,
//! and monotonicity in the allocation. Deterministic (xorshift streams),
//! so any failure reproduces exactly.

use rtr_hls::{schedule, Allocation, BehavioralTask, FuLibrary, OpKind};

const CASES: u64 = 200;

/// A deterministic xorshift64 stream.
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// A random behavioral task: ops added in dataflow order with random
/// backward dependencies.
fn random_task(salt: u64, case: u64) -> BehavioralTask {
    let mut next = stream(salt.wrapping_mul(0xd6e8_feb8_6659_fd93).wrapping_add(case));
    let ops = (next() % 13 + 1) as usize; // 1..14
    let kinds = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Shift, OpKind::Cmp];
    let mut t = BehavioralTask::new("prop");
    let mut ids = Vec::new();
    for i in 0..ops {
        let kind = kinds[(next() % kinds.len() as u64) as usize];
        let width = (next() % 24 + 4) as u32;
        let dep_count = if i == 0 { 0 } else { (next() % 3) as usize };
        let mut deps = Vec::new();
        for _ in 0..dep_count {
            let d = ids[(next() % i as u64) as usize];
            if !deps.contains(&d) {
                deps.push(d);
            }
        }
        ids.push(t.add_op(kind, width, &deps));
    }
    t
}

fn full_allocation(task: &BehavioralTask, units: usize) -> Allocation {
    let mut alloc = Allocation::new();
    for kind in task.kinds_used() {
        alloc = alloc.with(kind, units.min(task.count_of(kind)).max(1));
    }
    alloc
}

/// Dependencies always finish before their consumers start, and no two
/// operations overlap on the same functional-unit instance.
#[test]
fn schedules_are_structurally_valid() {
    for case in 0..CASES {
        let task = random_task(1, case);
        let units = (case % 3 + 1) as usize;
        let lib = FuLibrary::xc4000_style();
        let alloc = full_allocation(&task, units);
        let s = schedule(&task, &alloc, &lib).unwrap();
        for (i, op) in task.ops().iter().enumerate() {
            assert!(s.ops[i].finish > s.ops[i].start, "case {case}");
            for d in op.deps() {
                assert!(s.ops[d.index()].finish <= s.ops[i].start, "case {case}");
            }
        }
        for i in 0..task.op_count() {
            for j in (i + 1)..task.op_count() {
                if task.ops()[i].kind() == task.ops()[j].kind() && s.ops[i].unit == s.ops[j].unit {
                    let a = &s.ops[i];
                    let b = &s.ops[j];
                    assert!(
                        a.finish <= b.start || b.finish <= a.start,
                        "case {case}: ops {i}/{j} overlap on unit {}",
                        a.unit
                    );
                }
            }
        }
        // Makespan is the max finish.
        let max_finish = s.ops.iter().map(|o| o.finish.as_ns()).fold(0.0f64, f64::max);
        assert_eq!(s.latency.as_ns(), max_finish, "case {case}");
    }
}

/// More functional units never lengthen the schedule.
#[test]
fn more_units_never_hurt() {
    for case in 0..CASES {
        let task = random_task(2, case);
        let lib = FuLibrary::xc4000_style();
        let mut prev = f64::INFINITY;
        for units in 1..=4 {
            let alloc = full_allocation(&task, units);
            let s = schedule(&task, &alloc, &lib).unwrap();
            assert!(
                s.latency.as_ns() <= prev + 1e-9,
                "case {case}, units {units}: {} > {prev}",
                s.latency.as_ns()
            );
            prev = s.latency.as_ns();
        }
    }
}

/// The makespan is never below the critical path and never above the
/// serial sum of all operation delays.
#[test]
fn makespan_is_bracketed() {
    for case in 0..CASES {
        let task = random_task(3, case);
        let units = (case % 3 + 1) as usize;
        let lib = FuLibrary::xc4000_style();
        let alloc = full_allocation(&task, units);
        let s = schedule(&task, &alloc, &lib).unwrap();
        let delays: Vec<f64> =
            task.ops().iter().map(|o| lib.spec(o.kind(), o.width()).delay.as_ns()).collect();
        // Critical path by DP.
        let mut depth = vec![0.0f64; task.op_count()];
        for (i, op) in task.ops().iter().enumerate() {
            let pred = op.deps().iter().map(|d| depth[d.index()]).fold(0.0f64, f64::max);
            depth[i] = pred + delays[i];
        }
        let cp = depth.iter().copied().fold(0.0f64, f64::max);
        let serial: f64 = delays.iter().sum();
        assert!(s.latency.as_ns() >= cp - 1e-9, "case {case}");
        assert!(s.latency.as_ns() <= serial + 1e-9, "case {case}");
    }
}

/// Pareto fronts from enumeration are internally consistent for random
/// tasks too.
#[test]
fn enumerated_fronts_are_pareto() {
    use rtr_hls::{enumerate_design_points, EstimatorOptions};
    for case in 0..CASES {
        let task = random_task(4, case);
        let pts = enumerate_design_points(
            &task,
            &FuLibrary::xc4000_style(),
            &EstimatorOptions::default(),
        )
        .unwrap();
        assert!(!pts.is_empty(), "case {case}");
        for a in &pts {
            for b in &pts {
                assert!(!a.design_point.is_dominated_by(&b.design_point), "case {case}");
            }
        }
    }
}
