//! Micro-benchmarks for the solver stack, on a small self-contained
//! harness (no external benchmark framework, so the workspace builds
//! offline).
//!
//! `cargo bench -p rtr-bench` — pass a substring to filter, e.g.
//! `cargo bench -p rtr-bench -- dct`.
//!
//! Each benchmark reports min / mean / max wall-clock per iteration, and
//! the whole run is summarized into `BENCH_microbench.json`.

use rtr_bench::BenchRun;
use rtr_core::baseline::{greedy_partition, DesignPointPicker};
use rtr_core::model::{IlpModel, ModelOptions};
use rtr_core::structured::{SearchGoal, StructuredSolver};
use rtr_core::{Architecture, Backend, ExploreParams, SearchLimits, TemporalPartitioner};
use rtr_graph::{Area, Latency};
use rtr_hls::{enumerate_design_points, EstimatorOptions, FuLibrary};
use rtr_milp::SolveOptions;
use rtr_workloads::ar::{ar_filter, template_a};
use rtr_workloads::dct::{dct_4x4, dct_nxn};
use rtr_workloads::random::{random_layered, RandomGraphParams};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn quick_limits() -> SearchLimits {
    SearchLimits { node_limit: 2_000_000, time_limit: Some(Duration::from_millis(500)) }
}

/// Times `f` adaptively: one warm-up call sizes the batch so each bench
/// costs roughly `BUDGET` total, with at least three iterations.
fn bench(report: &mut BenchRun, filter: &str, name: &str, mut f: impl FnMut()) {
    const BUDGET: Duration = Duration::from_millis(600);
    if !name.contains(filter) {
        return;
    }
    let warmup = Instant::now();
    f();
    let once = warmup.elapsed();
    let iters = (BUDGET.as_secs_f64() / once.as_secs_f64().max(1e-9)).clamp(3.0, 10_000.0) as u32;
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut total = 0.0f64;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let dt = start.elapsed().as_secs_f64();
        min = min.min(dt);
        max = max.max(dt);
        total += dt;
    }
    let mean = total / f64::from(iters);
    println!(
        "{name:<32} {iters:>6} iters  min {:>10.1} µs  mean {:>10.1} µs  max {:>10.1} µs",
        min * 1e6,
        mean * 1e6,
        max * 1e6
    );
    report.metric(format!("{name}.min_us"), min * 1e6);
    report.metric(format!("{name}.mean_us"), mean * 1e6);
    report.counter(format!("{name}.iters"), u64::from(iters));
}

fn main() {
    // `cargo bench` invokes the binary with `--bench`; the first non-flag
    // argument is a substring filter.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-')).unwrap_or_default();
    let mut report = BenchRun::new("microbench");
    let r = &mut report;

    // Full iterative exploration of the AR filter (Table 1 inner loop).
    {
        let graph = ar_filter().expect("static construction");
        let r_max = graph.total_min_area().units() / 2;
        let arch = Architecture::new(Area::new(r_max), 64, Latency::from_us(1.0));
        bench(r, &filter, "ar_filter/explore", || {
            let params = ExploreParams {
                delta: Latency::from_ns(50.0),
                gamma: 1,
                limits: quick_limits(),
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
            black_box(part.explore().expect("explores"));
        });
    }

    // One feasible window solve on the paper-scale DCT (structured backend).
    {
        let graph = dct_4x4();
        let arch = Architecture::new(Area::new(1024), 512, Latency::from_us(1.0));
        let d_max = rtr_core::max_latency(&graph, &arch, 6);
        bench(r, &filter, "dct/window_feasible_n6", || {
            let solver = StructuredSolver::new(
                &graph,
                &arch,
                6,
                d_max.as_ns(),
                SearchGoal::FirstFeasible,
                quick_limits(),
            );
            black_box(solver.run());
        });
    }

    // The iterative procedure vs. solving to optimality with the ILP on the
    // same instance — the paper's §4 runtime comparison, as a measured bench.
    {
        let graph = random_layered(3, &RandomGraphParams { tasks: 6, ..Default::default() });
        let arch = Architecture::new(Area::new(300), 64, Latency::from_us(1.0));
        bench(r, &filter, "iterative_vs_optimal/iterative", || {
            let params = ExploreParams {
                delta: Latency::from_ns(100.0),
                limits: quick_limits(),
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
            black_box(part.explore().expect("explores"));
        });
        bench(r, &filter, "iterative_vs_optimal/milp", || {
            let d_max = rtr_core::max_latency(&graph, &arch, 3);
            let options = ModelOptions {
                minimize_latency: true,
                include_dmin_cut: false,
                ..Default::default()
            };
            let ilp = IlpModel::build(&graph, &arch, 3, d_max, Latency::ZERO, &options)
                .expect("model builds");
            black_box(ilp.model().solve(&SolveOptions::optimal()).expect("solves"));
        });
    }

    // Loose vs. tight `w` linearization on the faithful ILP (feasibility).
    {
        let graph = random_layered(7, &RandomGraphParams { tasks: 6, ..Default::default() });
        let arch = Architecture::new(Area::new(300), 64, Latency::from_us(1.0));
        let d_max = rtr_core::max_latency(&graph, &arch, 3);
        for (name, tight) in [("linearization/loose", false), ("linearization/tight", true)] {
            bench(r, &filter, name, || {
                let options = ModelOptions { tight_linearization: tight, ..Default::default() };
                let ilp = IlpModel::build(&graph, &arch, 3, d_max, Latency::ZERO, &options)
                    .expect("model builds");
                black_box(ilp.model().solve(&SolveOptions::feasibility()).expect("solves"));
            });
        }
    }

    // Structured-solver scaling over DCT instance sizes.
    for n in [2usize, 3, 4] {
        let graph = dct_nxn(n).expect("valid size");
        let arch = Architecture::new(Area::new(1024), 512, Latency::from_us(1.0));
        let bound = rtr_core::min_area_partitions(&graph, &arch) + 1;
        let d_max = rtr_core::max_latency(&graph, &arch, bound);
        bench(r, &filter, &format!("dct_scaling/{}", graph.task_count()), || {
            let solver = StructuredSolver::new(
                &graph,
                &arch,
                bound,
                d_max.as_ns(),
                SearchGoal::FirstFeasible,
                quick_limits(),
            );
            black_box(solver.run());
        });
    }

    // The greedy baseline against a single structured window solve.
    {
        let graph = dct_4x4();
        let arch = Architecture::new(Area::new(576), 512, Latency::from_us(1.0));
        bench(r, &filter, "dct/greedy_min_area", || {
            black_box(greedy_partition(&graph, &arch, DesignPointPicker::MinArea, 16));
        });
    }

    // HLS design-point enumeration on the AR filter's template A.
    {
        let task = template_a("bench", 16);
        let lib = FuLibrary::xc4000_style();
        bench(r, &filter, "hls/enumerate_template_a", || {
            black_box(enumerate_design_points(&task, &lib, &EstimatorOptions::default()))
                .expect("enumerates");
        });
    }

    // Simulating a DCT solution.
    {
        let graph = dct_4x4();
        let arch = Architecture::new(Area::new(1024), 512, Latency::from_us(1.0));
        let sol = greedy_partition(&graph, &arch, DesignPointPicker::MinArea, 16)
            .expect("greedy packs the DCT");
        bench(r, &filter, "sim/dct_greedy_solution", || {
            black_box(rtr_sim::simulate(&graph, &arch, &sol).expect("valid solution"));
        });
    }

    // Presolve on vs. off for the faithful ILP (feasibility solves).
    {
        let graph = random_layered(5, &RandomGraphParams { tasks: 6, ..Default::default() });
        let arch = Architecture::new(Area::new(300), 64, Latency::from_us(1.0));
        let d_max = rtr_core::max_latency(&graph, &arch, 3);
        let ilp = IlpModel::build(&graph, &arch, 3, d_max, Latency::ZERO, &ModelOptions::default())
            .expect("model builds");
        for (name, presolve) in [("presolve/on", true), ("presolve/off", false)] {
            bench(r, &filter, name, || {
                let mut opts = SolveOptions::feasibility();
                opts.presolve = presolve;
                black_box(ilp.model().solve(&opts).expect("solves"));
            });
        }
    }

    // The MILP backend on one small feasibility window (CPLEX stand-in cost).
    {
        let graph = random_layered(11, &RandomGraphParams { tasks: 5, ..Default::default() });
        let arch = Architecture::new(Area::new(250), 64, Latency::from_us(1.0));
        bench(r, &filter, "milp/feasibility_5tasks_n3", || {
            let params = ExploreParams { backend: Backend::Milp, ..Default::default() };
            let part = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
            black_box(
                part.solve_window(3, rtr_core::max_latency(&graph, &arch, 3), Latency::ZERO)
                    .expect("solves"),
            );
        });
    }

    report.write_and_report();
}
