//! Scheduler unit/property tests: deque linearizability under seeded
//! interleavings, an exhaustive sequential mini-model, and the pool-level
//! merge-discipline and isolation properties the solver layers rely on.

use super::deque::{Deque, Steal};
use super::{BatchReport, Pool, SCHED_RETRY_LIMIT};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64: the same tiny deterministic generator the failpoint
/// registry and the determinism suites use for seeded schedules.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Exhaustive sequential model check: every push/pop string up to length
/// 12 against a reference `VecDeque`, including wrap-around on a deque
/// whose capacity (4) is smaller than the op count. With no concurrency
/// the deque must be *exactly* a bounded LIFO stack.
#[test]
fn deque_matches_reference_stack_exhaustively() {
    const OPS: u32 = 12;
    for word in 0u32..(1 << OPS) {
        let deque = Deque::new(4);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next_value = 1u64;
        for bit in 0..OPS {
            if (word >> bit) & 1 == 0 {
                // Push; the model refuses beyond capacity like the deque.
                let pushed = deque.push((next_value, next_value)).is_ok();
                assert_eq!(pushed, model.len() < 4, "op string {word:#b} bit {bit}");
                if pushed {
                    model.push_back(next_value);
                    next_value += 1;
                }
            } else {
                let got = deque.pop().map(|(a, b)| {
                    assert_eq!(a, b, "torn pair in sequential use");
                    a
                });
                assert_eq!(got, model.pop_back(), "op string {word:#b} bit {bit}");
            }
        }
        assert_eq!(deque.len_estimate(), model.len());
    }
}

/// Owner-side steal interleaved with pops, still sequential: stealing
/// takes the *oldest* element, popping the newest, and they never
/// duplicate or drop one.
#[test]
fn deque_steal_takes_oldest_pop_takes_newest() {
    let deque = Deque::new(8);
    for v in 1..=5u64 {
        assert!(deque.push((v, v)).is_ok());
    }
    assert!(matches!(deque.steal(), Steal::Success((1, 1))));
    assert_eq!(deque.pop(), Some((5, 5)));
    assert!(matches!(deque.steal(), Steal::Success((2, 2))));
    assert_eq!(deque.pop(), Some((4, 4)));
    assert_eq!(deque.pop(), Some((3, 3)));
    assert_eq!(deque.pop(), None);
    assert!(matches!(deque.steal(), Steal::Empty));
}

/// Concurrent linearizability under seeded SplitMix64 interleavings: one
/// owner pushes a known value set while popping at seeded intervals;
/// thief threads steal with seeded backoff. Every pushed value must be
/// consumed exactly once (no loss, no duplication, no torn pairs), across
/// many seeds so the realized interleavings vary.
#[test]
fn deque_linearizable_under_seeded_interleavings() {
    const VALUES: u64 = 2_000;
    const THIEVES: usize = 3;
    for seed in 1..=8u64 {
        let deque = Deque::new(64);
        let consumed: Vec<AtomicU64> = (0..VALUES).map(|_| AtomicU64::new(0)).collect();
        let done = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for thief in 0..THIEVES {
                let deque = &deque;
                let consumed = &consumed;
                let done = &done;
                let mut rng = SplitMix64(seed ^ ((thief as u64 + 1) << 32));
                scope.spawn(move || loop {
                    match deque.steal() {
                        Steal::Success((a, b)) => {
                            assert_eq!(a, b, "torn steal (seed {seed})");
                            consumed[a as usize].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) == 1 {
                                // One final sweep after the owner finished.
                                while let Steal::Success((a, b)) = deque.steal() {
                                    assert_eq!(a, b);
                                    consumed[a as usize].fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            if rng.next().is_multiple_of(7) {
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
            // Owner: seeded mix of pushes and pops.
            let mut rng = SplitMix64(seed);
            let mut next = 0u64;
            while next < VALUES {
                if deque.push((next, next)).is_ok() {
                    next += 1;
                } else {
                    std::thread::yield_now();
                }
                if rng.next().is_multiple_of(3) {
                    if let Some((a, b)) = deque.pop() {
                        assert_eq!(a, b, "torn pop (seed {seed})");
                        consumed[a as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Drain what the thieves do not get to first.
            while let Some((a, b)) = deque.pop() {
                assert_eq!(a, b);
                consumed[a as usize].fetch_add(1, Ordering::Relaxed);
            }
            done.store(1, Ordering::Release);
        });
        for (value, count) in consumed.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::Relaxed),
                1,
                "value {value} consumed wrong number of times (seed {seed})"
            );
        }
    }
}

/// Merge-discipline ordering property: whatever order the pool executes a
/// batch in, per-index result slots merged in ascending index order give
/// the sequential answer. The job bodies record their execution order so
/// the test can also confirm the schedule was *not* (necessarily) the
/// merge order — the discipline, not the scheduler, carries determinism.
#[test]
fn ascending_merge_is_schedule_independent() {
    const JOBS: usize = 200;
    let sequential: Vec<u64> = (0..JOBS as u64).map(|i| i.wrapping_mul(i) ^ 0xabc).collect();
    for threads in [1usize, 2, 4, 8] {
        let slots: Vec<AtomicU64> = (0..JOBS).map(|_| AtomicU64::new(u64::MAX)).collect();
        let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let report = Pool::scoped(threads, |pool| {
            pool.run(JOBS, 0, |i| {
                order.lock().unwrap().push(i);
                slots[i].store((i as u64).wrapping_mul(i as u64) ^ 0xabc, Ordering::Relaxed);
            })
        });
        assert!(report.is_clean());
        let merged: Vec<u64> = slots.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        assert_eq!(merged, sequential, "{threads} threads");
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), JOBS, "every job ran exactly once at {threads} threads");
        if threads == 1 {
            // Single participant: reverse-push + LIFO pop is ascending.
            assert_eq!(order, (0..JOBS).collect::<Vec<_>>());
        }
    }
}

/// Panic isolation: a job that always panics is retried
/// `SCHED_RETRY_LIMIT` times then reported lost; the rest of the batch
/// completes, and the report is identical at every thread count.
#[test]
fn poisoned_job_is_retried_then_lost_deterministically() {
    const JOBS: usize = 40;
    const POISON: usize = 17;
    let mut reports: Vec<BatchReport> = Vec::new();
    for threads in [1usize, 2, 4] {
        let done = AtomicUsize::new(0);
        let report = Pool::scoped(threads, |pool| {
            pool.run(JOBS, 0, |i| {
                if i == POISON {
                    panic!("poisoned job");
                }
                done.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(done.load(Ordering::Relaxed), JOBS - 1, "{threads} threads");
        assert_eq!(report.lost, vec![POISON]);
        assert_eq!(report.panics_caught, u64::from(SCHED_RETRY_LIMIT) + 1);
        assert_eq!(report.jobs_retried, u64::from(SCHED_RETRY_LIMIT));
        reports.push(report);
    }
    for r in &reports[1..] {
        assert_eq!(r.lost, reports[0].lost);
        assert_eq!(r.panics_caught, reports[0].panics_caught);
    }
}

/// Nested batches share the ambient pool: a job submits a sub-batch via
/// `Pool::with`, which must not spawn threads, and idle workers steal the
/// nested jobs from the submitter's deque. Nested job 0 plays a "stalled
/// subtree": its executor (always the nested submitter — LIFO pops take
/// index 0 first, thieves take the highest index) refuses to finish until
/// some *other* nested job has completed, and the only way another nested
/// job can run — even on a single hardware core — is for an idle worker
/// to steal it. So `steals > 0` is a structural guarantee, not a timing
/// accident.
#[test]
fn nested_batches_reuse_pool_and_get_stolen() {
    let nested_sum = AtomicU64::new(0);
    let nested_done = AtomicU64::new(0);
    let stats = Pool::scoped(4, |pool| {
        let report = pool.run(6, 0, |i| {
            if i == 0 {
                // The "stalled window": fans out its own sub-batch.
                Pool::with(99, |inner| {
                    assert_eq!(inner.threads(), 4, "nested Pool::with must reuse the pool");
                    let sub = inner.run(32, 1, |j| {
                        if j == 0 {
                            while nested_done.load(Ordering::Acquire) == 0 {
                                std::thread::yield_now();
                            }
                        } else {
                            nested_done.fetch_add(1, Ordering::Release);
                        }
                        nested_sum.fetch_add(j as u64 + 1, Ordering::Relaxed);
                    });
                    assert!(sub.is_clean());
                });
            } else {
                nested_sum.fetch_add(1_000, Ordering::Relaxed);
            }
        });
        assert!(report.is_clean());
        pool.stats()
    });
    assert_eq!(nested_sum.load(Ordering::Relaxed), 5_000 + (32 * 33) / 2);
    assert_eq!(stats.jobs, 6 + 32);
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.nested_batches, 1);
    assert!(stats.steals > 0, "workers never stole the stalled submitter's nested jobs");
}

/// A non-participant thread holding a `&Pool` falls back to inline
/// sequential execution instead of deadlocking or corrupting queues.
#[test]
fn non_participant_submission_runs_inline() {
    let order = Mutex::new(Vec::new());
    Pool::scoped(2, |pool| {
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let report = pool.run(5, 0, |i| order.lock().unwrap().push(i));
                    assert!(report.is_clean());
                })
                .join()
                .unwrap();
        });
    });
    assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
}

/// Oversubscription smoke: many more participants than cores, nested
/// batches, and tiny jobs — the timed-park design must neither deadlock
/// nor livelock. (CI runs the full determinism suite at `--threads 8` on
/// a 1-CPU runner; this is the in-crate fast check.)
#[test]
fn oversubscribed_pool_drains_nested_batches() {
    let total = AtomicU64::new(0);
    Pool::scoped(8, |pool| {
        let report = pool.run(16, 0, |_| {
            Pool::with(8, |inner| {
                let sub = inner.run(8, 2, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
                assert!(sub.is_clean());
            });
        });
        assert!(report.is_clean());
    });
    assert_eq!(total.load(Ordering::Relaxed), 16 * 8);
}
