//! # rtrpart
//!
//! Temporal partitioning combined with design space exploration for latency
//! minimization of run-time reconfigured designs — a from-scratch
//! reproduction of Kaul & Vemuri (DATE 1999).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — task graphs, design points, quantities ([`rtr_graph`]);
//! * [`milp`] — the simplex + branch-and-bound MILP solver ([`rtr_milp`]);
//! * [`hls`] — design-point synthesis from behavioral tasks ([`rtr_hls`]);
//! * [`core`] — the partitioner and its searches ([`rtr_core`]);
//! * [`sim`] — the reconfigurable-processor simulator ([`rtr_sim`]);
//! * [`workloads`] — the paper's case studies and generators
//!   ([`rtr_workloads`]);
//! * [`trace`] — structured tracing, metrics, and run reports
//!   ([`rtr_trace`]).
//!
//! # Observability
//!
//! Every solver layer emits structured trace events through [`trace`];
//! install a sink to capture them (nothing is recorded by default):
//!
//! ```
//! use std::sync::Arc;
//! # use rtrpart::{Architecture, ExploreParams, TemporalPartitioner};
//! # use rtrpart::graph::{TaskGraphBuilder, DesignPoint, Area, Latency};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut b = TaskGraphBuilder::new();
//! # b.add_task("t")
//! #     .design_point(DesignPoint::new("m", Area::new(10), Latency::from_ns(100.0)))
//! #     .finish();
//! # let graph = b.build()?;
//! # let arch = Architecture::new(Area::new(32), 64, Latency::from_us(1.0));
//! let sink = Arc::new(rtrpart::trace::MemorySink::new());
//! rtrpart::trace::install(sink.clone());
//! let partitioner = TemporalPartitioner::new(&graph, &arch, ExploreParams::default())?;
//! let exploration = partitioner.explore()?;
//! rtrpart::trace::uninstall();
//! let report = rtrpart::trace::RunReport::from_events(&sink.take());
//! println!("{}", report.render());
//! # assert!(report.event_total > 0);
//! # Ok(())
//! # }
//! ```
//!
//! The `rtrpart` binary exposes the same machinery as
//! `rtrpart partition --trace run.jsonl ...` followed by
//! `rtrpart trace-report run.jsonl`.
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use rtrpart::{Architecture, ExploreParams, TemporalPartitioner};
//! use rtrpart::graph::{TaskGraphBuilder, DesignPoint, Area, Latency};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Describe the behavior as a task graph with design points.
//! let mut b = TaskGraphBuilder::new();
//! let fir = b.add_task("fir")
//!     .design_point(DesignPoint::new("serial", Area::new(120), Latency::from_ns(900.0)))
//!     .design_point(DesignPoint::new("parallel", Area::new(300), Latency::from_ns(320.0)))
//!     .env_input(8)
//!     .finish();
//! let post = b.add_task("post")
//!     .design_point(DesignPoint::new("only", Area::new(150), Latency::from_ns(400.0)))
//!     .env_output(8)
//!     .finish();
//! b.add_edge(fir, post, 8)?;
//! let graph = b.build()?;
//!
//! // 2. Describe the reconfigurable processor.
//! let arch = Architecture::new(Area::new(320), 64, Latency::from_us(1.0));
//!
//! // 3. Explore.
//! let partitioner = TemporalPartitioner::new(&graph, &arch, ExploreParams::default())?;
//! let exploration = partitioner.explore()?;
//! let best = exploration.best.expect("feasible instance");
//!
//! // 4. Cross-check on the simulator.
//! let report = rtrpart::sim::simulate(&graph, &arch, &best)?;
//! assert_eq!(report.total_latency, exploration.best_latency.unwrap());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtr_core as core;
pub use rtr_graph as graph;
pub use rtr_hls as hls;
pub use rtr_milp as milp;
pub use rtr_sim as sim;
pub use rtr_trace as trace;
pub use rtr_workloads as workloads;

pub use rtr_core::{
    default_thread_count, max_area_partitions, max_latency, min_area_partitions, min_latency,
    validate_solution, Architecture, Backend, Checkpoint, CheckpointPolicy, Degradation,
    EnvMemoryPolicy, Exploration, ExploreParams, IterationRecord, IterationResult, LostSubtree,
    PartitionError, Placement, SearchLimits, Solution, TemporalPartitioner,
};
