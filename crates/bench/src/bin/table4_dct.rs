//! Table 4: DCT refinement log. See `DctExperiment::table4` for the
//! parameters and DESIGN.md for the experiment index.
//!
//! `cargo run --release -p rtr-bench --bin table4_dct`

use rtr_bench::{print_paper_table, run_dct_experiment, DctExperiment};
use rtr_workloads::dct::dct_4x4;

fn main() {
    let exp = DctExperiment::table4();
    let graph = dct_4x4();
    let exploration = run_dct_experiment(&exp, &graph);
    print_paper_table(
        &format!(
            "Table {} — DCT, R_max = {}, C_T = {}, δ = {} ns, α = {}, γ = {}",
            exp.table, exp.r_max, exp.ct, exp.delta_ns, exp.alpha, exp.gamma
        ),
        &exp.architecture(),
        &exploration,
    );
}
