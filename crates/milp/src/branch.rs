//! Branch and bound over the LP relaxation.

use crate::error::MilpError;
use crate::model::{effective_bounds, Model, Sense, VarKind};
use crate::simplex::{resolve_lp_with_deadline, solve_lp_with_deadline, Basis, LpStatus};
use crate::solution::{Goal, Outcome, Solution, SolveOptions, SolveStats, Status};
use rtr_trace::Instrument as _;
use std::rc::Rc;
use std::time::Instant;

/// Solves a mixed-integer model by branch and bound.
///
/// In `Goal::Feasibility` mode (see [`SolveOptions`](crate::SolveOptions)) the search returns as soon as any
/// integer-feasible point is found — the paper's `SolveModel()` use of the
/// ILP. In `Goal::Optimal` mode the search prunes on the incumbent bound
/// and only stops when the tree is exhausted (or a limit fires).
///
/// With `options.warm_start` (the default) every child node's LP re-solves
/// from its parent's optimal basis by dual simplex — branching only
/// tightens one variable's bounds, which leaves that basis dual feasible —
/// and falls back to a cold start on any trouble, so the search outcome is
/// independent of the flag.
///
/// When a [`rtr_trace`] sink is installed, each solve closes one
/// `milp.solve` span and emits its [`SolveStats`] as `milp.*` counters
/// (including the `milp.lp.*` warm-start counters). Tracing never changes
/// the search: the same pivots and branches happen with a sink installed,
/// absent, or disabled.
///
/// # Errors
///
/// Propagates [`MilpError`] from model validation or a simplex failure.
pub fn solve_mip(model: &Model, options: &SolveOptions) -> Result<Outcome, MilpError> {
    solve_mip_warm(model, options, None)
}

/// [`solve_mip`] with an optional warm-start basis for the *root* LP,
/// produced by a previous solve of the same model after a bounds- or
/// RHS-only mutation (the paper's binary-subdivision loop re-solves).
///
/// Supplying a basis skips presolve: the basis indexes the unreduced
/// model's rows, and row removal would silently invalidate it. A stale or
/// unusable basis degrades to a cold root solve — results never change.
///
/// # Errors
///
/// Propagates [`MilpError`] like [`solve_mip`].
pub fn solve_mip_warm(
    model: &Model,
    options: &SolveOptions,
    root_basis: Option<&Basis>,
) -> Result<Outcome, MilpError> {
    let span = rtr_trace::span("milp.solve")
        .with("vars", model.vars.len())
        .with("rows", model.constraints.len());
    let outcome = if options.presolve && root_basis.is_none() {
        match crate::presolve::presolve(model) {
            crate::presolve::PresolveOutcome::Reduced(reduced, pstats) => {
                let mut inner = options.clone();
                inner.presolve = false;
                let mut outcome = branch_and_bound(&reduced, &inner, None)?;
                outcome.stats.presolve_tightened_bounds = pstats.tightened_bounds;
                outcome.stats.presolve_removed_rows = pstats.removed_rows;
                // The root basis indexes the reduced row space; it cannot
                // seed a re-solve of the original model.
                outcome.root_basis = None;
                outcome
            }
            crate::presolve::PresolveOutcome::Infeasible => Outcome {
                status: Status::Infeasible,
                solution: None,
                stats: SolveStats::default(),
                root_basis: None,
            },
        }
    } else {
        branch_and_bound(model, options, root_basis)?
    };
    if rtr_trace::enabled() {
        outcome.stats.emit_metrics("milp");
        span.with("status", outcome.status.to_string())
            .with("nodes", outcome.stats.nodes as u64)
            .finish();
    }
    Ok(outcome)
}

/// A branch-and-bound node: its bound box plus the parent LP's optimal
/// basis (shared between sibling children).
struct Node {
    bounds: Vec<(f64, f64)>,
    parent_basis: Option<Rc<Basis>>,
}

/// The branch-and-bound core, run on an (optionally presolved) model.
fn branch_and_bound(
    model: &Model,
    options: &SolveOptions,
    root_basis: Option<&Basis>,
) -> Result<Outcome, MilpError> {
    let start = Instant::now();
    let int_vars: Vec<usize> = model.integer_vars().map(|v| v.index()).collect();
    let minimize_sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let root_bounds: Vec<(f64, f64)> = model
        .vars
        .iter()
        .map(|v| {
            let (lo, hi) = effective_bounds(v);
            if matches!(v.kind, VarKind::Integer | VarKind::Binary) {
                (lo.ceil(), hi.floor())
            } else {
                (lo, hi)
            }
        })
        .collect();

    let mut stats = SolveStats::default();
    let mut incumbent: Option<Solution> = None;
    // Incumbent objective in minimization terms.
    let mut incumbent_obj = f64::INFINITY;
    let mut stack: Vec<Node> =
        vec![Node { bounds: root_bounds, parent_basis: root_basis.map(|b| Rc::new(b.clone())) }];
    let mut saw_limit = false;
    let mut root_unbounded = false;
    let mut first_node = true;
    // Pivot-price baseline: the most expensive LP solved in this tree so
    // far (the root LP of a cold-started run; in a warm-rooted tree, the
    // priciest warm solve — still a lower bound on the cold-start price at
    // this model size, so the savings estimate stays conservative). A node
    // never claims savings against its own price: the baseline is updated
    // after the node is charged.
    let mut price_baseline = 0usize;
    let mut outcome_root_basis: Option<Basis> = None;

    while let Some(Node { bounds, parent_basis }) = stack.pop() {
        if stats.nodes >= options.node_limit {
            saw_limit = true;
            break;
        }
        if let Some(limit) = options.time_limit {
            if start.elapsed() >= limit {
                saw_limit = true;
                break;
            }
        }
        stats.nodes += 1;

        let deadline = options.time_limit.map(|t| start + t);
        let lp_start = Instant::now();
        let warm_basis = if options.warm_start { parent_basis.as_deref() } else { None };
        let lp = match warm_basis {
            Some(basis) => resolve_lp_with_deadline(
                model,
                Some(&bounds),
                basis,
                options.lp_tol,
                options.lp_iteration_limit,
                deadline,
            )?,
            None => solve_lp_with_deadline(
                model,
                Some(&bounds),
                options.lp_tol,
                options.lp_iteration_limit,
                deadline,
            )?,
        };
        stats.lp_time += lp_start.elapsed();
        stats.simplex_iterations += lp.iterations;
        stats.refactorizations += lp.refactorizations;
        if lp.warm {
            stats.warm_starts += 1;
            stats.pivots_saved += price_baseline.saturating_sub(lp.iterations);
        } else {
            stats.cold_starts += 1;
        }
        price_baseline = price_baseline.max(lp.iterations);
        let is_root = std::mem::take(&mut first_node);
        if is_root {
            outcome_root_basis = lp.basis.clone();
        }
        match lp.status {
            LpStatus::Infeasible => {
                stats.infeasible_nodes += 1;
                continue;
            }
            LpStatus::Interrupted => {
                saw_limit = true;
                break;
            }
            LpStatus::Unbounded => {
                // With bounded integer variables, unboundedness comes from
                // continuous directions and already holds at the root.
                if is_root {
                    root_unbounded = true;
                    break;
                }
                continue;
            }
            LpStatus::Optimal => {}
        }

        let lp_obj_min = minimize_sign * lp.objective;
        if incumbent.is_some() && lp_obj_min >= incumbent_obj - 1e-9 {
            stats.nodes_pruned += 1;
            continue; // dominated by the incumbent
        }

        // Rounding heuristic: at the root, try the nearest integer point.
        if is_root && options.rounding_heuristic && !int_vars.is_empty() {
            let mut rounded = lp.values.clone();
            for &j in &int_vars {
                rounded[j] = rounded[j].round().clamp(bounds[j].0, bounds[j].1);
            }
            if model.is_feasible_point(&rounded, options.int_tol.max(options.lp_tol)) {
                let objective = model.objective.eval(&rounded);
                let obj_min = minimize_sign * objective;
                if obj_min < incumbent_obj {
                    incumbent_obj = obj_min;
                    incumbent = Some(Solution { values: rounded, objective });
                    if options.goal == Goal::Feasibility {
                        break;
                    }
                }
            }
        }

        // Most-fractional branching.
        let mut branch: Option<(usize, f64, f64)> = None; // (var, value, frac distance)
        for &j in &int_vars {
            let v = lp.values[j];
            let frac = (v - v.round()).abs();
            if frac > options.int_tol {
                let score = (v - v.floor() - 0.5).abs(); // lower is more fractional
                match branch {
                    Some((_, _, best)) if best <= score => {}
                    _ => branch = Some((j, v, score)),
                }
            }
        }

        match branch {
            None => {
                // Integer feasible. Defensively re-check the point against
                // the raw constraints before accepting it as an incumbent:
                // a simplex numerical failure must never surface as a bogus
                // "feasible" answer.
                let mut values = lp.values.clone();
                for &j in &int_vars {
                    values[j] = values[j].round();
                }
                if !model.is_feasible_point(&values, 1e-5) {
                    continue;
                }
                let objective = model.objective.eval(&values);
                let obj_min = minimize_sign * objective;
                if obj_min < incumbent_obj {
                    incumbent_obj = obj_min;
                    incumbent = Some(Solution { values, objective });
                }
                if options.goal == Goal::Feasibility {
                    break;
                }
            }
            Some((j, v, _)) => {
                let floor = v.floor();
                let mut down = bounds.clone();
                down[j].1 = down[j].1.min(floor);
                let mut up = bounds;
                up[j].0 = up[j].0.max(floor + 1.0);
                // Both children warm-start from this node's optimal basis:
                // the only change is one variable's bound, which leaves the
                // basis dual feasible.
                let child_basis = lp.basis.map(Rc::new);
                let down = Node { bounds: down, parent_basis: child_basis.clone() };
                let up = Node { bounds: up, parent_basis: child_basis };
                // Explore the nearer branch first (depth-first).
                if v - floor <= 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    let status = if root_unbounded {
        Status::Unbounded
    } else {
        match (&incumbent, saw_limit, options.goal) {
            (Some(_), false, Goal::Optimal) => Status::Optimal,
            (Some(_), _, _) => Status::Feasible,
            (None, true, _) => Status::LimitReached,
            (None, false, _) => Status::Infeasible,
        }
    };
    Ok(Outcome { status, solution: incumbent, stats, root_basis: outcome_root_basis })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, LinExpr, Rel, Variable};
    use std::time::Duration;

    #[test]
    fn knapsack_optimal() {
        // max 10a + 13b + 7c s.t. 5a + 6b + 4c <= 10, binaries.
        // Best: b + c = 20, a + c = 17, a + b -> 11 > 10 infeasible. So {b, c} = 20.
        let mut m = Model::new();
        let a = m.add_var(Variable::binary());
        let b = m.add_var(Variable::binary());
        let c = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(
            LinExpr::new() + (5.0, a) + (6.0, b) + (4.0, c),
            Rel::Le,
            10.0,
        ));
        m.maximize(LinExpr::new() + (10.0, a) + (13.0, b) + (7.0, c));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.status, Status::Optimal);
        let sol = out.solution.unwrap();
        assert_eq!(sol.objective, 20.0);
        assert_eq!(sol.int_value(a), 0);
        assert_eq!(sol.int_value(b), 1);
        assert_eq!(sol.int_value(c), 1);
    }

    #[test]
    fn integer_rounding_gap() {
        // max x s.t. 2x <= 5, x integer -> 2 (LP gives 2.5).
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 10.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (2.0, x), Rel::Le, 5.0));
        m.maximize(LinExpr::new() + (1.0, x));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.status, Status::Optimal);
        assert_eq!(out.solution.unwrap().objective, 2.0);
    }

    #[test]
    fn infeasible_integer_model() {
        // 0.4 <= x <= 0.6, x integer: LP feasible, IP infeasible.
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Ge, 0.4));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 0.6));
        let out = m.solve(&SolveOptions::feasibility()).unwrap();
        assert_eq!(out.status, Status::Infeasible);
        assert!(out.solution.is_none());
    }

    #[test]
    fn feasibility_mode_stops_at_first_solution() {
        // A model with many feasible points; feasibility mode should explore
        // very few nodes.
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|_| m.add_var(Variable::binary())).collect();
        let sum: LinExpr = vars.iter().map(|&v| (1.0, v)).collect();
        m.add_constraint(Constraint::new(sum, Rel::Ge, 3.0));
        let out = m.solve(&SolveOptions::feasibility()).unwrap();
        assert_eq!(out.status, Status::Feasible);
        let sol = out.solution.unwrap();
        let total: f64 = sol.values.iter().sum();
        assert!(total >= 3.0 - 1e-6);
        assert!(out.stats.nodes <= 5, "nodes {}", out.stats.nodes);
    }

    #[test]
    fn equality_sum_partition() {
        // x1 + x2 + x3 = 2 with pairwise exclusion x1 + x2 <= 1 -> x3 = 1 and
        // exactly one of x1, x2.
        let mut m = Model::new();
        let x1 = m.add_var(Variable::binary());
        let x2 = m.add_var(Variable::binary());
        let x3 = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(
            LinExpr::new() + (1.0, x1) + (1.0, x2) + (1.0, x3),
            Rel::Eq,
            2.0,
        ));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x1) + (1.0, x2), Rel::Le, 1.0));
        let out = m.solve(&SolveOptions::feasibility()).unwrap();
        assert_eq!(out.status, Status::Feasible);
        let sol = out.solution.unwrap();
        assert_eq!(sol.int_value(x3), 1);
        assert_eq!(sol.int_value(x1) + sol.int_value(x2), 1);
    }

    #[test]
    fn unbounded_integer_model() {
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, f64::INFINITY));
        let y = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y), Rel::Le, 1.0));
        m.maximize(LinExpr::new() + (1.0, x));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.status, Status::Unbounded);
    }

    #[test]
    fn node_limit_reported() {
        // A tight feasibility problem needing branching, with node_limit 1 and
        // heuristics off: stops with LimitReached.
        let mut m = Model::new();
        let vars: Vec<_> = (0..10).map(|_| m.add_var(Variable::binary())).collect();
        let sum: LinExpr = vars.iter().map(|&v| (3.0, v)).collect();
        m.add_constraint(Constraint::new(sum.clone(), Rel::Ge, 7.0));
        m.add_constraint(Constraint::new(sum, Rel::Le, 8.0));
        let mut opts = SolveOptions::feasibility().with_node_limit(1);
        opts.rounding_heuristic = false;
        let out = m.solve(&opts).unwrap();
        // One node explored, branching needed, then the limit fires.
        assert!(matches!(out.status, Status::LimitReached | Status::Feasible));
        if out.status == Status::LimitReached {
            assert!(out.solution.is_none());
        }
    }

    #[test]
    fn time_limit_zero_fires_immediately() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Ge, 1.0));
        let opts = SolveOptions::feasibility().with_time_limit(Duration::ZERO);
        let out = m.solve(&opts).unwrap();
        assert_eq!(out.status, Status::LimitReached);
    }

    #[test]
    fn optimal_matches_brute_force_on_small_knapsacks() {
        // Deterministic pseudo-random 8-item knapsacks cross-checked against
        // exhaustive enumeration.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..25 {
            let items = 8;
            let weights: Vec<f64> = (0..items).map(|_| (next() % 20 + 1) as f64).collect();
            let values: Vec<f64> = (0..items).map(|_| (next() % 30 + 1) as f64).collect();
            let cap = (weights.iter().sum::<f64>() / 2.0).floor();

            let mut m = Model::new();
            let vars: Vec<_> = (0..items).map(|_| m.add_var(Variable::binary())).collect();
            m.add_constraint(Constraint::new(
                vars.iter().zip(&weights).map(|(&v, &w)| (w, v)).collect(),
                Rel::Le,
                cap,
            ));
            m.maximize(vars.iter().zip(&values).map(|(&v, &val)| (val, v)).collect());
            let out = m.solve(&SolveOptions::optimal()).unwrap();
            assert_eq!(out.status, Status::Optimal, "case {case}");
            let got = out.solution.unwrap().objective;

            let mut best = 0.0f64;
            for mask in 0u32..(1 << items) {
                let w: f64 = (0..items).filter(|&i| mask & (1 << i) != 0).map(|i| weights[i]).sum();
                if w <= cap {
                    let v: f64 =
                        (0..items).filter(|&i| mask & (1 << i) != 0).map(|i| values[i]).sum();
                    best = best.max(v);
                }
            }
            assert!((got - best).abs() < 1e-6, "case {case}: milp {got} vs brute {best}");
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 3x + 2y, x integer in [0,4], y continuous in [0, 2.5],
        // x + y <= 5 -> x = 4, y = 1 -> 14.
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 4.0));
        let y = m.add_var(Variable::continuous(0.0, 2.5));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 5.0));
        m.maximize(LinExpr::new() + (3.0, x) + (2.0, y));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.status, Status::Optimal);
        let sol = out.solution.unwrap();
        assert_eq!(sol.int_value(x), 4);
        assert!((sol.value(y) - 1.0).abs() < 1e-6);
        assert!((sol.objective - 14.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_bounds_are_tightened_for_integers() {
        // x integer in [0.3, 2.7] -> effectively [1, 2].
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.3, 2.7));
        m.maximize(LinExpr::new() + (1.0, x));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.solution.unwrap().objective, 2.0);
        let mut m2 = Model::new();
        let y = m2.add_var(Variable::integer(0.3, 2.7));
        m2.minimize(LinExpr::new() + (1.0, y));
        let out2 = m2.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out2.solution.unwrap().objective, 1.0);
    }
}
