//! Property tests: the MILP solver against exhaustive enumeration on random
//! small 0-1 programs.

use proptest::prelude::*;
use rtr_milp::{Constraint, LinExpr, Model, Rel, SolveOptions, Status, Variable};

#[derive(Debug, Clone)]
struct RandomIp {
    vars: usize,
    objective: Vec<f64>,
    // (coefficients, rel, rhs)
    constraints: Vec<(Vec<f64>, Rel, f64)>,
    maximize: bool,
}

fn arb_ip() -> impl Strategy<Value = RandomIp> {
    (2usize..7, 1usize..5, any::<bool>()).prop_flat_map(|(vars, cons, maximize)| {
        let coeff = -6i32..7;
        let objective = proptest::collection::vec(coeff.clone().prop_map(f64::from), vars);
        let row = (
            proptest::collection::vec(coeff.prop_map(f64::from), vars),
            prop_oneof![Just(Rel::Le), Just(Rel::Ge)],
            (-4i32..10).prop_map(f64::from),
        );
        let constraints = proptest::collection::vec(row, cons);
        (objective, constraints).prop_map(move |(objective, constraints)| RandomIp {
            vars,
            objective,
            constraints,
            maximize,
        })
    })
}

fn brute_force(ip: &RandomIp) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << ip.vars) {
        let x: Vec<f64> =
            (0..ip.vars).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
        let ok = ip.constraints.iter().all(|(row, rel, rhs)| {
            let lhs: f64 = row.iter().zip(&x).map(|(c, v)| c * v).sum();
            match rel {
                Rel::Le => lhs <= *rhs + 1e-9,
                Rel::Ge => lhs >= *rhs - 1e-9,
                Rel::Eq => (lhs - rhs).abs() <= 1e-9,
            }
        });
        if ok {
            let obj: f64 = ip.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
            best = Some(match best {
                None => obj,
                Some(b) if ip.maximize => b.max(obj),
                Some(b) => b.min(obj),
            });
        }
    }
    best
}

fn build_model(ip: &RandomIp) -> (Model, Vec<rtr_milp::VarId>) {
    let mut m = Model::new();
    let vars: Vec<_> = (0..ip.vars).map(|_| m.add_var(Variable::binary())).collect();
    for (row, rel, rhs) in &ip.constraints {
        let expr: LinExpr = vars.iter().zip(row).map(|(&v, &c)| (c, v)).collect();
        m.add_constraint(Constraint::new(expr, *rel, *rhs));
    }
    let obj: LinExpr = vars.iter().zip(&ip.objective).map(|(&v, &c)| (c, v)).collect();
    if ip.maximize {
        m.maximize(obj);
    } else {
        m.minimize(obj);
    }
    (m, vars)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, .. ProptestConfig::default() })]

    /// Optimality mode matches exhaustive enumeration exactly.
    #[test]
    fn optimal_matches_brute_force(ip in arb_ip()) {
        let (model, _) = build_model(&ip);
        let out = model.solve(&SolveOptions::optimal()).unwrap();
        match brute_force(&ip) {
            Some(best) => {
                prop_assert_eq!(out.status, Status::Optimal);
                let got = out.solution.as_ref().unwrap().objective;
                prop_assert!((got - best).abs() < 1e-6, "milp {got} vs brute {best}");
                // The returned point itself must be feasible.
                prop_assert!(model.is_feasible_point(&out.solution.unwrap().values, 1e-6));
            }
            None => prop_assert_eq!(out.status, Status::Infeasible),
        }
    }

    /// Feasibility mode agrees with enumeration on feasibility and returns
    /// a genuinely feasible point.
    #[test]
    fn feasibility_matches_brute_force(ip in arb_ip()) {
        let (model, _) = build_model(&ip);
        let out = model.solve(&SolveOptions::feasibility()).unwrap();
        match brute_force(&ip) {
            Some(_) => {
                prop_assert!(out.status.has_solution(), "status {:?}", out.status);
                prop_assert!(model.is_feasible_point(&out.solution.unwrap().values, 1e-6));
            }
            None => prop_assert_eq!(out.status, Status::Infeasible),
        }
    }

    /// Presolve preserves the feasible set: the presolved model has exactly
    /// the same optimum (or infeasibility) as the raw model.
    #[test]
    fn presolve_preserves_the_optimum(ip in arb_ip()) {
        use rtr_milp::{presolve, PresolveOutcome};
        let (model, _) = build_model(&ip);
        let brute = brute_force(&ip);
        match presolve(&model) {
            PresolveOutcome::Infeasible => prop_assert!(brute.is_none()),
            PresolveOutcome::Reduced(reduced, _) => {
                prop_assert!(reduced.constraint_count() <= model.constraint_count());
                let out = reduced.solve(&SolveOptions::optimal()).unwrap();
                match brute {
                    Some(best) => {
                        prop_assert_eq!(out.status, Status::Optimal);
                        let got = out.solution.unwrap().objective;
                        prop_assert!((got - best).abs() < 1e-6, "presolved {got} vs brute {best}");
                    }
                    None => prop_assert_eq!(out.status, Status::Infeasible),
                }
            }
        }
    }

    /// The LP relaxation's optimum bounds the integer optimum from the
    /// right side (weak duality of the relaxation).
    #[test]
    fn lp_relaxation_bounds_ip(ip in arb_ip()) {
        let (model, _) = build_model(&ip);
        let lp = rtr_milp::solve_lp(&model, None, 1e-7, 0).unwrap();
        let out = model.solve(&SolveOptions::optimal()).unwrap();
        if lp.status == rtr_milp::LpStatus::Optimal && out.status == Status::Optimal {
            let ip_obj = out.solution.unwrap().objective;
            if ip.maximize {
                prop_assert!(lp.objective >= ip_obj - 1e-6);
            } else {
                prop_assert!(lp.objective <= ip_obj + 1e-6);
            }
        }
    }
}
