//! Cross-check: the structured solver and the faithful ILP backend decide
//! the same feasibility questions and find the same optima on a corpus of
//! seeded random instances. This is the evidence that the structured
//! backend implements the paper's constraint set exactly.

use rtrpart::core::model::{IlpModel, ModelOptions};
use rtrpart::core::optimal::{solve_optimal, OptimalOutcome};
use rtrpart::graph::Area;
use rtrpart::graph::Latency;
use rtrpart::milp::{solve_mip, solve_mip_warm, SolveOptions};
use rtrpart::workloads::dct::dct_nxn;
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::{
    validate_solution, Architecture, Backend, ExploreParams, IterationResult, SearchLimits,
    TemporalPartitioner,
};

fn small_params(tasks: usize) -> RandomGraphParams {
    RandomGraphParams {
        tasks,
        max_layer_width: 3,
        edge_probability: 0.6,
        design_points: (1, 2),
        area_range: (30, 90),
        latency_range: (100.0, 500.0),
        data_range: (1, 3),
    }
}

#[test]
fn feasibility_windows_agree_on_random_instances() {
    for seed in 0..12u64 {
        let g = random_layered(seed, &small_params(5));
        let arch = Architecture::new(Area::new(120), 24, Latency::from_ns(100.0));
        let n = 3;
        // Probe a ladder of windows; both backends must agree at each rung.
        let d_max_abs = rtrpart::max_latency(&g, &arch, n);
        let d_min_abs = rtrpart::min_latency(&g, &arch, n);
        let span = d_max_abs.as_ns() - d_min_abs.as_ns();
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let window = Latency::from_ns(d_min_abs.as_ns() + span * frac);
            let mut answers = Vec::new();
            for backend in [Backend::Structured, Backend::Milp] {
                let params = ExploreParams { backend, ..Default::default() };
                let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
                let (result, sol) = part.solve_window(n, window, Latency::ZERO).unwrap();
                if let Some(sol) = &sol {
                    assert!(
                        validate_solution(&g, &arch, sol).is_empty(),
                        "seed {seed}: {backend:?} returned an invalid solution"
                    );
                    assert!(
                        sol.total_latency(&g, &arch) <= window + Latency::from_ns(1e-6),
                        "seed {seed}: {backend:?} exceeded the window"
                    );
                }
                answers.push(matches!(result, rtrpart::IterationResult::Feasible { .. }));
            }
            assert_eq!(
                answers[0], answers[1],
                "seed {seed}, frac {frac}: structured {} vs milp {}",
                answers[0], answers[1]
            );
        }
    }
}

/// The ILP backend proves a small DCT window both ways — feasible at the
/// full window, infeasible below `MinLatency` — and proves the same optimum
/// the structured backend proves. This is the paper's CPLEX path exercised
/// end to end on a real (if scaled-down) case-study instance.
#[test]
fn ilp_backend_proves_a_small_dct_window_like_structured() {
    let g = dct_nxn(2).expect("2x2 DCT builds");
    let arch = Architecture::new(Area::new(576), 512, Latency::from_us(1.0));
    let n = 2;
    let d_max = rtrpart::max_latency(&g, &arch, n);
    let d_min = rtrpart::min_latency(&g, &arch, n);

    for backend in [Backend::Structured, Backend::Milp] {
        let params = ExploreParams { backend, ..Default::default() };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        // Proven feasibility of the full window.
        let (result, sol) = part.solve_window(n, d_max, Latency::ZERO).unwrap();
        assert!(matches!(result, IterationResult::Feasible { .. }), "{backend:?}: {result:?}");
        let sol = sol.unwrap();
        assert!(validate_solution(&g, &arch, &sol).is_empty(), "{backend:?}");
        assert!(sol.total_latency(&g, &arch) <= d_max + Latency::from_ns(1e-6));
        // Proven infeasibility just below the latency lower bound.
        let below = Latency::from_ns(d_min.as_ns() - 1.0);
        let (result, _) = part.solve_window(n, below, Latency::ZERO).unwrap();
        assert!(matches!(result, IterationResult::Infeasible), "{backend:?}: {result:?}");
    }

    // Both backends prove the same optimum.
    let mut optima = Vec::new();
    for backend in [Backend::Structured, Backend::Milp] {
        match solve_optimal(&g, &arch, n, backend, SearchLimits::default()).unwrap() {
            OptimalOutcome::Optimal(sol, lat) => {
                assert!(validate_solution(&g, &arch, &sol).is_empty(), "{backend:?}");
                optima.push(lat.as_ns());
            }
            other => panic!("{backend:?}: expected a proven optimum, got {other:?}"),
        }
    }
    assert!((optima[0] - optima[1]).abs() < 1e-6, "structured {} vs milp {}", optima[0], optima[1]);
}

/// The warm-start differential: after the subdivision tightens the latency
/// window, a branch-and-bound run warm-started from the parent's root basis
/// reaches the same proven outcome as a cold run of the identical model —
/// with strictly fewer simplex pivots.
#[test]
fn warm_restarted_bb_matches_cold_with_strictly_fewer_pivots() {
    let g = dct_nxn(2).expect("2x2 DCT builds");
    let arch = Architecture::new(Area::new(576), 512, Latency::from_us(1.0));
    let n = 2;
    let d_max = rtrpart::max_latency(&g, &arch, n);
    let options =
        ModelOptions { minimize_latency: true, include_dmin_cut: false, ..Default::default() };
    let mut ilp = IlpModel::build(&g, &arch, n, d_max, Latency::ZERO, &options).unwrap();
    // Presolve off on every solve: the chained basis indexes the unreduced
    // model, and the cold reference must solve the identical model.
    let warm_opts = SolveOptions { presolve: false, ..SolveOptions::optimal() };
    let cold_opts = SolveOptions { warm_start: false, ..warm_opts.clone() };

    let parent = solve_mip(ilp.model(), &warm_opts).unwrap();
    assert_eq!(parent.status, rtrpart::milp::Status::Optimal);
    let basis = parent.root_basis.clone().expect("unreduced optimal solve returns a root basis");

    // The subdivision's mutation: only the latency RHS moves.
    ilp.set_latency_window(Latency::from_ns(d_max.as_ns() * 0.75), Latency::ZERO);
    let warm = solve_mip_warm(ilp.model(), &warm_opts, Some(&basis)).unwrap();
    let cold = solve_mip(ilp.model(), &cold_opts).unwrap();

    // Identical outcomes...
    assert_eq!(warm.status, cold.status);
    let (ws, cs) = (warm.solution.as_ref().unwrap(), cold.solution.as_ref().unwrap());
    assert!(
        (ws.objective - cs.objective).abs() < 1e-9,
        "warm {} vs cold {}",
        ws.objective,
        cs.objective
    );
    // ...strictly cheaper: the warm run re-used bases, the cold run paid
    // full price at every node. Skipped under ambient fault injection:
    // an injected `milp.refactorize` failure is *recovered* by falling
    // back to a cold restart, so the perf differential legitimately
    // vanishes while the outcome (asserted above) stays identical.
    if std::env::var_os("RTR_FAILPOINTS").is_some() {
        return;
    }
    assert!(warm.stats.warm_starts > 0, "{:?}", warm.stats);
    assert!(warm.stats.pivots_saved > 0, "{:?}", warm.stats);
    assert_eq!(cold.stats.warm_starts, 0, "{:?}", cold.stats);
    assert!(
        warm.stats.simplex_iterations < cold.stats.simplex_iterations,
        "warm spent {} pivots, cold {}",
        warm.stats.simplex_iterations,
        cold.stats.simplex_iterations
    );
}

#[test]
fn optimal_latencies_agree_on_random_instances() {
    for seed in 20..28u64 {
        let g = random_layered(seed, &small_params(4));
        let arch = Architecture::new(Area::new(150), 24, Latency::from_ns(250.0));
        let mut optima = Vec::new();
        for backend in [Backend::Structured, Backend::Milp] {
            match solve_optimal(&g, &arch, 3, backend, SearchLimits::default()).unwrap() {
                OptimalOutcome::Optimal(sol, lat) => {
                    assert!(validate_solution(&g, &arch, &sol).is_empty());
                    optima.push(Some(lat.as_ns()));
                }
                OptimalOutcome::Infeasible => optima.push(None),
                OptimalOutcome::Interrupted(_) => {
                    panic!("seed {seed}: {backend:?} hit a limit on a 4-task instance")
                }
            }
        }
        match (optima[0], optima[1]) {
            (Some(a), Some(b)) => {
                assert!((a - b).abs() < 1e-6, "seed {seed}: structured {a} vs milp {b}")
            }
            (None, None) => {}
            other => panic!("seed {seed}: feasibility disagreement {other:?}"),
        }
    }
}

#[test]
fn explorations_land_within_delta_of_each_other() {
    for seed in 40..46u64 {
        let g = random_layered(seed, &small_params(5));
        let arch = Architecture::new(Area::new(140), 32, Latency::from_ns(150.0));
        let delta = 50.0;
        let mut bests = Vec::new();
        for backend in [Backend::Structured, Backend::Milp] {
            let params = ExploreParams {
                backend,
                delta: Latency::from_ns(delta),
                gamma: 1,
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
            let ex = part.explore().unwrap();
            bests.push(ex.best_latency.map(|l| l.as_ns()));
        }
        match (bests[0], bests[1]) {
            (Some(a), Some(b)) => assert!(
                (a - b).abs() <= delta + 1e-6,
                "seed {seed}: structured {a} vs milp {b} differ by more than δ"
            ),
            (None, None) => {}
            other => panic!("seed {seed}: feasibility disagreement {other:?}"),
        }
    }
}
