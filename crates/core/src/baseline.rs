//! Greedy baseline partitioner.
//!
//! The paper motivates its `α`/`γ` knobs with exactly this heuristic
//! (§3.2.2): "Using a heuristic, if we map the least area design points for
//! each task we arrive at a solution with partition size N′ … Similarly,
//! using a heuristic and mapping the maximum area design point for each task,
//! we arrive at a solution with N″ partitions." The greedy partitioner also
//! serves as a comparison baseline for the benches: it picks one design
//! point per task up front and packs tasks into partitions level by level,
//! with no design-space exploration.

use crate::arch::{Architecture, EnvMemoryPolicy};
use crate::solution::{Placement, Solution};
use crate::validate::validate_solution;
use rtr_graph::TaskGraph;

/// How the greedy baseline picks a single design point per task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPointPicker {
    /// Always the smallest-area point (fewest partitions).
    MinArea,
    /// Always the largest-area point (fastest execution, most partitions).
    MaxArea,
    /// Always the lowest-latency point.
    MinLatency,
}

impl DesignPointPicker {
    fn pick(self, task: &rtr_graph::Task) -> usize {
        let dps = task.design_points();
        let chosen = match self {
            DesignPointPicker::MinArea => task.min_area_point(),
            DesignPointPicker::MaxArea => task.max_area_point(),
            DesignPointPicker::MinLatency => task.min_latency_point(),
        };
        // `chosen` aliases an element of `dps`, so the scan always hits;
        // index 0 is a safe fallback rather than a panic path.
        dps.iter().position(|d| std::ptr::eq(d, chosen)).unwrap_or(0)
    }
}

/// Greedily packs tasks (in topological order) into at most `n_cap`
/// partitions with the design point chosen by `picker`: each task goes to
/// the earliest partition that respects temporal order, area, and memory.
/// Returns `None` if the packing fails within `n_cap` partitions.
pub fn greedy_partition(
    graph: &TaskGraph,
    arch: &Architecture,
    picker: DesignPointPicker,
    n_cap: u32,
) -> Option<Solution> {
    let count = graph.task_count();
    let mut placements = vec![Placement { partition: 0, design_point: 0 }; count];
    let mut area_used = vec![0u64; n_cap as usize];
    let classes = arch.secondary_capacities().len();
    let mut sec_used = vec![vec![0u64; classes]; n_cap as usize];

    for &t in graph.topological_order() {
        let task = graph.task(t);
        let m = picker.pick(task);
        let dp = &task.design_points()[m];
        let area = dp.area().units();
        let p_min = graph
            .predecessors(t)
            .iter()
            .map(|q| placements[q.index()].partition)
            .max()
            .unwrap_or(1)
            .max(1);
        let mut placed = false;
        for p in p_min..=n_cap {
            if area_used[(p - 1) as usize] + area > arch.resource_capacity().units() {
                continue;
            }
            if arch
                .secondary_capacities()
                .iter()
                .enumerate()
                .any(|(k, &cap)| sec_used[(p - 1) as usize][k] + dp.secondary_usage(k) > cap)
            {
                continue;
            }
            // Tentatively place and check memory.
            placements[t.index()] = Placement { partition: p, design_point: m };
            let partial_ok = memory_ok_partial(graph, arch, &placements, n_cap);
            if partial_ok {
                area_used[(p - 1) as usize] += area;
                for (k, used) in sec_used[(p - 1) as usize].iter_mut().enumerate() {
                    *used += dp.secondary_usage(k);
                }
                placed = true;
                break;
            }
            placements[t.index()] = Placement { partition: 0, design_point: 0 };
        }
        if !placed {
            return None;
        }
    }
    let sol = Solution::new(placements, n_cap).compacted(n_cap);
    debug_assert!(validate_solution(graph, arch, &sol).is_empty());
    Some(sol)
}

/// Memory check over the assigned prefix (unassigned tasks, marked with
/// partition 0, are skipped; they can only add occupancy later, so a partial
/// violation is final).
fn memory_ok_partial(
    graph: &TaskGraph,
    arch: &Architecture,
    placements: &[Placement],
    n: u32,
) -> bool {
    if n < 2 {
        return true;
    }
    let mut mem = vec![0u64; (n - 1) as usize];
    for e in graph.edges() {
        let pa = placements[e.src().index()].partition;
        let pb = placements[e.dst().index()].partition;
        if pa == 0 || pb == 0 {
            continue;
        }
        for p in (pa + 1)..=pb {
            mem[(p - 2) as usize] += e.data();
        }
    }
    if arch.env_policy() == EnvMemoryPolicy::Resident {
        for (t, pl) in placements.iter().enumerate() {
            if pl.partition == 0 {
                continue;
            }
            let task = &graph.tasks()[t];
            for p in 2..=pl.partition {
                mem[(p - 2) as usize] += task.env_input();
            }
            for p in (pl.partition + 1)..=n {
                mem[(p - 2) as usize] += task.env_output();
            }
        }
    }
    mem.into_iter().all(|m| m <= arch.memory_capacity())
}

/// Suggested `(α, γ)` relaxations per the paper's §3.2.2: run the greedy
/// packer with min-area and max-area pickers and compare the partition
/// counts against `N_min^l` and `N_min^u`.
pub fn suggest_relaxations(graph: &TaskGraph, arch: &Architecture) -> (u32, u32) {
    let n_l = crate::bounds::min_area_partitions(graph, arch);
    let n_u = crate::bounds::max_area_partitions(graph, arch);
    let cap = (graph.task_count() as u32).max(n_u + 4);
    let alpha = greedy_partition(graph, arch, DesignPointPicker::MinArea, cap)
        .map(|s| s.partitions_used().saturating_sub(n_l))
        .unwrap_or(0);
    let gamma = greedy_partition(graph, arch, DesignPointPicker::MaxArea, cap)
        .map(|s| s.partitions_used().saturating_sub(n_u))
        .unwrap_or(0);
    (alpha, gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::{Area, DesignPoint, Latency, TaskGraphBuilder};

    fn dp(name: &str, area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new(name, Area::new(area), Latency::from_ns(lat))
    }

    fn chain(n: usize) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let mut prev = None;
        for i in 0..n {
            let t = b
                .add_task(format!("t{i}"))
                .design_point(dp("s", 40, 400.0))
                .design_point(dp("f", 80, 180.0))
                .finish();
            if let Some(p) = prev {
                b.add_edge(p, t, 1).unwrap();
            }
            prev = Some(t);
        }
        b.build().unwrap()
    }

    #[test]
    fn min_area_uses_fewer_partitions_than_max_area() {
        let g = chain(4);
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(10.0));
        let small = greedy_partition(&g, &arch, DesignPointPicker::MinArea, 10).unwrap();
        let large = greedy_partition(&g, &arch, DesignPointPicker::MaxArea, 10).unwrap();
        // 4 * 40 = 160 -> 2 partitions; 4 * 80 -> one per partition = 4.
        assert_eq!(small.partitions_used(), 2);
        assert_eq!(large.partitions_used(), 4);
        assert!(validate_solution(&g, &arch, &small).is_empty());
        assert!(validate_solution(&g, &arch, &large).is_empty());
    }

    #[test]
    fn min_latency_picker_picks_fast_points() {
        let g = chain(2);
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(10.0));
        let sol = greedy_partition(&g, &arch, DesignPointPicker::MinLatency, 10).unwrap();
        for pl in sol.placements() {
            assert_eq!(pl.design_point, 1);
        }
    }

    #[test]
    fn cap_too_small_fails() {
        let g = chain(4);
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(10.0));
        assert!(greedy_partition(&g, &arch, DesignPointPicker::MaxArea, 3).is_none());
    }

    #[test]
    fn memory_forces_later_partitions_or_failure() {
        // Two parallel producers feeding a consumer; tiny memory forbids any
        // boundary crossing, so everything must share one partition — which
        // the area does not allow.
        let mut b = TaskGraphBuilder::new();
        let p1 = b.add_task("p1").design_point(dp("m", 60, 100.0)).finish();
        let p2 = b.add_task("p2").design_point(dp("m", 60, 100.0)).finish();
        let c = b.add_task("c").design_point(dp("m", 60, 100.0)).finish();
        b.add_edge(p1, c, 5).unwrap();
        b.add_edge(p2, c, 5).unwrap();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 4, Latency::from_ns(10.0));
        assert!(greedy_partition(&g, &arch, DesignPointPicker::MinArea, 5).is_none());
        // With enough memory it succeeds.
        let arch_ok = Architecture::new(Area::new(100), 16, Latency::from_ns(10.0));
        assert!(greedy_partition(&g, &arch_ok, DesignPointPicker::MinArea, 5).is_some());
    }

    #[test]
    fn suggested_relaxations_are_consistent() {
        let g = chain(4);
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(10.0));
        let (alpha, gamma) = suggest_relaxations(&g, &arch);
        // Greedy min-area achieves exactly N_min^l here, and max-area exactly
        // N_min^u, so both relaxations are 0.
        assert_eq!((alpha, gamma), (0, 0));
    }
}
