//! End-to-end runs of the paper's two case studies through the full stack:
//! workload construction → exploration → validation → simulation.

use rtrpart::graph::{Area, Latency};
use rtrpart::workloads::{ar::ar_filter, dct::dct_4x4};
use rtrpart::{validate_solution, Architecture, ExploreParams, SearchLimits, TemporalPartitioner};
use std::time::Duration;

fn fast_limits() -> SearchLimits {
    SearchLimits { node_limit: 5_000_000, time_limit: Some(Duration::from_secs(2)) }
}

#[test]
fn ar_filter_explores_and_simulates() {
    let g = ar_filter().unwrap();
    // Size the device so 2-3 tasks share a configuration.
    let cap = g.total_min_area().units() / 2;
    let arch = Architecture::new(Area::new(cap), 64, Latency::from_us(1.0));
    let params = ExploreParams {
        delta: Latency::from_ns(50.0),
        gamma: 2,
        limits: fast_limits(),
        ..Default::default()
    };
    let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
    let ex = part.explore().unwrap();
    let best = ex.best.expect("AR filter is feasible");
    assert!(validate_solution(&g, &arch, &best).is_empty());
    let report = rtrpart::sim::simulate(&g, &arch, &best).unwrap();
    assert_eq!(report.total_latency, ex.best_latency.unwrap());
}

#[test]
fn dct_both_device_sizes_explore_and_simulate() {
    let g = dct_4x4();
    for r_max in [576u64, 1024] {
        let arch = Architecture::new(Area::new(r_max), 512, Latency::from_us(1.0));
        let params = ExploreParams {
            delta: Latency::from_ns(400.0),
            gamma: 1,
            limits: fast_limits(),
            time_budget: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        let ex = part.explore().unwrap();
        let best = ex.best.expect("DCT is feasible");
        assert!(validate_solution(&g, &arch, &best).is_empty(), "R_max {r_max}");
        let report = rtrpart::sim::simulate(&g, &arch, &best).unwrap();
        assert_eq!(report.total_latency, ex.best_latency.unwrap());
        // The paper's partition-bound arithmetic must hold.
        let n_l = rtrpart::min_area_partitions(&g, &arch);
        assert!(best.partitions_used() >= n_l, "R_max {r_max}");
    }
}

#[test]
fn dct_large_ct_stops_relaxation_immediately() {
    let g = dct_4x4();
    let arch = Architecture::new(Area::new(1024), 512, Latency::from_ms(10.0));
    let params = ExploreParams {
        delta: Latency::from_ns(400.0),
        gamma: 1,
        limits: fast_limits(),
        ..Default::default()
    };
    let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
    let ex = part.explore().unwrap();
    let best = ex.best.expect("feasible");
    let eta = best.partitions_used();
    // With C_T = 10 ms, MinLatency(N+1) - MinLatency(N) = 10 ms dwarfs any
    // execution gain, so no record should exist beyond the first feasible N
    // (the paper's Table 4/6/8 behaviour).
    let first_feasible_n = ex
        .records
        .iter()
        .find(|r| matches!(r.result, rtrpart::IterationResult::Feasible { .. }))
        .map(|r| r.n)
        .expect("a feasible record exists");
    assert!(ex.records.iter().all(|r| r.n <= first_feasible_n));
    assert!(eta <= first_feasible_n);
}

#[test]
fn graph_round_trips_through_text_format() {
    for g in [dct_4x4(), ar_filter().unwrap()] {
        let text = g.to_text();
        let parsed = rtrpart::graph::TaskGraph::from_text(&text).unwrap();
        assert_eq!(g, parsed);
    }
}

#[test]
fn dct_dot_export_is_complete() {
    let g = dct_4x4();
    let dot = g.to_dot();
    assert_eq!(dot.matches(" -> ").count(), 64);
    assert!(dot.contains("vp1_r0_c0"));
    assert!(dot.contains("vp2_r3_c3"));
}
