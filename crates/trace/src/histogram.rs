//! Power-of-two duration histograms for span aggregation.

use std::fmt;
use std::time::Duration;

/// Number of buckets: bucket `i` holds durations in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 holds `< 1 µs`).
const BUCKETS: usize = 40;

/// A log₂-bucketed histogram of durations.
///
/// Cheap to record into (one increment), compact to store, and good
/// enough to show whether a phase's cost is dominated by many small solves
/// or a few giant ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram { counts: [0; BUCKETS], total: 0 }
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(d: Duration) -> usize {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        self.counts[Self::bucket_of(d)] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// An upper bound of bucket `i` in microseconds.
    fn bucket_upper_us(i: usize) -> u64 {
        if i == 0 {
            1
        } else {
            1u64 << i
        }
    }

    /// The smallest bucket upper bound at or above quantile `q` (0..=1).
    /// Returns `None` on an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_micros(Self::bucket_upper_us(i)));
            }
        }
        Some(Duration::from_micros(Self::bucket_upper_us(BUCKETS - 1)))
    }

    /// A compact one-line rendering of the non-empty buckets, e.g.
    /// `<1µs:3 <2µs:1 <16ms:7`.
    pub fn render_compact(&self) -> String {
        let mut parts = Vec::new();
        for (i, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            let upper = Self::bucket_upper_us(i);
            let label = if upper < 1_000 {
                format!("<{upper}\u{b5}s")
            } else if upper < 1_000_000 {
                format!("<{}ms", upper / 1_000)
            } else {
                format!("<{}s", upper / 1_000_000)
            };
            parts.push(format!("{label}:{c}"));
        }
        parts.join(" ")
    }
}

impl fmt::Display for DurationHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = DurationHistogram::new();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(2));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1500));
        assert_eq!(h.count(), 5);
        let text = h.render_compact();
        assert!(text.contains("<1\u{b5}s:1"), "{text}");
        assert!(text.contains("<2\u{b5}s:1"), "{text}");
        assert!(text.contains("<4\u{b5}s:2"), "{text}");
        assert!(text.contains("<2ms:1"), "{text}");
    }

    #[test]
    fn quantiles_and_merge() {
        let mut h = DurationHistogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(1));
        }
        let mut slow = DurationHistogram::new();
        slow.record(Duration::from_millis(500));
        h.merge(&slow);
        assert_eq!(h.count(), 100);
        assert!(h.quantile_upper_bound(0.5).unwrap() <= Duration::from_micros(2));
        assert!(h.quantile_upper_bound(1.0).unwrap() >= Duration::from_millis(500));
    }

    #[test]
    fn huge_durations_saturate_the_last_bucket() {
        let mut h = DurationHistogram::new();
        h.record(Duration::from_secs(1 << 50));
        assert_eq!(h.count(), 1);
        assert!(h.quantile_upper_bound(1.0).is_some());
    }

    /// A deterministic sample generator spanning several buckets
    /// (SplitMix64, the workspace's seeded-workload generator family).
    fn samples(seed: u64, count: usize) -> Vec<Duration> {
        let mut state = seed;
        (0..count)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                Duration::from_micros(z % 100_000)
            })
            .collect()
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: Vec<DurationHistogram> = (0..3u64)
            .map(|i| {
                let mut h = DurationHistogram::new();
                for d in samples(i + 1, 500) {
                    h.record(d);
                }
                h
            })
            .collect();
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // a ∪ b == b ∪ a
        let mut ab = parts[0].clone();
        ab.merge(&parts[1]);
        let mut ba = parts[1].clone();
        ba.merge(&parts[0]);
        assert_eq!(ab, ba);
        // Merging matches recording the concatenated stream.
        let mut whole = DurationHistogram::new();
        for i in 0..3u64 {
            for d in samples(i + 1, 500) {
                whole.record(d);
            }
        }
        assert_eq!(left, whole);
        assert_eq!(whole.count(), 1500);
        // The empty histogram is the identity.
        let mut with_empty = whole.clone();
        with_empty.merge(&DurationHistogram::new());
        assert_eq!(with_empty, whole);
    }

    /// p50/p99 on a known distribution land within one log₂ bucket of the
    /// exact order statistic — the histogram's stated resolution.
    #[test]
    fn quantiles_are_within_bucket_error() {
        let mut data = samples(42, 4096);
        let mut h = DurationHistogram::new();
        for &d in &data {
            h.record(d);
        }
        data.sort();
        for q in [0.5, 0.99] {
            let rank = (((data.len() as f64) * q).ceil().max(1.0) as usize).min(data.len()) - 1;
            let exact = data[rank];
            let bound = h.quantile_upper_bound(q).unwrap();
            // The reported bound is a true upper bound of the exact order
            // statistic...
            assert!(bound >= exact, "q={q}: bound {bound:?} < exact {exact:?}");
            // ...and no looser than one power-of-two bucket above it: the
            // bucket of `exact` has upper edge <= 2^(ceil(log2(us))+1).
            let exact_us = exact.as_micros().max(1) as u64;
            let next_edge = (exact_us + 1).next_power_of_two().saturating_mul(2);
            assert!(
                bound <= Duration::from_micros(next_edge),
                "q={q}: bound {bound:?} beyond bucket error ({next_edge}µs) of {exact:?}"
            );
        }
        // Degenerate distribution: everything in one bucket pins both
        // quantiles to that bucket's edge.
        let mut spike = DurationHistogram::new();
        for _ in 0..1000 {
            spike.record(Duration::from_micros(3));
        }
        assert_eq!(spike.quantile_upper_bound(0.5), Some(Duration::from_micros(4)));
        assert_eq!(spike.quantile_upper_bound(0.99), Some(Duration::from_micros(4)));
    }
}
