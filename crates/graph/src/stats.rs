//! Structural statistics of a task graph.

use crate::graph::TaskGraph;
use crate::quantity::Latency;
use std::fmt;

/// Aggregate shape metrics of a task graph, useful for sizing devices and
/// explaining partitioner behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of root tasks (the paper's `T_r`).
    pub roots: usize,
    /// Number of leaf tasks (`T_l`).
    pub leaves: usize,
    /// Length (in tasks) of the longest dependency chain.
    pub depth: usize,
    /// Maximum number of tasks at one depth level (graph width).
    pub width: usize,
    /// Mean out-degree over non-leaf tasks.
    pub mean_fanout: f64,
    /// Total data volume on all edges.
    pub edge_data: u64,
    /// Total environment input volume `Σ B(env, t)`.
    pub env_input: u64,
    /// Total environment output volume `Σ B(t, env)`.
    pub env_output: u64,
    /// Mean number of design points per task.
    pub mean_design_points: f64,
    /// Serial work: the sum of min-latency design points (a lower bound on
    /// single-FU execution).
    pub min_work: Latency,
    /// Min-latency critical path.
    pub critical_path: Latency,
}

impl GraphStats {
    /// Intrinsic parallelism: serial work divided by the critical path
    /// (1.0 for a pure chain).
    pub fn parallelism(&self) -> f64 {
        if self.critical_path > Latency::ZERO {
            self.min_work.as_ns() / self.critical_path.as_ns()
        } else {
            0.0
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} tasks, {} edges ({} roots, {} leaves), depth {}, width {}",
            self.tasks, self.edges, self.roots, self.leaves, self.depth, self.width
        )?;
        writeln!(
            f,
            "fanout {:.2}, {:.1} design points/task, edge data {} + env {}/{} words",
            self.mean_fanout,
            self.mean_design_points,
            self.edge_data,
            self.env_input,
            self.env_output
        )?;
        write!(
            f,
            "work {} over critical path {} (parallelism {:.2})",
            self.min_work,
            self.critical_path,
            self.parallelism()
        )
    }
}

impl TaskGraph {
    /// Computes [`GraphStats`] for this graph.
    ///
    /// # Examples
    ///
    /// ```
    /// # use rtr_graph::{TaskGraphBuilder, DesignPoint, Area, Latency};
    /// # let mut b = TaskGraphBuilder::new();
    /// # let dp = DesignPoint::new("m", Area::new(1), Latency::from_ns(10.0));
    /// # let a = b.add_task("a").design_point(dp.clone()).finish();
    /// # let c = b.add_task("c").design_point(dp).finish();
    /// # b.add_edge(a, c, 1).unwrap();
    /// # let g = b.build().unwrap();
    /// let stats = g.stats();
    /// assert_eq!(stats.depth, 2);
    /// assert_eq!(stats.parallelism(), 1.0);
    /// ```
    pub fn stats(&self) -> GraphStats {
        let mut level = vec![0usize; self.task_count()];
        for &t in self.topological_order() {
            level[t.index()] =
                self.predecessors(t).iter().map(|p| level[p.index()] + 1).max().unwrap_or(0);
        }
        let depth = level.iter().copied().max().unwrap_or(0) + 1;
        let mut width_at = vec![0usize; depth];
        for &l in &level {
            width_at[l] += 1;
        }
        let non_leaves = self.task_ids().filter(|&t| !self.successors(t).is_empty()).count();
        let mean_fanout =
            if non_leaves > 0 { self.edge_count() as f64 / non_leaves as f64 } else { 0.0 };
        GraphStats {
            tasks: self.task_count(),
            edges: self.edge_count(),
            roots: self.roots().len(),
            leaves: self.leaves().len(),
            depth,
            width: width_at.into_iter().max().unwrap_or(0),
            mean_fanout,
            edge_data: self.edges().iter().map(|e| e.data()).sum(),
            env_input: self.tasks().iter().map(|t| t.env_input()).sum(),
            env_output: self.tasks().iter().map(|t| t.env_output()).sum(),
            mean_design_points: self.tasks().iter().map(|t| t.design_points().len()).sum::<usize>()
                as f64
                / self.task_count() as f64,
            min_work: self.tasks().iter().map(|t| t.min_latency_point().latency()).sum(),
            critical_path: self.critical_path_min_latency(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TaskGraphBuilder;
    use crate::quantity::Area;
    use crate::task::DesignPoint;

    fn dp(lat: f64) -> DesignPoint {
        DesignPoint::new("m", Area::new(10), Latency::from_ns(lat))
    }

    #[test]
    fn diamond_stats() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp(100.0)).env_input(4).finish();
        let l = b.add_task("l").design_point(dp(200.0)).finish();
        let r = b.add_task("r").design_point(dp(50.0)).finish();
        let j = b.add_task("j").design_point(dp(100.0)).env_output(1).finish();
        b.add_edge(a, l, 2).unwrap();
        b.add_edge(a, r, 3).unwrap();
        b.add_edge(l, j, 1).unwrap();
        b.add_edge(r, j, 1).unwrap();
        let s = b.build().unwrap().stats();
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.roots, 1);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.width, 2);
        assert_eq!(s.edge_data, 7);
        assert_eq!(s.env_input, 4);
        assert_eq!(s.env_output, 1);
        assert_eq!(s.min_work.as_ns(), 450.0);
        assert_eq!(s.critical_path.as_ns(), 400.0);
        assert!((s.parallelism() - 450.0 / 400.0).abs() < 1e-9);
        // mean fanout: 4 edges over 3 non-leaf tasks.
        assert!((s.mean_fanout - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_three_lines() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("only").design_point(dp(5.0)).finish();
        let s = b.build().unwrap().stats();
        assert_eq!(s.to_string().lines().count(), 3);
        assert_eq!(s.depth, 1);
        assert_eq!(s.mean_fanout, 0.0);
    }
}
