//! End-to-end sink tests: emit through the global dispatch, round-trip
//! through a JSONL file, and aggregate into a report. These tests install
//! the process-global sink, so they serialize on a mutex.

use rtr_trace::{
    counter, event, gauge, install, parse_jsonl, span, uninstall, JsonlSink, MemorySink, RunReport,
    Value,
};
use std::sync::{Arc, Mutex};

/// Serializes tests that touch the process-global sink.
static GUARD: Mutex<()> = Mutex::new(());

#[test]
fn jsonl_file_round_trips_into_a_report() {
    let _guard = GUARD.lock().unwrap();
    let path = std::env::temp_dir().join(format!("rtr_trace_rt_{}.jsonl", std::process::id()));

    let sink = JsonlSink::create(&path).expect("temp file");
    install(Arc::new(sink));
    {
        let mut s = span("phase.work").with("size", 3u64);
        s.add("flag", true);
        s.finish();
    }
    counter("work.items", 7);
    counter("work.items", 5);
    gauge("window.width", 2.5);
    event("search.iteration", || {
        vec![
            ("n".to_owned(), Value::U64(4)),
            ("result".to_owned(), Value::Str("feasible".to_owned())),
        ]
    });
    uninstall().expect("sink was installed");

    let text = std::fs::read_to_string(&path).expect("trace file exists");
    let _ = std::fs::remove_file(&path);
    let events = parse_jsonl(&text).expect("well-formed JSONL");
    assert_eq!(events.len(), 5);

    let report = RunReport::from_events(&events);
    assert_eq!(report.event_total, 5);
    assert_eq!(report.counter("work.items"), 12);
    assert_eq!(report.span("phase.work").unwrap().count, 1);
    assert_eq!(report.iterations_per_n.get(&4), Some(&1));
    assert_eq!(report.outcomes.get("feasible"), Some(&1));
    let g = report.gauges.get("window.width").unwrap();
    assert_eq!(g.last, 2.5);

    // The rendered report names everything that was emitted.
    let rendered = report.render();
    for needle in ["phase.work", "work.items", "window.width", "N = 4", "feasible"] {
        assert!(rendered.contains(needle), "missing {needle} in:\n{rendered}");
    }
}

#[test]
fn nothing_is_recorded_without_a_sink() {
    let _guard = GUARD.lock().unwrap();
    assert!(!rtr_trace::enabled());
    // All emission paths must be safe no-ops.
    counter("orphan", 1);
    gauge("orphan", 1.0);
    event("orphan", Vec::new);
    let s = span("orphan");
    assert!(!s.armed());
    s.finish();
}

#[test]
fn concurrent_emission_is_lossless() {
    let _guard = GUARD.lock().unwrap();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 250;

    let sink = Arc::new(MemorySink::new());
    install(sink.clone());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter("smoke.increments", 1);
                    if i == 0 {
                        span(if t % 2 == 0 { "smoke.even" } else { "smoke.odd" }).finish();
                    }
                }
            });
        }
    });
    uninstall().expect("sink was installed");

    let report = RunReport::from_events(&sink.take());
    assert_eq!(report.counter("smoke.increments"), THREADS * PER_THREAD);
    let spans: u64 =
        ["smoke.even", "smoke.odd"].iter().filter_map(|n| report.span(n)).map(|s| s.count).sum();
    assert_eq!(spans, THREADS);
}
