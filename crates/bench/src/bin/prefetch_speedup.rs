//! Extension experiment: configuration prefetching on a double-buffered
//! device (the behaviour of time-multiplexed FPGAs like the paper's
//! reference \[12\]). The optimizer's analytic model charges `η·C_T` for
//! reconfiguration; a prefetching device hides loads behind execution, so
//! the *measured* latency of the same solution drops — most where `C_T` is
//! comparable to per-partition execution time.
//!
//! `cargo run --release -p rtr-bench --bin prefetch_speedup`

use rtr_bench::BenchRun;
use rtr_core::{Architecture, ExploreParams, SearchLimits, TemporalPartitioner};
use rtr_graph::{Area, Latency};
use rtr_sim::{simulate, simulate_with, SimOptions};
use rtr_workloads::dct::dct_4x4;
use std::time::Duration;

fn main() {
    let graph = dct_4x4();
    let mut bench = BenchRun::new("prefetch_speedup");
    println!("{:>12} {:>5} {:>14} {:>14} {:>9}", "C_T", "η", "blocking", "prefetch", "speedup");
    for ct_ns in [30.0, 100.0, 300.0, 1e3, 3e3, 1e4] {
        let arch = Architecture::new(Area::new(1024), 512, Latency::from_ns(ct_ns));
        let params = ExploreParams {
            delta: Latency::from_ns(400.0),
            gamma: 1,
            limits: SearchLimits {
                node_limit: 10_000_000,
                time_limit: Some(Duration::from_secs(2)),
            },
            time_budget: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let partitioner = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
        let ex = partitioner.explore().expect("exploration runs");
        let best = ex.best.expect("DCT is feasible");
        let blocking = simulate(&graph, &arch, &best).expect("valid solution");
        let prefetch = simulate_with(&graph, &arch, &best, &SimOptions { prefetch: true })
            .expect("valid solution");
        println!(
            "{:>12} {:>5} {:>14} {:>14} {:>8.2}x",
            Latency::from_ns(ct_ns).to_string(),
            best.partitions_used(),
            blocking.total_latency.to_string(),
            prefetch.total_latency.to_string(),
            blocking.total_latency.as_ns() / prefetch.total_latency.as_ns()
        );
        let prefix = format!("ct{ct_ns:.0}ns.");
        bench.counter(format!("{prefix}eta"), u64::from(best.partitions_used()));
        bench.metric(format!("{prefix}blocking_ns"), blocking.total_latency.as_ns());
        bench.metric(format!("{prefix}prefetch_ns"), prefetch.total_latency.as_ns());
        bench.metric(
            format!("{prefix}speedup"),
            blocking.total_latency.as_ns() / prefetch.total_latency.as_ns(),
        );
    }
    println!("\nthe speedup peaks where C_T is comparable to per-partition execution;");
    println!("tiny C_T has nothing to hide, huge C_T cannot be hidden.");
    bench.write_and_report();
}
