//! Degenerate-input contracts: inputs at the edge of the domain produce a
//! typed error or a valid empty result — never a panic, never a bogus
//! solution.

use rtrpart::graph::{Area, DesignPoint, GraphError, Latency, TaskGraphBuilder};
use rtrpart::{Architecture, ExploreParams, PartitionError, SearchLimits, TemporalPartitioner};
use std::time::Duration;

fn one_task_graph() -> rtrpart::graph::TaskGraph {
    let mut b = TaskGraphBuilder::new();
    b.add_task("t")
        .design_point(DesignPoint::new("m", Area::new(10), Latency::from_ns(100.0)))
        .finish();
    b.build().unwrap()
}

#[test]
fn empty_graph_is_a_typed_build_error() {
    let b = TaskGraphBuilder::new();
    assert!(matches!(b.build(), Err(GraphError::Empty)));
}

#[test]
fn zero_area_device_is_a_typed_partitioner_error() {
    let g = one_task_graph();
    // R_max = 0 admits no design point of any task, so the partitioner
    // must refuse the instance up front with the task named.
    let arch = Architecture::new(Area::new(0), 64, Latency::from_ns(100.0));
    match TemporalPartitioner::new(&g, &arch, ExploreParams::default()) {
        Err(PartitionError::TaskTooLarge { task, min_area, capacity }) => {
            assert_eq!(task, "t");
            assert_eq!(min_area, 10);
            assert_eq!(capacity, 0);
        }
        other => panic!("expected TaskTooLarge, got {other:?}"),
    }
}

#[test]
fn zero_time_budget_returns_best_so_far_not_a_panic() {
    let g = one_task_graph();
    let arch = Architecture::new(Area::new(32), 64, Latency::from_ns(100.0));
    let params = ExploreParams { time_budget: Some(Duration::ZERO), ..Default::default() };
    let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
    // Phase 1 always runs its first bound before the budget check, so the
    // exploration returns a valid (possibly empty) result rather than
    // erroring out.
    let ex = part.explore().expect("zero budget still explores the first bound");
    assert!(!ex.records.is_empty());
    if let Some(best) = &ex.best {
        assert!(rtrpart::validate_solution(&g, &arch, best).is_empty());
    }
}

#[test]
fn zero_node_limit_is_an_undecided_window_not_a_panic() {
    let g = one_task_graph();
    let arch = Architecture::new(Area::new(32), 64, Latency::from_ns(100.0));
    let params = ExploreParams {
        limits: SearchLimits { node_limit: 0, time_limit: None },
        ..Default::default()
    };
    let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
    let ex = part.explore().expect("zero node budget degrades to undecided windows");
    if let Some(best) = &ex.best {
        assert!(rtrpart::validate_solution(&g, &arch, best).is_empty());
    }
}

#[test]
fn zero_partition_bound_is_a_typed_error_or_infeasible() {
    let g = one_task_graph();
    let arch = Architecture::new(Area::new(32), 64, Latency::from_ns(100.0));
    // The milp backend rejects n = 0 while building the ILP; the
    // structured backend has no model to build and reports the window as
    // unsatisfiable. Either way: typed, no panic.
    let milp = ExploreParams { backend: rtrpart::Backend::Milp, ..Default::default() };
    let part = TemporalPartitioner::new(&g, &arch, milp).unwrap();
    assert!(matches!(
        part.solve_window(0, Latency::from_ns(1000.0), Latency::from_ns(0.0)),
        Err(PartitionError::ZeroPartitions)
    ));
    let part = TemporalPartitioner::new(&g, &arch, ExploreParams::default()).unwrap();
    let (result, sol) =
        part.solve_window(0, Latency::from_ns(1000.0), Latency::from_ns(0.0)).unwrap();
    assert!(sol.is_none(), "n = 0 cannot place anything, got {result:?}");
}
