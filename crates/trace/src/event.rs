//! Structured events: the unit of everything the trace layer records.

use std::fmt;
use std::time::Duration;

/// A dynamically typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counters, ids, node totals).
    U64(u64),
    /// Floating point (latencies in ns, objective values).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (outcome labels, backend names).
    Str(String),
}

impl Value {
    /// The value as `u64`, if it is an integer (or an integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v.into())
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Duration> for Value {
    fn from(v: Duration) -> Self {
        Value::U64(v.as_micros() as u64)
    }
}

/// What kind of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A closed span: a named stretch of wall-clock time. Carries a
    /// `dur_us` field with its duration in microseconds.
    Span,
    /// A monotonic counter increment. Carries a `value` field.
    Counter,
    /// A point-in-time level sample. Carries a `value` field.
    Gauge,
    /// A structured point event with arbitrary fields.
    Event,
}

impl EventKind {
    /// The canonical serialized label.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Event => "event",
        }
    }

    /// Parses a serialized label.
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "span" => EventKind::Span,
            "counter" => EventKind::Counter,
            "gauge" => EventKind::Gauge,
            "event" => EventKind::Event,
            _ => return None,
        })
    }
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the process trace epoch (first trace activity).
    pub ts_us: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Dotted name, e.g. `milp.solve` or `search.iteration`.
    pub name: String,
    /// Key/value payload, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Builds an event with the current trace timestamp.
    pub fn new(kind: EventKind, name: impl Into<String>) -> Self {
        Event { ts_us: crate::sink::now_us(), kind, name: name.into(), fields: Vec::new() }
    }

    /// Builder-style field append.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Looks a field up by key (first match wins).
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A `u64` field, if present and integral.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(Value::as_u64)
    }

    /// An `f64` field, if present and numeric.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(Value::as_f64)
    }

    /// A string field, if present and textual.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(Value::as_str)
    }

    /// The span duration, for [`EventKind::Span`] records.
    pub fn duration(&self) -> Option<Duration> {
        if self.kind != EventKind::Span {
            return None;
        }
        self.u64_field("dur_us").map(Duration::from_micros)
    }
}

/// Types that can describe themselves as trace metrics — implemented by the
/// solver-statistics structs across the workspace so each layer emits its
/// counters through one shared path instead of hand-copied `counter()`
/// calls.
pub trait Instrument {
    /// Emits this value's metrics under the dotted `scope` prefix (e.g.
    /// scope `milp.solve` yields counters `milp.solve.nodes`, ...).
    fn emit_metrics(&self, scope: &str);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-2i64), Value::I64(-2));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(Duration::from_millis(2)), Value::U64(2000));
        assert_eq!(Value::U64(7).as_f64(), Some(7.0));
        assert_eq!(Value::F64(7.0).as_u64(), Some(7));
        assert_eq!(Value::F64(7.5).as_u64(), None);
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Bool(true).as_u64(), None);
    }

    #[test]
    fn event_field_lookup() {
        let e = Event::new(EventKind::Event, "x").with("a", 1u64).with("b", "s");
        assert_eq!(e.u64_field("a"), Some(1));
        assert_eq!(e.str_field("b"), Some("s"));
        assert!(e.field("c").is_none());
        assert!(e.duration().is_none());
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in [EventKind::Span, EventKind::Counter, EventKind::Gauge, EventKind::Event] {
            assert_eq!(EventKind::from_label(k.label()), Some(k));
        }
        assert_eq!(EventKind::from_label("nope"), None);
    }
}
