//! Shared experiment harness for the table-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table of the paper's
//! evaluation section; the configuration and printing logic lives here so
//! the binaries stay declarative. See `DESIGN.md` (per-experiment index)
//! and `EXPERIMENTS.md` (paper-vs-measured record) at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rtr_core::{
    Architecture, ExploreParams, Exploration, IterationResult, SearchLimits,
    TemporalPartitioner,
};
use rtr_graph::{Area, Latency, TaskGraph};
use std::time::Duration;

/// Configuration of one DCT experiment (one paper table).
#[derive(Debug, Clone, Copy)]
pub struct DctExperiment {
    /// Table number in the paper.
    pub table: u32,
    /// Device capacity `R_max`.
    pub r_max: u64,
    /// Reconfiguration time `C_T`.
    pub ct: Latency,
    /// Latency tolerance `δ` in ns.
    pub delta_ns: f64,
    /// Starting partition relaxation `α`.
    pub alpha: u32,
    /// Ending partition relaxation `γ`.
    pub gamma: u32,
}

impl DctExperiment {
    /// Table 3: `R_max = 576`, small reconfiguration overhead, δ = 200.
    pub fn table3() -> Self {
        DctExperiment {
            table: 3,
            r_max: 576,
            ct: Latency::from_us(1.0),
            delta_ns: 200.0,
            alpha: 0,
            gamma: 1,
        }
    }

    /// Table 4: `R_max = 576`, `C_T = 10 ms`, δ = 200.
    pub fn table4() -> Self {
        DctExperiment { ct: Latency::from_ms(10.0), table: 4, ..DctExperiment::table3() }
    }

    /// Table 5: `R_max = 1024`, δ = 800, small overhead, α = 1.
    pub fn table5() -> Self {
        DctExperiment {
            table: 5,
            r_max: 1024,
            ct: Latency::from_us(1.0),
            delta_ns: 800.0,
            alpha: 1,
            gamma: 1,
        }
    }

    /// Table 6: `R_max = 1024`, δ = 800, `C_T = 10 ms`, α = 0.
    pub fn table6() -> Self {
        DctExperiment { table: 6, ct: Latency::from_ms(10.0), alpha: 0, ..DctExperiment::table5() }
    }

    /// Table 7: `R_max = 1024`, δ = 100, small overhead.
    pub fn table7() -> Self {
        DctExperiment { table: 7, delta_ns: 100.0, ..DctExperiment::table5() }
    }

    /// Table 8: `R_max = 1024`, δ = 100, `C_T = 10 ms`.
    pub fn table8() -> Self {
        DctExperiment { table: 8, delta_ns: 100.0, ..DctExperiment::table6() }
    }

    /// The architecture of this experiment (`M_max` = 512 words throughout,
    /// comfortably above the DCT's peak demand so the memory constraint is
    /// present but non-binding, as in the paper).
    pub fn architecture(&self) -> Architecture {
        Architecture::new(Area::new(self.r_max), 512, self.ct)
    }

    /// The exploration parameters of this experiment.
    pub fn params(&self) -> ExploreParams {
        ExploreParams {
            delta: Latency::from_ns(self.delta_ns),
            alpha: self.alpha,
            gamma: self.gamma,
            limits: per_solve_limits(),
            time_budget: Some(Duration::from_secs(120)),
            ..Default::default()
        }
    }
}

/// Per-`SolveModel()` limits used by all table binaries: enough to decide
/// the paper-scale windows, bounded so a full table regenerates in seconds.
pub fn per_solve_limits() -> SearchLimits {
    SearchLimits { node_limit: 40_000_000, time_limit: Some(Duration::from_secs(5)) }
}

/// Runs a DCT experiment and returns the exploration.
///
/// # Panics
///
/// Panics if the partitioner rejects the instance (cannot happen for the
/// DCT at the paper's device sizes).
pub fn run_dct_experiment(exp: &DctExperiment, graph: &TaskGraph) -> Exploration {
    let arch = exp.architecture();
    let partitioner =
        TemporalPartitioner::new(graph, &arch, exp.params()).expect("DCT tasks fit the device");
    partitioner.explore().expect("structured backend cannot fail")
}

/// Prints an exploration in the layout of the paper's tables: one row per
/// `SolveModel()` call with the bounds shown *without* the `N·C_T`
/// reconfiguration overhead, exactly like the paper's "Bound (without
/// N×C_T)" columns.
pub fn print_paper_table(title: &str, arch: &Architecture, exploration: &Exploration) {
    println!("{title}");
    println!(
        "{:>4} {:>4} {:>14} {:>14} {:>14} {:>4} {:>12}",
        "N", "I", "Dmin(ns)", "Dmax(ns)", "Da(ns)", "η", "time"
    );
    for r in &exploration.records {
        // Da is shown with the same N·C_T normalization as the bound
        // columns, so Da ≤ Dmax holds row-wise; η shows how many
        // partitions the solution actually used.
        let (result, eta) = match &r.result {
            IterationResult::Feasible { latency, eta } => (
                format!("{:.0}", latency.as_ns() - (arch.reconfig_time() * r.n).as_ns()),
                eta.to_string(),
            ),
            IterationResult::Infeasible => ("Inf.".to_owned(), "-".to_owned()),
            IterationResult::LimitReached => ("Inf.*".to_owned(), "-".to_owned()),
        };
        println!(
            "{:>4} {:>4} {:>14.0} {:>14.0} {:>14} {:>4} {:>12}",
            r.n,
            r.iteration,
            r.d_min_execution(arch).as_ns(),
            r.d_max_execution(arch).as_ns(),
            result,
            eta,
            format!("{:.1?}", r.elapsed),
        );
    }
    match (&exploration.best, exploration.best_latency) {
        (Some(best), Some(latency)) => {
            println!(
                "best: D_a = {:.0} ns total ({:.0} ns execution over η = {} partitions)",
                latency.as_ns(),
                latency.as_ns() - (arch.reconfig_time() * best.partitions_used()).as_ns(),
                best.partitions_used()
            );
        }
        _ => println!("no feasible solution found"),
    }
    println!(
        "(N_min^l = {}, N_min^u = {}; `Inf.*` = search budget exhausted, treated as infeasible)",
        exploration.n_min_lower, exploration.n_min_upper
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_workloads::dct::dct_4x4;

    #[test]
    fn experiment_configs_match_paper_parameters() {
        assert_eq!(DctExperiment::table3().r_max, 576);
        assert_eq!(DctExperiment::table4().ct, Latency::from_ms(10.0));
        assert_eq!(DctExperiment::table5().alpha, 1);
        assert_eq!(DctExperiment::table7().delta_ns, 100.0);
        assert_eq!(DctExperiment::table8().r_max, 1024);
    }

    #[test]
    fn table_printer_does_not_panic() {
        let g = dct_4x4();
        let exp = DctExperiment {
            table: 0,
            r_max: 1024,
            ct: Latency::from_us(1.0),
            delta_ns: 2_000.0,
            alpha: 0,
            gamma: 0,
        };
        let ex = run_dct_experiment(&exp, &g);
        print_paper_table("smoke", &exp.architecture(), &ex);
        assert!(ex.best.is_some());
    }
}
