//! CPLEX LP-format export.
//!
//! Writing a model in the standard LP text format lets it be inspected by
//! hand or cross-checked with an external solver — fitting for a crate
//! whose whole purpose is standing in for CPLEX.

use crate::model::{Model, Rel, Sense, VarKind};
use std::fmt::Write as _;

impl Model {
    /// Renders the model in CPLEX LP format.
    ///
    /// Variable names come from [`Variable::with_name`](crate::Variable::with_name)
    /// (sanitized to LP-legal characters) or default to `x<index>`; name
    /// collisions fall back to the indexed form.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtr_milp::{Model, Variable, Constraint, LinExpr, Rel};
    /// let mut m = Model::new();
    /// let x = m.add_var(Variable::binary().with_name("x"));
    /// m.add_constraint(Constraint::new(LinExpr::new() + (2.0, x), Rel::Le, 1.0));
    /// m.maximize(LinExpr::new() + (1.0, x));
    /// let lp = m.to_lp_format();
    /// assert!(lp.starts_with("Maximize"));
    /// assert!(lp.contains("Binary"));
    /// assert!(lp.trim_end().ends_with("End"));
    /// ```
    pub fn to_lp_format(&self) -> String {
        let names = self.lp_names();
        let mut out = String::new();
        out.push_str(match self.sense {
            Sense::Minimize => "Minimize\n",
            Sense::Maximize => "Maximize\n",
        });
        out.push_str(" obj:");
        let obj = self.objective.normalized();
        if obj.is_empty() {
            out.push_str(" 0 "); // LP format needs at least one term
            out.push_str(&names[0]);
        } else {
            write_terms(&mut out, &obj, &names);
        }
        out.push('\n');

        out.push_str("Subject To\n");
        for (i, c) in self.constraints.iter().enumerate() {
            let label = sanitize(c.name().unwrap_or(""), &format!("c{i}"));
            let _ = write!(out, " {label}:");
            let terms = c.expr().normalized();
            if terms.is_empty() {
                // Degenerate row: encode as 0 * x0 so the file stays legal.
                let _ = write!(out, " 0 {}", names[0]);
            } else {
                write_terms(&mut out, &terms, &names);
            }
            let op = match c.rel() {
                Rel::Le => "<=",
                Rel::Ge => ">=",
                Rel::Eq => "=",
            };
            let _ = writeln!(out, " {op} {}", fmt_num(c.rhs()));
        }

        out.push_str("Bounds\n");
        for (j, v) in self.vars.iter().enumerate() {
            let name = &names[j];
            let (lo, hi) = (v.lower(), v.upper());
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) => {
                    let _ = writeln!(out, " {} <= {name} <= {}", fmt_num(lo), fmt_num(hi));
                }
                (true, false) => {
                    let _ = writeln!(out, " {name} >= {}", fmt_num(lo));
                }
                (false, true) => {
                    let _ = writeln!(out, " {name} <= {}", fmt_num(hi));
                }
                (false, false) => {
                    let _ = writeln!(out, " {name} free");
                }
            }
        }

        let generals: Vec<&str> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind() == VarKind::Integer)
            .map(|(j, _)| names[j].as_str())
            .collect();
        if !generals.is_empty() {
            out.push_str("General\n");
            for n in generals {
                let _ = writeln!(out, " {n}");
            }
        }
        let binaries: Vec<&str> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind() == VarKind::Binary)
            .map(|(j, _)| names[j].as_str())
            .collect();
        if !binaries.is_empty() {
            out.push_str("Binary\n");
            for n in binaries {
                let _ = writeln!(out, " {n}");
            }
        }
        out.push_str("End\n");
        out
    }

    fn lp_names(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        self.vars
            .iter()
            .enumerate()
            .map(|(j, v)| {
                let candidate = sanitize(v.name().unwrap_or(""), &format!("x{j}"));
                if seen.insert(candidate.clone()) {
                    candidate
                } else {
                    let fallback = format!("x{j}");
                    seen.insert(fallback.clone());
                    fallback
                }
            })
            .collect()
    }
}

fn write_terms(out: &mut String, terms: &[(crate::VarId, f64)], names: &[String]) {
    for (k, (v, c)) in terms.iter().enumerate() {
        let sign = if *c < 0.0 {
            " - "
        } else if k == 0 {
            " "
        } else {
            " + "
        };
        let _ = write!(out, "{sign}{} {}", fmt_num(c.abs()), names[v.index()]);
    }
}

fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// LP names must start with a letter and avoid operators; invalid or empty
/// names fall back to `fallback`.
fn sanitize(name: &str, fallback: &str) -> String {
    let cleaned: String =
        name.chars()
            .map(|ch| {
                if ch.is_ascii_alphanumeric() || "_!#$%&(),.;?@{}~'`".contains(ch) {
                    ch
                } else {
                    '_'
                }
            })
            .collect();
    if cleaned.is_empty() || !cleaned.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
        fallback.to_owned()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, LinExpr, Variable};

    #[test]
    fn full_file_structure() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary().with_name("pick"));
        let y = m.add_var(Variable::integer(0.0, 9.0));
        let z = m.add_var(Variable::free());
        m.add_constraint(
            Constraint::new(LinExpr::new() + (1.5, x) + (-2.0, y), Rel::Le, 4.0).with_name("cap"),
        );
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, z), Rel::Eq, 0.5));
        m.minimize(LinExpr::new() + (3.0, x) + (1.0, z));
        let lp = m.to_lp_format();
        assert!(lp.starts_with("Minimize\n obj: 3 pick + 1 x2\n"));
        assert!(lp.contains(" cap: 1.5 pick - 2 x1 <= 4\n"));
        assert!(lp.contains(" c1: 1 x2 = 0.5\n"));
        assert!(lp.contains(" 0 <= pick <= 1\n"));
        assert!(lp.contains(" 0 <= x1 <= 9\n"));
        assert!(lp.contains(" x2 free\n"));
        assert!(lp.contains("General\n x1\n"));
        assert!(lp.contains("Binary\n pick\n"));
        assert!(lp.trim_end().ends_with("End"));
    }

    #[test]
    fn empty_objective_and_duplicate_names() {
        let mut m = Model::new();
        let _a = m.add_var(Variable::binary().with_name("dup"));
        let _b = m.add_var(Variable::binary().with_name("dup"));
        let lp = m.to_lp_format();
        // Second `dup` falls back to an indexed name.
        assert!(lp.contains("Binary\n dup\n x1\n"), "{lp}");
        assert!(lp.contains(" obj: 0 dup"));
    }

    #[test]
    fn sanitization() {
        assert_eq!(sanitize("y p1 t2", "f"), "y_p1_t2");
        assert_eq!(sanitize("", "f"), "f");
        assert_eq!(sanitize("0start", "f"), "f");
        assert_eq!(sanitize("a<=b", "f"), "a__b");
    }

    #[test]
    fn partitioning_model_exports() {
        // The real ILP from rtr-core should produce a well-formed file; here
        // we check a representative structural subset built directly.
        let mut m = Model::new();
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_var(Variable::binary().with_name(format!("y_p{}_t{}", i / 3, i % 3))))
            .collect();
        for t in 0..3 {
            m.add_constraint(
                Constraint::new(LinExpr::new() + (1.0, vars[t]) + (1.0, vars[t + 3]), Rel::Eq, 1.0)
                    .with_name(format!("unique_t{t}")),
            );
        }
        let lp = m.to_lp_format();
        assert_eq!(lp.matches("unique_t").count(), 3);
        // terms + bounds + binary section + the zero-objective placeholder.
        assert_eq!(lp.matches("y_p").count(), 6 + 6 + 6 + 1);
    }
}
