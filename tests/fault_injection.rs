//! Differential fault-injection harness: with failpoints armed at every
//! registered site, the public API must degrade — never panic, never return
//! an invalid solution.
//!
//! Three contracts are exercised per site:
//!
//! * every solution that comes back passes `validate_solution`;
//! * every error that comes back is a typed `PartitionError`;
//! * no panic escapes the public API (a panic would fail the test harness).
//!
//! Outcome-invariant sites (`milp.refactorize`, `milp.warm_basis`,
//! `structured.memo_insert`, `checkpoint.write`) additionally must leave
//! results bit-identical to a clean run: the fault is absorbed by a
//! fallback path that recomputes the same answer.
//!
//! The failpoint registry is process-global, so every test here serializes
//! on one mutex and clears the registry before returning.

use rtrpart::graph::{Area, Latency};
use rtrpart::trace::failpoint::{self, FailpointConfig};
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::workloads::rng::Rng;
use rtrpart::{
    validate_solution, Architecture, Backend, ExploreParams, SearchLimits, TemporalPartitioner,
};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes tests that install process-global failpoint configurations.
fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clears the registry even if an assertion unwinds.
struct ClearOnDrop;
impl Drop for ClearOnDrop {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

struct Instance {
    seed: u64,
    gp: RandomGraphParams,
    cap: u64,
    mem: u64,
    ct: f64,
}

/// Same scheme as `tests/parallel_determinism.rs` (the salt decorrelates
/// the streams).
fn instance(salt: u64, case: u64) -> Instance {
    let mut r = Rng::new(salt.wrapping_mul(0x9e37_79b9).wrapping_add(case));
    Instance {
        seed: r.next_u64(),
        gp: RandomGraphParams {
            tasks: r.range_usize(2, 9),
            max_layer_width: r.range_usize(1, 3),
            design_points: (1, 3),
            area_range: (20, 60),
            latency_range: (50.0, 600.0),
            data_range: (1, 3),
            ..Default::default()
        },
        cap: r.range_u64(60, 239),
        mem: r.range_u64(8, 63),
        ct: r.range_f64(10.0, 100_000.0),
    }
}

fn deterministic_params() -> ExploreParams {
    ExploreParams {
        delta: Latency::from_ns(100.0),
        gamma: 2,
        limits: SearchLimits { node_limit: 300_000, time_limit: None },
        time_budget: None,
        ..Default::default()
    }
}

fn config(seed: u64, rate: f64, sites: &[&str]) -> FailpointConfig {
    FailpointConfig { seed, rate, sites: sites.iter().map(|s| s.to_string()).collect() }
}

/// Runs the case matrix with `cfg` installed; asserts the degradation
/// contract on every exploration and returns how many were degraded.
fn run_matrix_with(cfg: FailpointConfig, threads: usize, solver_threads: usize) -> u64 {
    let mut degraded = 0u64;
    for case in 0..16u64 {
        let inst = instance(31, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let params = ExploreParams { solver_threads, ..deterministic_params() };
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else { continue };
        failpoint::install(cfg.clone());
        let result = if threads <= 1 { part.explore() } else { part.explore_parallel(threads) };
        failpoint::clear();
        // The error side of the contract: typed `PartitionError`, which the
        // `Result` type enforces; panics would abort the test binary.
        let Ok(ex) = result else { continue };
        degraded += u64::from(!ex.degradation.is_clean());
        if let Some(best) = &ex.best {
            assert!(
                validate_solution(&g, &arch, best).is_empty(),
                "case {case}: degraded exploration returned an invalid solution"
            );
            assert_eq!(
                ex.best_latency.unwrap(),
                best.total_latency(&g, &arch),
                "case {case}: reported latency does not match the solution"
            );
        }
        let d = &ex.degradation;
        assert_eq!(d.subtrees_lost, d.lost.len() as u64, "case {case}: lost list out of sync");
        // Every retry and every lost subtree was preceded by a caught panic.
        assert!(
            d.panics_caught >= d.subtrees_lost,
            "case {case}: lost subtrees without caught panics"
        );
    }
    degraded
}

#[test]
fn window_panics_degrade_but_never_escape() {
    let _guard = registry_lock();
    let _clear = ClearOnDrop;
    failpoint::silence_injected_panics();
    let degraded = run_matrix_with(config(7, 0.35, &["explore.window"]), 1, 1);
    assert!(degraded > 0, "rate 0.35 never tripped a window; harness is dead");
}

#[test]
fn candidate_panics_degrade_but_never_escape() {
    let _guard = registry_lock();
    let _clear = ClearOnDrop;
    failpoint::silence_injected_panics();
    // Phase-2 candidates only run when relaxation is worthwhile, so this
    // matrix pins a tiny reconfiguration time (relaxing N stays cheap) and
    // widens gamma; the generic matrix rarely merges any candidate.
    let cfg = config(11, 0.5, &["explore.candidate"]);
    let mut degraded = 0u64;
    for case in 0..16u64 {
        let inst = instance(31, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(10.0));
        let params = ExploreParams { gamma: 4, ..deterministic_params() };
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else { continue };
        for threads in [1usize, 4] {
            failpoint::install(cfg.clone());
            let result = if threads <= 1 { part.explore() } else { part.explore_parallel(threads) };
            failpoint::clear();
            let Ok(ex) = result else { continue };
            degraded += u64::from(ex.degradation.subtrees_lost > 0);
            if let Some(best) = &ex.best {
                assert!(validate_solution(&g, &arch, best).is_empty(), "case {case}");
            }
        }
    }
    assert!(degraded > 0, "rate 0.5 never tripped a merged candidate; harness is dead");
}

#[test]
fn search_job_panics_degrade_but_never_escape() {
    let _guard = registry_lock();
    let _clear = ClearOnDrop;
    failpoint::silence_injected_panics();
    // `search.job` sites only exist on the intra-window parallel path.
    let degraded = run_matrix_with(config(13, 0.5, &["search.job"]), 1, 4);
    assert!(degraded > 0, "rate 0.5 never tripped a search job; harness is dead");
}

#[test]
fn all_panic_sites_at_full_rate_still_return() {
    let _guard = registry_lock();
    let _clear = ClearOnDrop;
    failpoint::silence_injected_panics();
    // Rate 1.0 everywhere: every window, candidate, and job dies on every
    // attempt. The exploration must still return (typically with nothing
    // feasible and a heavy degradation report), not hang or abort.
    for threads in [1usize, 4] {
        let inst = instance(31, 0);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let params = ExploreParams { solver_threads: 2, ..deterministic_params() };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        failpoint::install(config(17, 1.0, &["explore.window", "explore.candidate", "search.job"]));
        let result = if threads <= 1 { part.explore() } else { part.explore_parallel(threads) };
        failpoint::clear();
        let ex = result.expect("total fault injection still returns an exploration");
        assert!(!ex.degradation.is_clean(), "everything tripped, nothing recorded");
        assert!(ex.degradation.subtrees_lost > 0);
        if let Some(best) = &ex.best {
            assert!(validate_solution(&g, &arch, best).is_empty());
        }
    }
}

/// Sites whose faults are absorbed by an equivalent fallback path must not
/// change any output bit. (`milp.warm_basis` is deliberately absent: a
/// selectively rejected warm start falls back to a cold solve that may
/// return a different — equally optimal — vertex, so it is covered by the
/// degraded-but-valid test below instead.)
#[test]
fn outcome_invariant_sites_leave_results_bit_identical() {
    let _guard = registry_lock();
    let _clear = ClearOnDrop;
    let sites = ["milp.refactorize", "structured.memo_insert"];
    for backend in [Backend::Structured, Backend::Milp] {
        for case in 0..8u64 {
            let inst = instance(37, case);
            let g = random_layered(inst.seed, &inst.gp);
            let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
            let params = ExploreParams { backend, ..deterministic_params() };
            let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else { continue };
            failpoint::clear();
            let clean = part.explore().unwrap();
            failpoint::install(config(23, 0.5, &sites));
            let faulted = part.explore();
            failpoint::clear();
            let faulted = faulted.unwrap();
            assert_eq!(
                faulted.to_csv(),
                clean.to_csv(),
                "case {case} ({backend}): outcome-invariant fault changed the CSV"
            );
            assert_eq!(faulted.best, clean.best, "case {case} ({backend})");
            assert_eq!(faulted.best_latency, clean.best_latency, "case {case} ({backend})");
        }
    }
}

/// Injection decisions are a pure function of `(seed, site, key)`, so the
/// same seed produces the same degradation report at every thread count.
#[test]
fn degradation_reports_are_deterministic_across_thread_counts() {
    let _guard = registry_lock();
    let _clear = ClearOnDrop;
    failpoint::silence_injected_panics();
    let cfg = config(41, 0.4, &["explore.window", "explore.candidate"]);
    for case in 0..8u64 {
        let inst = instance(43, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let Ok(part) = TemporalPartitioner::new(&g, &arch, deterministic_params()) else {
            continue;
        };
        failpoint::install(cfg.clone());
        let reference = part.explore().unwrap();
        let reference_report = reference.degradation.render();
        for threads in [4usize, 8] {
            let ex = part.explore_parallel(threads).unwrap();
            assert_eq!(
                ex.to_csv(),
                reference.to_csv(),
                "case {case}: degraded CSV diverged at {threads} threads"
            );
            assert_eq!(
                ex.degradation.render(),
                reference_report,
                "case {case}: degradation report diverged at {threads} threads"
            );
            assert_eq!(ex.best, reference.best, "case {case} at {threads} threads");
        }
        failpoint::clear();
    }
}

/// `RTR_FAILPOINTS` parsing is tolerant: malformed specs disable injection
/// instead of trusting a typo to fail a run.
#[test]
fn malformed_specs_disable_injection() {
    for spec in ["", "x:0.5", "7", "7:1.5", "7:-0.1", ":::"] {
        assert!(FailpointConfig::parse(spec).is_none(), "spec `{spec}` should be rejected");
    }
    let cfg = FailpointConfig::parse("7:0.25:a.site , b.site").expect("valid");
    assert_eq!(cfg.seed, 7);
    assert_eq!(cfg.sites, vec!["a.site", "b.site"]);
}
