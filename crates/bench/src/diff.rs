//! Bench-regression gate: compares two `BENCH_<name>.json` summaries
//! under per-kind noise policies.
//!
//! The comparison rules encode what each kind of value promises:
//!
//! * **Counters** are deterministic solver facts (node counts, prune
//!   counts, window outcomes) — they must match **exactly**. Any drift,
//!   added key, or removed key is a regression; an intentional change
//!   ships with a refreshed baseline.
//! * **Metrics** are real-valued measurements, usually timings — they are
//!   compared within a relative **tolerance band**
//!   ([`DiffPolicy::metric_rel_tol`]), or skipped entirely under
//!   [`DiffPolicy::counters_only`] (the right mode on shared CI runners).
//! * Keys tagged `_deadline_dependent` (produced under wall-clock
//!   deadlines, so machine-speed dependent) or containing `_suppressed_`
//!   (environment markers such as single-CPU suppression) are **skipped**
//!   on both sides.
//!
//! The `rtr-bench-diff` binary wraps [`diff_runs`] with exit codes:
//! `0` clean, `1` regression, `2` usage or I/O error.

use rtr_trace::JsonValue;
use std::collections::BTreeMap;

/// One parsed `BENCH_<name>.json` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedRun {
    /// The run's `name` field.
    pub name: String,
    /// Integer counters (deterministic solver facts).
    pub counters: BTreeMap<String, u64>,
    /// Real-valued metrics (timings and derived rates).
    pub metrics: BTreeMap<String, f64>,
}

/// Comparison policy of [`diff_runs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffPolicy {
    /// Relative tolerance for metric drift: `|new - old|` may reach
    /// `metric_rel_tol * max(|old|, |new|)` before it counts as a
    /// regression.
    pub metric_rel_tol: f64,
    /// Compare only the counters (skip every metric). The right mode
    /// wherever timings are untrustworthy — shared CI runners, laptops
    /// on battery.
    pub counters_only: bool,
}

impl Default for DiffPolicy {
    fn default() -> Self {
        DiffPolicy { metric_rel_tol: 0.25, counters_only: false }
    }
}

/// `true` for keys the gate must not compare: values tagged as
/// wall-clock-deadline dependent, and environment suppression markers.
pub fn is_skipped_key(key: &str) -> bool {
    key.contains("_deadline_dependent") || key.contains("_suppressed_")
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The counter or metric key.
    pub key: String,
    /// Human-readable old-vs-new detail.
    pub detail: String,
}

/// The outcome of one comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Detected regressions, in key order (counters first).
    pub regressions: Vec<Regression>,
    /// Values compared.
    pub compared: usize,
    /// Keys skipped by the noise policy.
    pub skipped: usize,
}

impl DiffReport {
    /// `true` when no regression was detected.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Parses one `BENCH_<name>.json` document.
///
/// # Errors
///
/// Returns a message when the text is not JSON or does not follow the
/// `{"name", "counters", "metrics"}` shape [`crate::BenchRun`] writes.
pub fn parse_bench_json(text: &str) -> Result<ParsedRun, String> {
    let root = rtr_trace::parse_value(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let name = match root.get("name") {
        Some(v) => v.as_str().ok_or("\"name\" is not a string")?.to_owned(),
        None => return Err("missing \"name\" field".to_owned()),
    };
    let mut run = ParsedRun { name, ..ParsedRun::default() };
    match root.get("counters") {
        Some(JsonValue::Obj(entries)) => {
            for (key, value) in entries {
                let v =
                    value.as_f64().ok_or_else(|| format!("counter \"{key}\" is not a number"))?;
                if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
                    return Err(format!("counter \"{key}\" is not a non-negative integer: {v}"));
                }
                run.counters.insert(key.clone(), v as u64);
            }
        }
        Some(_) => return Err("\"counters\" is not an object".to_owned()),
        None => return Err("missing \"counters\" field".to_owned()),
    }
    match root.get("metrics") {
        Some(JsonValue::Obj(entries)) => {
            for (key, value) in entries {
                let v =
                    value.as_f64().ok_or_else(|| format!("metric \"{key}\" is not a number"))?;
                run.metrics.insert(key.clone(), v);
            }
        }
        Some(_) => return Err("\"metrics\" is not an object".to_owned()),
        None => return Err("missing \"metrics\" field".to_owned()),
    }
    Ok(run)
}

/// Compares `new` against the `old` baseline under `policy`.
pub fn diff_runs(old: &ParsedRun, new: &ParsedRun, policy: &DiffPolicy) -> DiffReport {
    let mut report = DiffReport::default();

    // Counters: exact, over the union of keys.
    let counter_keys: std::collections::BTreeSet<&String> =
        old.counters.keys().chain(new.counters.keys()).collect();
    for key in counter_keys {
        if is_skipped_key(key) {
            report.skipped += 1;
            continue;
        }
        report.compared += 1;
        match (old.counters.get(key), new.counters.get(key)) {
            (Some(a), Some(b)) if a == b => {}
            (Some(a), Some(b)) => report.regressions.push(Regression {
                key: key.clone(),
                detail: format!("counter changed: {a} -> {b}"),
            }),
            (Some(a), None) => report.regressions.push(Regression {
                key: key.clone(),
                detail: format!("counter disappeared (baseline had {a})"),
            }),
            (None, Some(b)) => report.regressions.push(Regression {
                key: key.clone(),
                detail: format!("counter appeared ({b}) — refresh the baseline if intended"),
            }),
            (None, None) => {}
        }
    }

    if policy.counters_only {
        report.skipped += old
            .metrics
            .keys()
            .chain(new.metrics.keys())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        return report;
    }

    // Metrics: relative tolerance band, over the union of keys.
    let metric_keys: std::collections::BTreeSet<&String> =
        old.metrics.keys().chain(new.metrics.keys()).collect();
    for key in metric_keys {
        if is_skipped_key(key) {
            report.skipped += 1;
            continue;
        }
        report.compared += 1;
        match (old.metrics.get(key), new.metrics.get(key)) {
            (Some(&a), Some(&b)) => {
                let scale = a.abs().max(b.abs());
                if (a - b).abs() > policy.metric_rel_tol * scale {
                    report.regressions.push(Regression {
                        key: key.clone(),
                        detail: format!(
                            "metric drifted beyond {:.0}%: {a} -> {b}",
                            policy.metric_rel_tol * 100.0
                        ),
                    });
                }
            }
            (Some(&a), None) => report.regressions.push(Regression {
                key: key.clone(),
                detail: format!("metric disappeared (baseline had {a})"),
            }),
            (None, Some(&b)) => report.regressions.push(Regression {
                key: key.clone(),
                detail: format!("metric appeared ({b}) — refresh the baseline if intended"),
            }),
            (None, None) => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchRun;

    fn sample() -> ParsedRun {
        let mut run = BenchRun::new("gate");
        run.counter("x.structured.nodes", 123_456);
        run.counter("x.solves", 9);
        run.counter("x.parallel4_speedup_suppressed_1cpu", 1);
        run.counter("y.solves_deadline_dependent", 4);
        run.metric("x.elapsed_ms", 100.0);
        run.metric("y.best_latency_ns_deadline_dependent", 5e6);
        parse_bench_json(&run.to_json()).expect("round-trips")
    }

    #[test]
    fn identical_runs_are_clean() {
        let run = sample();
        let report = diff_runs(&run, &run, &DiffPolicy::default());
        assert!(report.is_clean(), "{:?}", report.regressions);
        assert!(report.compared > 0);
        assert!(report.skipped >= 3, "skip-listed keys must not be compared");
    }

    #[test]
    fn perturbed_counter_is_a_regression() {
        let old = sample();
        let mut new = old.clone();
        new.counters.insert("x.structured.nodes".into(), 123_457);
        let report = diff_runs(&old, &new, &DiffPolicy::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].key, "x.structured.nodes");
    }

    #[test]
    fn added_and_removed_counters_are_regressions() {
        let old = sample();
        let mut new = old.clone();
        new.counters.remove("x.solves");
        new.counters.insert("x.brand_new".into(), 1);
        let report = diff_runs(&old, &new, &DiffPolicy::default());
        let keys: Vec<&str> = report.regressions.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, ["x.brand_new", "x.solves"]);
    }

    #[test]
    fn skip_listed_drift_is_ignored() {
        let old = sample();
        let mut new = old.clone();
        new.counters.insert("y.solves_deadline_dependent".into(), 99);
        new.counters.insert("x.parallel4_speedup_suppressed_1cpu".into(), 0);
        new.metrics.insert("y.best_latency_ns_deadline_dependent".into(), 1.0);
        let report = diff_runs(&old, &new, &DiffPolicy::default());
        assert!(report.is_clean(), "{:?}", report.regressions);
    }

    #[test]
    fn metric_band_and_counters_only() {
        let old = sample();
        let mut new = old.clone();
        new.metrics.insert("x.elapsed_ms".into(), 110.0); // +10% — within band
        let policy = DiffPolicy::default();
        assert!(diff_runs(&old, &new, &policy).is_clean());
        new.metrics.insert("x.elapsed_ms".into(), 200.0); // +100% — outside
        assert_eq!(diff_runs(&old, &new, &policy).regressions.len(), 1);
        // …but counters-only mode never looks at metrics.
        let counters_only = DiffPolicy { counters_only: true, ..policy };
        let report = diff_runs(&old, &new, &counters_only);
        assert!(report.is_clean());
        assert!(report.skipped >= 2);
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        assert!(parse_bench_json("not json").is_err());
        assert!(parse_bench_json("{}").unwrap_err().contains("name"));
        assert!(parse_bench_json("{\"name\": \"x\"}").unwrap_err().contains("counters"));
        let bad = "{\"name\": \"x\", \"counters\": {\"k\": -1}, \"metrics\": {}}";
        assert!(parse_bench_json(bad).unwrap_err().contains("non-negative"));
    }
}
