//! A JPEG-encoder-style pipeline task graph.
//!
//! The paper motivates the DCT case study as "the most computationally
//! intensive subtask of the JPEG image compression algorithm"; this module
//! provides the surrounding pipeline as a workload: color conversion fans
//! out into three channel pipelines (DCT → quantize), which join at the
//! zigzag reorder and entropy coder. Nine tasks, two fan-out/fan-in points,
//! HLS-synthesized design points.

use rtr_graph::{GraphError, TaskGraph, TaskGraphBuilder};
use rtr_hls::{synthesize_task, BehavioralTask, EstimatorOptions, FuLibrary, HlsError, OpKind};

/// Error type for pipeline construction.
#[derive(Debug)]
pub enum JpegError {
    /// Design-point synthesis failed.
    Hls(HlsError),
    /// Graph assembly failed.
    Graph(GraphError),
}

impl std::fmt::Display for JpegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JpegError::Hls(e) => write!(f, "hls: {e}"),
            JpegError::Graph(e) => write!(f, "graph: {e}"),
        }
    }
}

impl std::error::Error for JpegError {}

impl From<HlsError> for JpegError {
    fn from(e: HlsError) -> Self {
        JpegError::Hls(e)
    }
}

impl From<GraphError> for JpegError {
    fn from(e: GraphError) -> Self {
        JpegError::Graph(e)
    }
}

/// Color conversion: 3x3 matrix per pixel (9 muls, 6 adds).
fn color_convert(width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new("rgb2ycc");
    for _ in 0..3 {
        let m: Vec<_> = (0..3).map(|_| t.add_op(OpKind::Mul, width, &[])).collect();
        let a0 = t.add_op(OpKind::Add, width, &[m[0], m[1]]);
        t.add_op(OpKind::Add, width, &[a0, m[2]]);
    }
    t
}

/// 1-D 8-point DCT pass (row/column): 8 MACs into an adder tree.
fn dct_pass(name: &str, width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new(name);
    let macs: Vec<_> = (0..8).map(|_| t.add_op(OpKind::Mac, width, &[])).collect();
    let mut layer = macs;
    while layer.len() > 1 {
        layer = layer.chunks(2).map(|pair| t.add_op(OpKind::Add, width, pair)).collect();
    }
    t
}

/// Quantizer: multiply by reciprocal, shift, compare-clamp.
fn quantize(name: &str, width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new(name);
    let m = t.add_op(OpKind::Mul, width, &[]);
    let s = t.add_op(OpKind::Shift, width, &[m]);
    t.add_op(OpKind::Cmp, width, &[s]);
    t
}

/// Zigzag reorder + run-length detect: shifts and compares.
fn zigzag(width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new("zigzag_rle");
    let mut prev = None;
    for _ in 0..4 {
        let s = t.add_op(OpKind::Shift, width, prev.as_slice());
        let c = t.add_op(OpKind::Cmp, width, &[s]);
        prev = Some(c);
    }
    t
}

/// Entropy pack: table lookups modeled as shift/add/compare mix.
fn entropy(width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new("entropy");
    let s0 = t.add_op(OpKind::Shift, width, &[]);
    let a0 = t.add_op(OpKind::Add, width, &[s0]);
    let c0 = t.add_op(OpKind::Cmp, width, &[a0]);
    let s1 = t.add_op(OpKind::Shift, width, &[c0]);
    t.add_op(OpKind::Add, width, &[s1]);
    t
}

/// Builds the 9-task JPEG-encoder-style pipeline.
///
/// # Errors
///
/// Propagates HLS or graph errors (cannot occur for the fixed templates).
///
/// # Examples
///
/// ```
/// let jpeg = rtr_workloads::jpeg::jpeg_pipeline().expect("static construction");
/// assert_eq!(jpeg.task_count(), 9);
/// assert_eq!(jpeg.roots().len(), 1);
/// assert_eq!(jpeg.leaves().len(), 1);
/// ```
pub fn jpeg_pipeline() -> Result<TaskGraph, JpegError> {
    let lib = FuLibrary::xc4000_style();
    let opts = EstimatorOptions { max_points: 3, ..Default::default() };
    let mut b = TaskGraphBuilder::new();

    let cc = b.add_prepared_task(synthesize_task(&color_convert(10), &lib, &opts, 12, 0)?);
    let mut quantizers = Vec::new();
    for ch in ["y", "cb", "cr"] {
        // Luma gets a wider datapath than chroma.
        let width = if ch == "y" { 14 } else { 11 };
        let dct = b.add_prepared_task(synthesize_task(
            &dct_pass(&format!("dct_{ch}"), width),
            &lib,
            &opts,
            0,
            0,
        )?);
        let q = b.add_prepared_task(synthesize_task(
            &quantize(&format!("quant_{ch}"), width),
            &lib,
            &opts,
            0,
            0,
        )?);
        b.add_edge(cc, dct, 8)?;
        b.add_edge(dct, q, 8)?;
        quantizers.push(q);
    }
    let zz = b.add_prepared_task(synthesize_task(&zigzag(12), &lib, &opts, 0, 0)?);
    let ent = b.add_prepared_task(synthesize_task(&entropy(12), &lib, &opts, 0, 6)?);
    for q in quantizers {
        b.add_edge(q, zz, 8)?;
    }
    b.add_edge(zz, ent, 8)?;
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_shape() {
        let g = jpeg_pipeline().unwrap();
        assert_eq!(g.task_count(), 9);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.task(g.roots()[0]).name(), "rgb2ycc");
        assert_eq!(g.task(g.leaves()[0]).name(), "entropy");
        // Three parallel channel pipelines between the fan-out and fan-in.
        assert_eq!(g.successors(g.roots()[0]).len(), 3);
    }

    #[test]
    fn luma_dct_is_larger_than_chroma() {
        let g = jpeg_pipeline().unwrap();
        let y = g.task(g.task_by_name("dct_y").unwrap());
        let cb = g.task(g.task_by_name("dct_cb").unwrap());
        assert!(y.min_area_point().area() > cb.min_area_point().area());
    }

    #[test]
    fn dct_tasks_dominate_the_serial_latency() {
        let g = jpeg_pipeline().unwrap();
        let dct_latency: f64 = ["dct_y", "dct_cb", "dct_cr"]
            .iter()
            .map(|n| g.task(g.task_by_name(n).unwrap()).max_latency_point().latency().as_ns())
            .sum();
        assert!(
            dct_latency * 2.0 > g.total_max_latency().as_ns(),
            "the paper calls the DCT the most computationally intensive subtask: {} of {}",
            dct_latency,
            g.total_max_latency().as_ns()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(jpeg_pipeline().unwrap(), jpeg_pipeline().unwrap());
    }
}
