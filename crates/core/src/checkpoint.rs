//! Versioned JSON checkpoints for long explorations.
//!
//! A checkpoint is a *solve cache*, not a program image: it stores one
//! entry per completed `SolveModel()` window, keyed by `(N, iteration)`,
//! together with a fingerprint of the instance and parameters. Because the
//! exploration itself is deterministic, resuming is replay — the run
//! starts from scratch, and every window whose key is in the cache is
//! answered from the stored record (validated first) instead of being
//! solved again. Any subset of records is usable; missing windows are
//! simply re-solved, so a checkpoint torn mid-run by `kill -9` still
//! resumes to a byte-identical result.
//!
//! Writes are atomic (temp file in the same directory, then rename) and
//! *resilient*: a failed write — real or injected via the
//! `checkpoint.write` failpoint — is counted and retried at the next
//! interval, never aborting the exploration.
//!
//! ## Schema and version policy
//!
//! The file is a single JSON object:
//!
//! ```json
//! {
//!   "version": 1,
//!   "fingerprint": "0x1a2b3c4d5e6f7788",
//!   "records": [
//!     {"n": 2, "iteration": 1, "d_max_ns": 1730, "d_min_ns": 780,
//!      "result": "feasible", "latency_ns": 900, "eta": 2,
//!      "elapsed_us": 1234, "placements": [[1, 0], [2, 1]]}
//!   ]
//! }
//! ```
//!
//! `placements[t]` is `[partition, design_point]` for task index `t`;
//! infeasible / limit rows carry `"placements": null`. Floats are written
//! with Rust's shortest-round-trip formatting, so parsing restores the
//! exact bit pattern. `version` is bumped on any incompatible schema
//! change; loaders reject unknown versions (and mismatched fingerprints)
//! with a typed [`PartitionError::Checkpoint`] rather than guessing.

use crate::arch::Architecture;
use crate::error::PartitionError;
use crate::search::IterationResult;
use crate::solution::{Placement, Solution};
use crate::validate::validate_solution;
use rtr_graph::TaskGraph;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Current checkpoint schema version (see the module docs for the policy).
pub const CHECKPOINT_VERSION: u32 = 1;

/// How one checkpointed `SolveModel()` window ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointResult {
    /// The window had a solution; `placements[t]` is
    /// `(partition, design_point)` for task index `t`.
    Feasible {
        /// Recomputed total latency of the stored solution, in ns.
        latency_ns: f64,
        /// Partitions actually used.
        eta: u32,
        /// The solution itself, `(partition, design_point)` per task.
        placements: Vec<(u32, usize)>,
    },
    /// The window was proven empty.
    Infeasible,
    /// A limit fired before the window was decided.
    LimitReached,
}

/// One completed window solve, keyed by `(n, iteration)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// Partition bound `N` of the solve.
    pub n: u32,
    /// Iteration index within this `N` (1-based).
    pub iteration: u32,
    /// Window upper bound in ns (exact bits of the original window).
    pub d_max_ns: f64,
    /// Window lower bound in ns.
    pub d_min_ns: f64,
    /// What the solve returned.
    pub result: CheckpointResult,
    /// Wall-clock time of the original solve, in µs.
    pub elapsed_us: u64,
}

impl CheckpointRecord {
    /// Rebuilds the window's `(result, solution)` from the stored record,
    /// validating the solution against the graph, architecture, and the
    /// original window before trusting it.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Checkpoint`] when the stored placements are
    /// malformed, violate a constraint, or their recomputed latency does
    /// not reproduce the stored one bit-for-bit.
    pub(crate) fn reconstruct(
        &self,
        graph: &TaskGraph,
        arch: &Architecture,
    ) -> Result<(IterationResult, Option<Solution>), PartitionError> {
        match &self.result {
            CheckpointResult::Infeasible => Ok((IterationResult::Infeasible, None)),
            CheckpointResult::LimitReached => Ok((IterationResult::LimitReached, None)),
            CheckpointResult::Feasible { latency_ns, eta, placements } => {
                let detail = |msg: String| PartitionError::Checkpoint {
                    detail: format!("record (n={}, iteration={}): {msg}", self.n, self.iteration),
                };
                if placements.len() != graph.task_count() {
                    return Err(detail(format!(
                        "{} placements for {} tasks",
                        placements.len(),
                        graph.task_count()
                    )));
                }
                let mut decoded = Vec::with_capacity(placements.len());
                for (t, &(partition, design_point)) in placements.iter().enumerate() {
                    let points = graph.tasks()[t].design_points().len();
                    if partition < 1 || partition > self.n || design_point >= points {
                        return Err(detail(format!(
                            "task {t} placed at (partition {partition}, point {design_point})"
                        )));
                    }
                    decoded.push(Placement { partition, design_point });
                }
                let sol = Solution::new(decoded, self.n);
                let violations = validate_solution(graph, arch, &sol);
                if !violations.is_empty() {
                    return Err(detail(format!("stored solution is invalid: {violations:?}")));
                }
                let latency = sol.total_latency(graph, arch);
                if latency.as_ns().to_bits() != latency_ns.to_bits() {
                    return Err(detail(format!(
                        "stored latency {latency_ns} ns != recomputed {} ns",
                        latency.as_ns()
                    )));
                }
                if sol.partitions_used() != *eta {
                    return Err(detail(format!(
                        "stored eta {eta} != recomputed {}",
                        sol.partitions_used()
                    )));
                }
                Ok((IterationResult::Feasible { latency, eta: *eta }, Some(sol)))
            }
        }
    }
}

/// A loaded (or to-be-written) checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Schema version ([`CHECKPOINT_VERSION`] when written by this build).
    pub version: u32,
    /// Fingerprint of the instance and exploration parameters.
    pub fingerprint: u64,
    /// Completed window solves, ascending by `(n, iteration)`.
    pub records: Vec<CheckpointRecord>,
}

impl Checkpoint {
    /// Serializes the checkpoint as JSON (see the module docs for the
    /// schema).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.records.len() * 96);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"fingerprint\": \"{:#018x}\",\n", self.fingerprint));
        out.push_str("  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"n\": {}, \"iteration\": {}, \"d_max_ns\": {}, \"d_min_ns\": {}, ",
                r.n, r.iteration, r.d_max_ns, r.d_min_ns
            ));
            match &r.result {
                CheckpointResult::Feasible { latency_ns, eta, placements } => {
                    out.push_str(&format!(
                        "\"result\": \"feasible\", \"latency_ns\": {latency_ns}, \"eta\": {eta}, "
                    ));
                    out.push_str(&format!("\"elapsed_us\": {}, \"placements\": [", r.elapsed_us));
                    for (j, (p, m)) in placements.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{p}, {m}]"));
                    }
                    out.push_str("]}");
                }
                CheckpointResult::Infeasible => out.push_str(&format!(
                    "\"result\": \"infeasible\", \"elapsed_us\": {}, \"placements\": null}}",
                    r.elapsed_us
                )),
                CheckpointResult::LimitReached => out.push_str(&format!(
                    "\"result\": \"limit\", \"elapsed_us\": {}, \"placements\": null}}",
                    r.elapsed_us
                )),
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a checkpoint from its JSON text.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Checkpoint`] on malformed JSON, an unknown
    /// schema version, or missing / mistyped fields.
    pub fn from_json(text: &str) -> Result<Checkpoint, PartitionError> {
        let err = |msg: &str| PartitionError::Checkpoint { detail: msg.to_owned() };
        let value = parse_json(text)
            .map_err(|e| PartitionError::Checkpoint { detail: format!("bad JSON: {e}") })?;
        let obj = value.as_obj().ok_or_else(|| err("top level is not an object"))?;
        let version = get_u64(obj, "version").ok_or_else(|| err("missing `version`"))? as u32;
        if version != CHECKPOINT_VERSION {
            return Err(PartitionError::Checkpoint {
                detail: format!(
                    "unsupported checkpoint version {version} (this build reads \
                     {CHECKPOINT_VERSION})"
                ),
            });
        }
        let fingerprint = get_str(obj, "fingerprint")
            .and_then(parse_hex_u64)
            .ok_or_else(|| err("missing or malformed `fingerprint`"))?;
        let records_json = get(obj, "records")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing `records` array"))?;
        let mut records = Vec::with_capacity(records_json.len());
        for (i, rec) in records_json.iter().enumerate() {
            let rerr =
                |msg: &str| PartitionError::Checkpoint { detail: format!("record {i}: {msg}") };
            let rec = rec.as_obj().ok_or_else(|| rerr("not an object"))?;
            let n = get_u64(rec, "n").ok_or_else(|| rerr("missing `n`"))? as u32;
            let iteration =
                get_u64(rec, "iteration").ok_or_else(|| rerr("missing `iteration`"))? as u32;
            let d_max_ns = get_f64(rec, "d_max_ns").ok_or_else(|| rerr("missing `d_max_ns`"))?;
            let d_min_ns = get_f64(rec, "d_min_ns").ok_or_else(|| rerr("missing `d_min_ns`"))?;
            let elapsed_us = get_u64(rec, "elapsed_us").unwrap_or(0);
            let result = match get_str(rec, "result") {
                Some("feasible") => {
                    let latency_ns =
                        get_f64(rec, "latency_ns").ok_or_else(|| rerr("missing `latency_ns`"))?;
                    let eta = get_u64(rec, "eta").ok_or_else(|| rerr("missing `eta`"))? as u32;
                    let list = get(rec, "placements")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| rerr("feasible record without `placements`"))?;
                    let mut placements = Vec::with_capacity(list.len());
                    for pair in list {
                        let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                            rerr("placement is not a [partition, design_point] pair")
                        })?;
                        let p = pair[0].as_u64().ok_or_else(|| rerr("bad partition"))? as u32;
                        let m = pair[1].as_u64().ok_or_else(|| rerr("bad design point"))? as usize;
                        placements.push((p, m));
                    }
                    CheckpointResult::Feasible { latency_ns, eta, placements }
                }
                Some("infeasible") => CheckpointResult::Infeasible,
                Some("limit") => CheckpointResult::LimitReached,
                _ => return Err(rerr("missing or unknown `result`")),
            };
            records.push(CheckpointRecord { n, iteration, d_max_ns, d_min_ns, result, elapsed_us });
        }
        Ok(Checkpoint { version, fingerprint, records })
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Checkpoint`] on IO failure (including one
    /// injected at the `checkpoint.load` failpoint) or malformed content.
    pub fn load(path: &Path) -> Result<Checkpoint, PartitionError> {
        if rtr_trace::failpoint::failpoint(
            "checkpoint.load",
            fnv1a(path.as_os_str().as_encoded_bytes()),
        ) {
            return Err(PartitionError::Checkpoint {
                detail: format!("injected load failure for `{}`", path.display()),
            });
        }
        let text = std::fs::read_to_string(path).map_err(|e| PartitionError::Checkpoint {
            detail: format!("cannot read `{}`: {e}", path.display()),
        })?;
        Checkpoint::from_json(&text)
    }
}

/// When and where [`crate::TemporalPartitioner::explore_resumable`] writes
/// checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Destination file; a sibling `<path>.tmp` is used for atomic writes.
    pub path: PathBuf,
    /// Minimum interval between writes; [`Duration::ZERO`] writes after
    /// every completed window solve. A final write always happens when the
    /// exploration ends.
    pub every: Duration,
}

impl CheckpointPolicy {
    /// A policy writing to `path` every `every`.
    pub fn new(path: impl Into<PathBuf>, every: Duration) -> Self {
        CheckpointPolicy { path: path.into(), every }
    }
}

/// Thread-shared collector the exploration streams completed window
/// records into; owns the interval gating and the atomic writes.
#[derive(Debug)]
pub(crate) struct CheckpointSink {
    policy: CheckpointPolicy,
    fingerprint: u64,
    inner: Mutex<SinkInner>,
}

#[derive(Debug)]
struct SinkInner {
    records: BTreeMap<(u32, u32), CheckpointRecord>,
    last_write: Instant,
    write_ordinal: u64,
    failures: u64,
}

impl CheckpointSink {
    pub(crate) fn new(policy: CheckpointPolicy, fingerprint: u64) -> Self {
        CheckpointSink {
            policy,
            fingerprint,
            inner: Mutex::new(SinkInner {
                records: BTreeMap::new(),
                last_write: Instant::now(),
                write_ordinal: 0,
                failures: 0,
            }),
        }
    }

    /// Adds one completed window record and writes the checkpoint if the
    /// interval has elapsed (or the policy writes on every record).
    pub(crate) fn record(&self, rec: CheckpointRecord) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.records.insert((rec.n, rec.iteration), rec);
        if self.policy.every.is_zero() || inner.last_write.elapsed() >= self.policy.every {
            self.write_locked(&mut inner);
        }
    }

    /// Unconditionally writes the checkpoint (used for the final write).
    pub(crate) fn flush(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.write_locked(&mut inner);
    }

    /// Write failures so far (real IO errors plus injected ones).
    pub(crate) fn failures(&self) -> u64 {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).failures
    }

    /// Serializes and atomically replaces the checkpoint file. A failure
    /// is counted and deferred to the next interval — checkpointing is an
    /// observer of the exploration and must never abort it.
    fn write_locked(&self, inner: &mut SinkInner) {
        let _span = rtr_trace::span("checkpoint.write").with("records", inner.records.len());
        inner.last_write = Instant::now();
        inner.write_ordinal += 1;
        let checkpoint = Checkpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: self.fingerprint,
            records: inner.records.values().cloned().collect(),
        };
        let failed = if rtr_trace::failpoint::failpoint("checkpoint.write", inner.write_ordinal) {
            true
        } else {
            let tmp = self.policy.path.with_extension("tmp");
            std::fs::write(&tmp, checkpoint.to_json())
                .and_then(|()| std::fs::rename(&tmp, &self.policy.path))
                .is_err()
        };
        if failed {
            inner.failures += 1;
            rtr_trace::counter("resilience.checkpoint_write_failures", 1);
        } else {
            rtr_trace::status::board().record_checkpoint_write();
        }
    }
}

/// FNV-1a, used for instance fingerprints and failpoint keys.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_hex_u64(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

// ---------------------------------------------------------------------------
// A minimal JSON reader — just enough for the checkpoint schema, with every
// malformation reported as an error instead of a panic.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Option<u64> {
    get(obj, key).and_then(Json::as_u64)
}

fn get_f64(obj: &[(String, Json)], key: &str) -> Option<f64> {
    match get(obj, key) {
        Some(Json::Num(v)) => Some(*v),
        _ => None,
    }
}

fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a str> {
    match get(obj, key) {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut r = Reader { bytes: text.as_bytes(), pos: 0, depth: 0 };
    r.skip_ws();
    let value = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(format!("trailing bytes at offset {}", r.pos));
    }
    Ok(value)
}

impl Reader<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth > 64 {
            return Err("nesting too deep".to_owned());
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.depth += 1;
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.depth += 1;
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("control byte in string at offset {}", self.pos))
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged; the input
                    // was a &str, so boundaries are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b >= 0x80 && (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at offset {start}"))?,
                    );
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at offset {start}"))?;
        let value: f64 =
            text.parse().map_err(|_| format!("invalid number `{text}` at offset {start}"))?;
        if !value.is_finite() {
            return Err(format!("non-finite number `{text}` at offset {start}"));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: 0x1a2b_3c4d_5e6f_7788,
            records: vec![
                CheckpointRecord {
                    n: 2,
                    iteration: 1,
                    d_max_ns: 1730.125,
                    d_min_ns: 780.0,
                    result: CheckpointResult::Feasible {
                        latency_ns: 900.5,
                        eta: 2,
                        placements: vec![(1, 0), (2, 1)],
                    },
                    elapsed_us: 1234,
                },
                CheckpointRecord {
                    n: 2,
                    iteration: 2,
                    d_max_ns: 840.25,
                    d_min_ns: 780.0,
                    result: CheckpointResult::Infeasible,
                    elapsed_us: 99,
                },
                CheckpointRecord {
                    n: 3,
                    iteration: 1,
                    d_max_ns: 900.5,
                    d_min_ns: 810.0,
                    result: CheckpointResult::LimitReached,
                    elapsed_us: 7,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let cp = sample();
        let parsed = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(parsed, cp);
        // Floats survive bit-for-bit (shortest round-trip formatting).
        let tricky = Checkpoint {
            records: vec![CheckpointRecord {
                d_max_ns: 0.1 + 0.2,
                d_min_ns: f64::MIN_POSITIVE,
                ..cp.records[1].clone()
            }],
            ..cp
        };
        let parsed = Checkpoint::from_json(&tricky.to_json()).unwrap();
        assert_eq!(parsed.records[0].d_max_ns.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(parsed.records[0].d_min_ns.to_bits(), f64::MIN_POSITIVE.to_bits());
    }

    #[test]
    fn version_and_shape_are_enforced() {
        let cp = sample();
        let bumped = cp.to_json().replace("\"version\": 1", "\"version\": 99");
        assert!(matches!(
            Checkpoint::from_json(&bumped),
            Err(PartitionError::Checkpoint { detail }) if detail.contains("version 99")
        ));
        for bad in [
            "",
            "{",
            "[1, 2]",
            "{\"version\": 1}",
            "{\"version\": 1, \"fingerprint\": \"0x0\", \"records\": 7}",
            "{\"version\": 1, \"fingerprint\": 12, \"records\": []}",
        ] {
            assert!(
                matches!(Checkpoint::from_json(bad), Err(PartitionError::Checkpoint { .. })),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn json_reader_handles_escapes_and_rejects_junk() {
        assert_eq!(parse_json("\"a\\n\\u0041π\"").unwrap(), Json::Str("a\nAπ".to_owned()));
        for bad in ["{\"a\" 1}", "[1 2]", "tru", "1e999", "\"\\x\"", "\"unterminated", "[[[["] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        assert!(parse_json("[1, [2, [3]]] ").is_ok());
    }
}
