//! Ablation over the environment-memory policy (DESIGN.md substitution
//! note): the paper's constraint (3) charges environment data against
//! `M_max` (our `Resident` policy); a host that streams I/O between
//! configurations (`Streamed`) frees that memory. This measures how much
//! the policy moves the feasibility frontier on memory-tight devices.
//!
//! `cargo run --release -p rtr-bench --bin ablation_env_policy`

use rtr_bench::BenchRun;
use rtr_core::{Architecture, EnvMemoryPolicy, ExploreParams, SearchLimits, TemporalPartitioner};
use rtr_graph::{Area, Latency};
use rtr_workloads::dct::dct_4x4;
use std::time::Duration;

fn main() {
    let graph = dct_4x4();
    // Total env input is 16 tasks × 4 words = 64; outputs 16 × 1.
    println!("{:>8} {:>12} {:>16} {:>16}", "M_max", "policy", "feasible?", "D_a exec (ns)");
    let mut bench = BenchRun::new("ablation_env_policy");
    for m_max in [16u64, 48, 80, 512] {
        for policy in [EnvMemoryPolicy::Resident, EnvMemoryPolicy::Streamed] {
            let arch = Architecture::new(Area::new(1024), m_max, Latency::from_us(1.0))
                .with_env_policy(policy);
            let params = ExploreParams {
                delta: Latency::from_ns(800.0),
                gamma: 1,
                limits: SearchLimits {
                    node_limit: 10_000_000,
                    time_limit: Some(Duration::from_secs(2)),
                },
                time_budget: Some(Duration::from_secs(30)),
                ..Default::default()
            };
            let partitioner = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
            let ex = partitioner.explore().expect("exploration runs");
            let exec = ex.best.as_ref().map(|b| {
                ex.best_latency.unwrap().as_ns()
                    - (arch.reconfig_time() * b.partitions_used()).as_ns()
            });
            println!(
                "{:>8} {:>12} {:>16} {:>16}",
                m_max,
                policy.to_string(),
                if ex.best.is_some() { "yes" } else { "no" },
                exec.map(|e| format!("{e:.0}")).unwrap_or_else(|| "-".into())
            );
            let slug = match policy {
                EnvMemoryPolicy::Resident => "resident",
                EnvMemoryPolicy::Streamed => "streamed",
            };
            bench.counter(format!("mmax{m_max}.{slug}.feasible"), u64::from(ex.best.is_some()));
            if let Some(e) = exec {
                bench.metric(format!("mmax{m_max}.{slug}.exec_ns"), e);
            }
        }
    }
    println!("\nexpected shape: at tight M_max the resident policy is infeasible (or");
    println!("forced into worse packings) while streaming remains feasible; with ample");
    println!("memory the two coincide.");
    bench.write_and_report();
}
