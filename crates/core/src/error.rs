//! Error type for the temporal partitioner.

use std::error::Error;
use std::fmt;

/// An error raised while partitioning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// The partition bound `N` is zero.
    ZeroPartitions,
    /// Some task cannot fit the device even with its smallest design point.
    TaskTooLarge {
        /// Name of the offending task.
        task: String,
        /// Its smallest design-point area.
        min_area: u64,
        /// The device capacity `R_max`.
        capacity: u64,
    },
    /// Path enumeration for the latency constraints was truncated; the ILP
    /// model would silently under-constrain latency. Raise the path cap or
    /// use the structured backend (which does not enumerate paths).
    TooManyPaths {
        /// Exact number of root→leaf paths (if countable).
        total: Option<u128>,
        /// The configured cap.
        cap: usize,
    },
    /// The underlying MILP solver failed.
    Milp(rtr_milp::MilpError),
    /// A checkpoint could not be loaded, parsed, or replayed: missing or
    /// malformed file, unsupported schema version, a fingerprint that does
    /// not match this instance and parameter set, or a cached window that
    /// fails validation.
    Checkpoint {
        /// What went wrong, including the offending record when known.
        detail: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroPartitions => write!(f, "partition bound must be at least 1"),
            PartitionError::TaskTooLarge { task, min_area, capacity } => write!(
                f,
                "task `{task}` needs at least {min_area} area units but the device has {capacity}"
            ),
            PartitionError::TooManyPaths { total, cap } => match total {
                Some(t) => write!(f, "task graph has {t} root-to-leaf paths, above the cap {cap}"),
                None => write!(f, "task graph has more than u128 root-to-leaf paths (cap {cap})"),
            },
            PartitionError::Milp(e) => write!(f, "milp solver: {e}"),
            PartitionError::Checkpoint { detail } => write!(f, "checkpoint: {detail}"),
        }
    }
}

impl Error for PartitionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PartitionError::Milp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtr_milp::MilpError> for PartitionError {
    fn from(e: rtr_milp::MilpError) -> Self {
        PartitionError::Milp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PartitionError::TaskTooLarge { task: "big".into(), min_area: 700, capacity: 576 };
        assert!(e.to_string().contains("`big`"));
        assert!(e.source().is_none());
        let m = PartitionError::Milp(rtr_milp::MilpError::IterationLimit { limit: 3 });
        assert!(m.source().is_some());
    }
}
