//! Extension experiment (not in the paper): how the iterative procedure
//! scales with task-graph size, using the `n × n` DCT generalization
//! (`2·n²` tasks). The paper only claims scalability qualitatively ("can be
//! used to synthesize … large specifications"); this measures it.
//!
//! `cargo run --release -p rtr-bench --bin scaling_dct`

use rtr_bench::BenchRun;
use rtr_core::{Architecture, ExploreParams, SearchLimits, TemporalPartitioner};
use rtr_graph::{Area, Latency};
use rtr_workloads::dct::dct_nxn;
use std::time::{Duration, Instant};

fn main() {
    let mut bench = BenchRun::new("scaling_dct");
    println!(
        "{:>4} {:>6} {:>6} {:>6} {:>8} {:>14} {:>10}",
        "n", "tasks", "edges", "N_l", "solves", "D_a exec (ns)", "time"
    );
    for n in 2..=6usize {
        let graph = dct_nxn(n).expect("valid size");
        let arch = Architecture::new(Area::new(1024), 4096, Latency::from_us(1.0));
        let params = ExploreParams {
            delta: Latency::from_ns(400.0),
            gamma: 1,
            limits: SearchLimits {
                node_limit: 10_000_000,
                time_limit: Some(Duration::from_secs(2)),
            },
            time_budget: Some(Duration::from_secs(60)),
            ..Default::default()
        };
        let partitioner = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
        let start = Instant::now();
        let exploration = partitioner.explore().expect("exploration runs");
        let elapsed = start.elapsed();
        let exec = exploration.best.as_ref().map(|b| {
            exploration.best_latency.unwrap().as_ns()
                - (arch.reconfig_time() * b.partitions_used()).as_ns()
        });
        println!(
            "{:>4} {:>6} {:>6} {:>6} {:>8} {:>14} {:>10}",
            n,
            graph.task_count(),
            graph.edge_count(),
            exploration.n_min_lower,
            exploration.records.len(),
            exec.map(|e| format!("{e:.0}")).unwrap_or_else(|| "-".into()),
            format!("{elapsed:.2?}")
        );
        let prefix = format!("n{n}.");
        bench.record_exploration(&prefix, &exploration);
        bench.counter(format!("{prefix}tasks"), graph.task_count() as u64);
        bench.metric(format!("{prefix}elapsed_ms"), elapsed.as_secs_f64() * 1e3);
        if let Some(e) = exec {
            bench.metric(format!("{prefix}exec_ns"), e);
        }
    }
    println!("\nper-window budgets keep the wall clock bounded; larger instances spend");
    println!("their budget on fewer, harder windows (undecided windows count as Inf.*).");
    bench.write_and_report();
}
