//! The new solver counters flow end-to-end through the trace layer: one
//! optimality solve that separates cuts must surface
//! `milp.cuts_*`/`milp.lp.devex_resets`/`milp.pseudo_cost_branches` in a
//! [`RunReport`], on the live status board, and as Perfetto counter
//! tracks — matching the `SolveStats` the solve returned.
//!
//! Lives in its own integration binary: the trace sink and the status
//! board are process-global.

use rtr_milp::{solve_mip, Constraint, LinExpr, Model, Rel, SolveOptions, Status, Variable};
use rtr_trace::RunReport;

/// A knapsack whose LP relaxation is fractional at the root, so the
/// optimality solve exercises cut separation.
fn fractional_knapsack() -> Model {
    let mut m = Model::new();
    let weights = [5.0, 6.0, 4.0, 3.0, 7.0];
    let values = [10.0, 13.0, 7.5, 5.0, 16.0];
    let vars: Vec<_> = (0..5).map(|_| m.add_var(Variable::binary())).collect();
    m.add_constraint(Constraint::new(
        vars.iter().zip(weights).map(|(&v, w)| (w, v)).collect::<LinExpr>(),
        Rel::Le,
        11.0,
    ));
    m.maximize(vars.iter().zip(values).map(|(&v, c)| (c, v)).collect::<LinExpr>());
    m
}

#[test]
fn new_counters_reach_report_board_and_perfetto() {
    let model = fractional_knapsack();
    let opts = SolveOptions::optimal();

    rtr_trace::install(std::sync::Arc::new(rtr_trace::MemorySink::new()));
    rtr_trace::board().reset();
    let (out, events) = rtr_trace::capture(|| solve_mip(&model, &opts).unwrap());
    let snapshot = rtr_trace::board().snapshot();
    rtr_trace::uninstall();

    assert_eq!(out.status, Status::Optimal);
    assert!(out.stats.cuts_generated >= 1, "fixture must separate cuts");

    // RunReport: every new counter is present and totals what the solve
    // reported.
    let report = RunReport::from_events(&events);
    let expected = [
        ("milp.cuts_generated", out.stats.cuts_generated),
        ("milp.cuts_active", out.stats.cuts_active),
        ("milp.gomory_rounds", out.stats.gomory_rounds),
        ("milp.lp.devex_resets", out.stats.devex_resets),
        ("milp.pseudo_cost_branches", out.stats.pseudo_cost_branches),
        ("milp.strong_branch_evals", out.stats.strong_branch_evals),
        ("milp.gap_ppm", out.stats.gap_ppm),
    ];
    for (key, value) in expected {
        assert!(report.counters.contains_key(key), "missing counter {key}");
        assert_eq!(report.counter(key), value as u64, "{key}");
    }

    // Status board: the separation and pricing paths feed the live view.
    assert!(snapshot.ilp_cuts >= 1, "board missed the cut separations");
    assert_eq!(snapshot.lp_devex_resets, out.stats.devex_resets as u64);

    // Perfetto export: each counter becomes a named "C" track record.
    let doc = RunReport::to_perfetto_json(&events);
    for (key, _) in expected {
        assert!(doc.contains(&format!("\"{key}\"")), "perfetto export missing {key}");
    }
    assert!(doc.contains("\"ph\":\"C\""), "no counter records in the export");
}
