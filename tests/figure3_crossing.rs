//! Figure 3 worked example: the boundary-crossing variable `w` semantics.
//!
//! The paper's Figure 3 shows a mapping of dependent tasks to three
//! temporal partitions and which crossing variables become 1 at each
//! boundary. This test reconstructs an equivalent scenario and checks the
//! memory accounting that the `w` variables model: an edge whose producer
//! is in partitions `1..p-1` and consumer in `p..N` occupies boundary `p` —
//! including edges spanning *non-adjacent* partitions.

use rtrpart::graph::{Area, DesignPoint, Latency, TaskGraphBuilder};
use rtrpart::{EnvMemoryPolicy, Placement, Solution};

fn dp() -> DesignPoint {
    DesignPoint::new("m", Area::new(10), Latency::from_ns(100.0))
}

#[test]
fn crossing_data_occupies_every_spanned_boundary() {
    // t1 -> t2 -> t4, t1 -> t3 (t3 skips a partition).
    let mut b = TaskGraphBuilder::new();
    let t1 = b.add_task("t1").design_point(dp()).finish();
    let t2 = b.add_task("t2").design_point(dp()).finish();
    let t3 = b.add_task("t3").design_point(dp()).finish();
    let t4 = b.add_task("t4").design_point(dp()).finish();
    b.add_edge(t1, t2, 5).unwrap();
    b.add_edge(t1, t3, 7).unwrap();
    b.add_edge(t2, t4, 3).unwrap();
    let g = b.build().unwrap();

    // Partition 1: {t1}; partition 2: {t2}; partition 3: {t3, t4}.
    let sol = Solution::new(
        vec![
            Placement { partition: 1, design_point: 0 },
            Placement { partition: 2, design_point: 0 },
            Placement { partition: 3, design_point: 0 },
            Placement { partition: 3, design_point: 0 },
        ],
        3,
    );
    let mem = sol.boundary_memory(&g, EnvMemoryPolicy::Streamed);
    // Boundary 2 (between partitions 1 and 2): t1->t2 (5) and t1->t3 (7),
    // the latter because t3 sits beyond partition 2 — the "non-adjacent"
    // case Figure 3 highlights.
    assert_eq!(mem[0], 5 + 7);
    // Boundary 3: t1->t3 still in flight (7) plus t2->t4 (3); t1->t2 has
    // been consumed.
    assert_eq!(mem[1], 7 + 3);
}

#[test]
fn same_partition_edges_never_cross() {
    let mut b = TaskGraphBuilder::new();
    let t1 = b.add_task("t1").design_point(dp()).finish();
    let t2 = b.add_task("t2").design_point(dp()).finish();
    b.add_edge(t1, t2, 100).unwrap();
    let g = b.build().unwrap();
    for p in 1..=3u32 {
        let sol = Solution::new(
            vec![
                Placement { partition: p, design_point: 0 },
                Placement { partition: p, design_point: 0 },
            ],
            3,
        );
        assert_eq!(sol.peak_memory(&g, EnvMemoryPolicy::Streamed), 0, "partition {p}");
    }
}

#[test]
fn crossing_semantics_match_the_ilp_window() {
    // The ILP's memory constraint must agree with the direct accounting:
    // build a model whose only restriction is memory, and check the
    // feasibility frontier sits exactly at the crossing volume.
    use rtrpart::core::model::{IlpModel, ModelOptions};
    use rtrpart::milp::SolveOptions;
    use rtrpart::Architecture;

    let mut b = TaskGraphBuilder::new();
    let t1 = b.add_task("t1").design_point(dp()).finish();
    let t2 = b.add_task("t2").design_point(dp()).finish();
    b.add_edge(t1, t2, 6).unwrap();
    let g = b.build().unwrap();

    // Capacity forces a split (each task is 10, device is 10): the edge
    // must cross, so M_max = 5 is infeasible and M_max = 6 feasible.
    for (m_max, feasible) in [(5u64, false), (6, true)] {
        let arch = Architecture::new(Area::new(10), m_max, Latency::from_ns(1.0));
        let ilp = IlpModel::build(
            &g,
            &arch,
            2,
            Latency::from_us(1.0),
            Latency::ZERO,
            &ModelOptions::default(),
        )
        .unwrap();
        let out = ilp.model().solve(&SolveOptions::feasibility()).unwrap();
        assert_eq!(out.status.has_solution(), feasible, "M_max = {m_max}");
    }
}
