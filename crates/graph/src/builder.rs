//! Builder for [`TaskGraph`].

use crate::error::GraphError;
use crate::graph::{Edge, TaskGraph, TaskId};
use crate::task::{DesignPoint, Task};

/// Incremental builder for a [`TaskGraph`].
///
/// The builder enforces the graph invariants at [`build`](Self::build) time:
/// the graph is non-empty and acyclic, task names are unique, every task has
/// at least one design point, and every design point has positive area.
///
/// # Examples
///
/// ```
/// use rtr_graph::{TaskGraphBuilder, DesignPoint, Area, Latency};
///
/// # fn main() -> Result<(), rtr_graph::GraphError> {
/// let mut b = TaskGraphBuilder::new();
/// let src = b.add_task("src")
///     .design_point(DesignPoint::new("m", Area::new(10), Latency::from_ns(5.0)))
///     .finish();
/// let dst = b.add_task("dst")
///     .design_point(DesignPoint::new("m", Area::new(20), Latency::from_ns(9.0)))
///     .finish();
/// b.add_edge(src, dst, 3)?;
/// let graph = b.build()?;
/// assert_eq!(graph.edge_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct TaskGraphBuilder {
    tasks: Vec<Task>,
    edges: Vec<Edge>,
}

impl TaskGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TaskGraphBuilder::default()
    }

    /// Starts a new task with the given name; call
    /// [`TaskBuilder::finish`] to obtain its [`TaskId`].
    pub fn add_task(&mut self, name: impl Into<String>) -> TaskBuilder<'_> {
        TaskBuilder {
            owner: self,
            name: name.into(),
            design_points: Vec::new(),
            env_input: 0,
            env_output: 0,
        }
    }

    /// Adds a finished [`Task`] directly and returns its id. Useful when the
    /// task was produced by an HLS estimator.
    pub fn add_prepared_task(&mut self, task: Task) -> TaskId {
        self.tasks.push(task);
        TaskId(self.tasks.len() - 1)
    }

    /// Adds a directed dependency `src → dst` carrying `data` units
    /// (`B(src, dst)` of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`] if either endpoint was not created
    /// by this builder, [`GraphError::SelfLoop`] if `src == dst`, or
    /// [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, data: u64) -> Result<(), GraphError> {
        for id in [src, dst] {
            if id.index() >= self.tasks.len() {
                return Err(GraphError::UnknownTask {
                    index: id.index(),
                    task_count: self.tasks.len(),
                });
            }
        }
        if src == dst {
            return Err(GraphError::SelfLoop { task: self.tasks[src.index()].name().to_owned() });
        }
        if self.edges.iter().any(|e| e.src() == src && e.dst() == dst) {
            return Err(GraphError::DuplicateEdge {
                src: self.tasks[src.index()].name().to_owned(),
                dst: self.tasks[dst.index()].name().to_owned(),
            });
        }
        self.edges.push(Edge { src, dst, data });
        Ok(())
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Validates the accumulated tasks and edges into a [`TaskGraph`].
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`GraphError`].
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        TaskGraph::assemble(self.tasks, self.edges)
    }
}

/// Builder for a single task; created by [`TaskGraphBuilder::add_task`].
#[derive(Debug)]
pub struct TaskBuilder<'a> {
    owner: &'a mut TaskGraphBuilder,
    name: String,
    design_points: Vec<DesignPoint>,
    env_input: u64,
    env_output: u64,
}

impl TaskBuilder<'_> {
    /// Adds a design point to the task's set `M_t`.
    pub fn design_point(mut self, dp: DesignPoint) -> Self {
        self.design_points.push(dp);
        self
    }

    /// Adds every design point from an iterator.
    pub fn design_points<I: IntoIterator<Item = DesignPoint>>(mut self, dps: I) -> Self {
        self.design_points.extend(dps);
        self
    }

    /// Sets the environment input volume `B(env, t)` in data units.
    pub fn env_input(mut self, units: u64) -> Self {
        self.env_input = units;
        self
    }

    /// Sets the environment output volume `B(t, env)` in data units.
    pub fn env_output(mut self, units: u64) -> Self {
        self.env_output = units;
        self
    }

    /// Registers the task with the graph builder and returns its id.
    pub fn finish(self) -> TaskId {
        let task = Task::new(self.name, self.design_points, self.env_input, self.env_output);
        self.owner.add_prepared_task(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::{Area, Latency};

    fn dp() -> DesignPoint {
        DesignPoint::new("m", Area::new(10), Latency::from_ns(1.0))
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(matches!(TaskGraphBuilder::new().build(), Err(GraphError::Empty)));
    }

    #[test]
    fn rejects_task_without_design_points() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("bare").finish();
        assert!(matches!(b.build(), Err(GraphError::NoDesignPoints { .. })));
    }

    #[test]
    fn rejects_zero_area_design_point() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("z")
            .design_point(DesignPoint::new("void", Area::ZERO, Latency::from_ns(1.0)))
            .finish();
        assert!(matches!(b.build(), Err(GraphError::ZeroAreaDesignPoint { .. })));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("x").design_point(dp()).finish();
        b.add_task("x").design_point(dp()).finish();
        assert!(matches!(b.build(), Err(GraphError::DuplicateTaskName { .. })));
    }

    #[test]
    fn rejects_self_loop_eagerly() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp()).finish();
        assert!(matches!(b.add_edge(a, a, 1), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn rejects_duplicate_edge_eagerly() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp()).finish();
        let c = b.add_task("b").design_point(dp()).finish();
        b.add_edge(a, c, 1).unwrap();
        assert!(matches!(b.add_edge(a, c, 2), Err(GraphError::DuplicateEdge { .. })));
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp()).finish();
        let bogus = {
            let mut other = TaskGraphBuilder::new();
            other.add_task("x").design_point(dp()).finish();
            other.add_task("y").design_point(dp()).finish()
        };
        assert!(matches!(b.add_edge(a, bogus, 1), Err(GraphError::UnknownTask { .. })));
    }

    #[test]
    fn env_io_is_recorded() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("io").design_point(dp()).env_input(4).env_output(1).finish();
        let g = b.build().unwrap();
        assert_eq!(g.task(a).env_input(), 4);
        assert_eq!(g.task(a).env_output(), 1);
    }
}
