//! A structured branch-and-bound solver specialized to the temporal
//! partitioning constraints.
//!
//! The ILP backend ([`crate::model`]) is faithful to the paper but — with a
//! from-scratch simplex instead of CPLEX — does not scale to the 32-task DCT
//! case study. This solver performs implicit enumeration over the *same*
//! feasible set: tasks are assigned in level order to (partition, design
//! point) pairs with incremental checking of the resource, temporal-order,
//! memory, and latency-window constraints, plus admissible lower-bound
//! pruning and symmetry breaking over interchangeable tasks. Equivalence
//! with the ILP backend is asserted by cross-checking tests on small
//! instances (`tests/backend_equivalence.rs`).

use crate::arch::{Architecture, EnvMemoryPolicy};
use crate::solution::{Placement, Solution};
use rtr_graph::{TaskGraph, TaskId};
use std::time::{Duration, Instant};

/// Limits for one structured search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum number of (partition, design point) assignments tried.
    pub node_limit: u64,
    /// Wall-clock deadline.
    pub time_limit: Option<Duration>,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits { node_limit: 50_000_000, time_limit: Some(Duration::from_secs(60)) }
    }
}

/// Result of one structured search.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchOutcome {
    /// A constraint-satisfying solution (already compacted).
    Feasible(Solution),
    /// The whole space was exhausted without a solution.
    Infeasible,
    /// A limit fired before the space was exhausted.
    LimitReached,
}

impl SearchOutcome {
    /// The solution, if feasible.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SearchOutcome::Feasible(s) => Some(s),
            _ => None,
        }
    }
}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Assignments tried.
    pub nodes: u64,
    /// Subtrees cut by the latency lower bound.
    pub latency_prunes: u64,
    /// Subtrees cut by area look-ahead.
    pub area_prunes: u64,
    /// Assignments rejected by the memory constraint.
    pub memory_rejects: u64,
    /// `true` if the search space was fully exhausted (a returned solution
    /// is proven optimal for the [`SearchGoal::Optimal`] goal).
    pub exhausted: bool,
}

impl SearchStats {
    /// Accumulates another run's counters into this one. `exhausted`
    /// reflects the most recent run absorbed — it describes a single
    /// search, not a sum.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.latency_prunes += other.latency_prunes;
        self.area_prunes += other.area_prunes;
        self.memory_rejects += other.memory_rejects;
        self.exhausted = other.exhausted;
    }
}

impl rtr_trace::Instrument for SearchStats {
    /// Emits the structured-search counters under `scope` (e.g. scope
    /// `structured` yields `structured.nodes`, `structured.area_prunes`, ...).
    fn emit_metrics(&self, scope: &str) {
        if !rtr_trace::enabled() {
            return;
        }
        rtr_trace::counter(&format!("{scope}.nodes"), self.nodes);
        rtr_trace::counter(&format!("{scope}.latency_prunes"), self.latency_prunes);
        rtr_trace::counter(&format!("{scope}.area_prunes"), self.area_prunes);
        rtr_trace::counter(&format!("{scope}.memory_rejects"), self.memory_rejects);
    }
}

/// Goal of the structured search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchGoal {
    /// Stop at the first solution with total latency `≤ d_max`.
    FirstFeasible,
    /// Exhaust the space and return the minimum-latency solution with total
    /// latency `≤ d_max`.
    Optimal,
}

/// Which topological order tasks are assigned in. Different orders explore
/// different solution basins first; callers that hit a limit with one order
/// can retry with the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderHeuristic {
    /// Follow the data: consumers are assigned soon after their producers
    /// (default; best when intra-partition chains dominate).
    #[default]
    DataFlow,
    /// Strict level order: a whole graph level is assigned before the next.
    Level,
}

/// The solver. See the module docs for the algorithm outline.
#[derive(Debug)]
pub struct StructuredSolver<'g> {
    graph: &'g TaskGraph,
    arch: &'g Architecture,
    n: u32,
    d_max_ns: f64,
    goal: SearchGoal,
    limits: SearchLimits,
    // Precomputed per task (by task index):
    order: Vec<TaskId>,
    /// Design-point trial order per task (latency ascending).
    dp_order: Vec<Vec<usize>>,
    /// Symmetry group of each task (same group ⇒ interchangeable); the
    /// predecessor of a task within its group in assignment order, if any.
    group_prev: Vec<Option<usize>>,
    /// Total minimum area of tasks from position `i` of `order` onwards.
    suffix_min_area: Vec<u64>,
    eta_floor: u32,
    /// Incoming edges of each task as `(pred index, data units)`.
    pred_edges: Vec<Vec<(usize, u64)>>,
    /// Longest min-latency path strictly below each task (to any leaf).
    tail_after_ns: Vec<f64>,
    /// Warm-start hint: a (typically incumbent) placement tried first at
    /// every node.
    hint: Option<Vec<Placement>>,
}

/// Compile-time proof that the solver is re-entrant across threads: all
/// mutable search state lives in a per-`run` `State`, so
/// `TemporalPartitioner::explore_parallel` workers may build and run solvers
/// over the same graph and architecture concurrently.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn sync_and_send<T: Sync + Send>() {}
    sync_and_send::<StructuredSolver<'static>>();
    sync_and_send::<SearchLimits>();
    sync_and_send::<SearchOutcome>();
    sync_and_send::<SearchStats>();
}

struct State {
    part: Vec<u32>,
    dpc: Vec<usize>,
    area_used: Vec<u64>,
    /// Secondary-resource usage, `[partition][class]` (empty when the
    /// architecture declares no secondary classes).
    sec_used: Vec<Vec<u64>>,
    chain_ns: Vec<f64>,
    /// Longest whole-graph path ending at each assigned task, with chosen
    /// design-point latencies (all predecessors are assigned first).
    gdepth_ns: Vec<f64>,
    d_part_ns: Vec<f64>,
    sum_d_ns: f64,
    mem: Vec<u64>,
    max_part: u32,
    stats: SearchStats,
    best: Option<(f64, Vec<Placement>)>,
    nodes_exhausted: bool,
    start: Instant,
}

impl<'g> StructuredSolver<'g> {
    /// Creates a solver for partition bound `n` and absolute latency budget
    /// `d_max_ns` (including reconfiguration overhead).
    pub fn new(
        graph: &'g TaskGraph,
        arch: &'g Architecture,
        n: u32,
        d_max_ns: f64,
        goal: SearchGoal,
        limits: SearchLimits,
    ) -> Self {
        Self::with_order(graph, arch, n, d_max_ns, goal, limits, OrderHeuristic::default())
    }

    /// [`new`](Self::new) with an explicit assignment-order heuristic.
    #[allow(clippy::too_many_arguments)]
    pub fn with_order(
        graph: &'g TaskGraph,
        arch: &'g Architecture,
        n: u32,
        d_max_ns: f64,
        goal: SearchGoal,
        limits: SearchLimits,
        order_heuristic: OrderHeuristic,
    ) -> Self {
        let count = graph.task_count();
        let min_latency_ns: Vec<f64> =
            graph.tasks().iter().map(|t| t.min_latency_point().latency().as_ns()).collect();
        let min_area: Vec<u64> =
            graph.tasks().iter().map(|t| t.min_area_point().area().units()).collect();

        // Level = longest-path depth; sorting by it is a topological order.
        let mut level = vec![0u32; count];
        for &t in graph.topological_order() {
            let l = graph.predecessors(t).iter().map(|p| level[p.index()] + 1).max().unwrap_or(0);
            level[t.index()] = l;
        }

        // Interchangeability groups: same preds, succs, env I/O, and design
        // point multiset.
        let group_key = |t: usize| -> String {
            let task = &graph.tasks()[t];
            let mut preds: Vec<usize> =
                graph.predecessors(TaskId::from_index(t)).iter().map(|p| p.index()).collect();
            preds.sort_unstable();
            let mut succs: Vec<usize> =
                graph.successors(TaskId::from_index(t)).iter().map(|s| s.index()).collect();
            succs.sort_unstable();
            let dps: Vec<String> = task
                .design_points()
                .iter()
                .map(|d| format!("{}:{}", d.area().units(), d.latency().as_ns()))
                .collect();
            format!("{preds:?}|{succs:?}|{dps:?}|{}|{}", task.env_input(), task.env_output())
        };
        let keys: Vec<String> = (0..count).map(group_key).collect();

        // Assignment order: a topological order that "follows the data" —
        // among ready tasks, prefer (1) siblings of the task just assigned
        // (keeps interchangeable groups consecutive for symmetry breaking),
        // then (2) tasks whose predecessors were assigned most recently
        // (keeps producers and their consumers close, which lets pruning see
        // the consequences of a packing early), then id order.
        let order: Vec<TaskId> = match order_heuristic {
            OrderHeuristic::DataFlow => {
                let mut remaining_deps: Vec<usize> =
                    (0..count).map(|t| graph.predecessors(TaskId::from_index(t)).len()).collect();
                let mut ready: Vec<usize> =
                    (0..count).filter(|&t| remaining_deps[t] == 0).collect();
                let mut last_pred_pos = vec![-1i64; count];
                let mut order: Vec<TaskId> = Vec::with_capacity(count);
                let mut last_key: Option<&str> = None;
                while !ready.is_empty() {
                    let pos = ready
                        .iter()
                        .enumerate()
                        .max_by(|(_, &a), (_, &b)| {
                            let sib_a = last_key == Some(keys[a].as_str());
                            let sib_b = last_key == Some(keys[b].as_str());
                            sib_a
                                .cmp(&sib_b)
                                .then(last_pred_pos[a].cmp(&last_pred_pos[b]))
                                .then(b.cmp(&a))
                        })
                        .map(|(i, _)| i)
                        .expect("ready is non-empty");
                    let t = ready.swap_remove(pos);
                    last_key = Some(keys[t].as_str());
                    let assigned_pos = order.len() as i64;
                    order.push(TaskId::from_index(t));
                    for s in graph.successors(TaskId::from_index(t)) {
                        let si = s.index();
                        last_pred_pos[si] = last_pred_pos[si].max(assigned_pos);
                        remaining_deps[si] -= 1;
                        if remaining_deps[si] == 0 {
                            ready.push(si);
                        }
                    }
                }
                order
            }
            OrderHeuristic::Level => {
                let mut order: Vec<TaskId> = (0..count).map(TaskId::from_index).collect();
                order.sort_by(|a, b| {
                    level[a.index()]
                        .cmp(&level[b.index()])
                        .then_with(|| keys[a.index()].cmp(&keys[b.index()]))
                        .then_with(|| a.index().cmp(&b.index()))
                });
                order
            }
        };
        debug_assert_eq!(order.len(), count);

        // group_prev: the previous same-group task in assignment order.
        let mut group_prev = vec![None; count];
        for w in order.windows(2) {
            let (a, b) = (w[0].index(), w[1].index());
            if keys[a] == keys[b] && level[a] == level[b] {
                group_prev[b] = Some(a);
            }
        }

        // Smallest-area first: packing feasibility dominates the search; the
        // chain lower bound rejects too-slow points cheaply when the window
        // is tight.
        let dp_order: Vec<Vec<usize>> = graph
            .tasks()
            .iter()
            .map(|task| {
                let mut idx: Vec<usize> = (0..task.design_points().len()).collect();
                idx.sort_by(|&a, &b| {
                    let da = &task.design_points()[a];
                    let db = &task.design_points()[b];
                    da.area().cmp(&db.area()).then(da.latency().total_cmp(&db.latency()))
                });
                idx
            })
            .collect();

        let mut suffix_min_area = vec![0u64; count + 1];
        for i in (0..count).rev() {
            suffix_min_area[i] = suffix_min_area[i + 1] + min_area[order[i].index()];
        }
        let eta_floor = graph.total_min_area().partitions_needed(arch.resource_capacity()).max(1);

        let mut pred_edges = vec![Vec::new(); count];
        for e in graph.edges() {
            pred_edges[e.dst().index()].push((e.src().index(), e.data()));
        }
        let mut tail_after_ns = vec![0.0f64; count];
        for &t in graph.topological_order().iter().rev() {
            let ti = t.index();
            tail_after_ns[ti] = graph
                .successors(t)
                .iter()
                .map(|s| min_latency_ns[s.index()] + tail_after_ns[s.index()])
                .fold(0.0f64, f64::max);
        }

        StructuredSolver {
            graph,
            arch,
            n,
            d_max_ns,
            goal,
            limits,
            order,
            dp_order,
            group_prev,
            suffix_min_area,
            eta_floor,
            pred_edges,
            tail_after_ns,
            hint: None,
        }
    }

    /// Installs a warm-start hint: `placements[t]` is tried first when task
    /// `t` is assigned. Typically the incumbent of a previous, looser
    /// window; completeness is unaffected (the hint only reorders the
    /// search).
    pub fn with_hint(mut self, placements: Vec<Placement>) -> Self {
        self.hint = Some(placements);
        self
    }

    /// Runs the search.
    pub fn run(&self) -> (SearchOutcome, SearchStats) {
        let count = self.graph.task_count();
        let np = self.n as usize;
        // A task none of whose design points fits the device can never be
        // placed.
        for task in self.graph.tasks() {
            if !task.design_points().iter().any(|dp| self.arch.admits(dp)) {
                return (SearchOutcome::Infeasible, SearchStats::default());
            }
        }

        // Greedy seeding: a constructive packing often satisfies loose
        // windows outright, and otherwise provides an incumbent for the
        // optimal goal.
        let mut seed: Option<(f64, Vec<Placement>)> = None;
        for picker in [
            crate::baseline::DesignPointPicker::MinArea,
            crate::baseline::DesignPointPicker::MinLatency,
            crate::baseline::DesignPointPicker::MaxArea,
        ] {
            if let Some(sol) =
                crate::baseline::greedy_partition(self.graph, self.arch, picker, self.n)
            {
                let total = sol.total_latency(self.graph, self.arch).as_ns();
                if total <= self.d_max_ns + 1e-9 {
                    if self.goal == SearchGoal::FirstFeasible {
                        return (SearchOutcome::Feasible(sol), SearchStats::default());
                    }
                    if seed.as_ref().map(|(b, _)| total < *b).unwrap_or(true) {
                        seed = Some((total, sol.placements().to_vec()));
                    }
                }
            }
        }

        let mut st = State {
            part: vec![0; count],
            dpc: vec![0; count],
            area_used: vec![0; np],
            sec_used: vec![vec![0; self.arch.secondary_capacities().len()]; np],
            chain_ns: vec![0.0; count],
            gdepth_ns: vec![0.0; count],
            d_part_ns: vec![0.0; np],
            sum_d_ns: 0.0,
            mem: vec![0; np.saturating_sub(1)],
            max_part: 0,
            stats: SearchStats::default(),
            best: seed,
            nodes_exhausted: true,
            start: Instant::now(),
        };
        self.dfs(0, &mut st);
        let mut stats = st.stats;
        stats.exhausted = st.nodes_exhausted;
        match st.best {
            Some((_, placements)) => {
                let sol = Solution::new(placements, self.n).compacted(self.n);
                (SearchOutcome::Feasible(sol), stats)
            }
            None if st.nodes_exhausted => (SearchOutcome::Infeasible, stats),
            None => (SearchOutcome::LimitReached, stats),
        }
    }

    /// Returns `true` to abort the whole search (first-feasible found, or a
    /// limit fired).
    fn dfs(&self, idx: usize, st: &mut State) -> bool {
        if idx == self.order.len() {
            let total = st.sum_d_ns + self.ct_ns() * f64::from(st.max_part);
            if total <= self.d_max_ns + 1e-9 {
                let better = match &st.best {
                    Some((b, _)) => total < b - 1e-9,
                    None => true,
                };
                if better {
                    let placements: Vec<Placement> = st
                        .part
                        .iter()
                        .zip(&st.dpc)
                        .map(|(&p, &m)| Placement { partition: p, design_point: m })
                        .collect();
                    st.best = Some((total, placements));
                }
                if self.goal == SearchGoal::FirstFeasible {
                    return true;
                }
            }
            return false;
        }

        let t = self.order[idx];
        let ti = t.index();
        let task = &self.graph.tasks()[ti];
        let p_min =
            self.graph.predecessors(t).iter().map(|q| st.part[q.index()]).max().unwrap_or(1).max(1);
        // Symmetry breaking: within an interchangeable group, (partition,
        // design point) must be lexicographically non-decreasing.
        let sym_floor = self.group_prev[ti].map(|prev| (st.part[prev], st.dpc[prev]));

        // Warm start: follow the hint solution first (local search around
        // an incumbent from a previous, looser window).
        let hint_pair = self
            .hint
            .as_ref()
            .and_then(|h| h.get(ti).copied())
            .map(|pl| (pl.partition, pl.design_point))
            .filter(|&(p, m)| {
                p >= p_min
                    && p <= self.n
                    && m < task.design_points().len()
                    && match sym_floor {
                        Some((sp, sm)) => p > sp || (p == sp && m >= sm),
                        None => true,
                    }
            });
        if let Some((p, m)) = hint_pair {
            if let Some(abort) = self.try_candidate(idx, t, p, m, st) {
                if abort {
                    return true;
                }
            }
        }

        for p in p_min..=self.n {
            for &m in &self.dp_order[ti] {
                if Some((p, m)) == hint_pair {
                    continue;
                }
                if let Some((sp, sm)) = sym_floor {
                    if p < sp || (p == sp && m < sm) {
                        continue;
                    }
                }
                if let Some(abort) = self.try_candidate(idx, t, p, m, st) {
                    if abort {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Tries assigning task `t` to `(p, m)`. Returns `None` if the
    /// candidate was rejected by a constraint or prune, `Some(abort)` after
    /// descending.
    fn try_candidate(
        &self,
        idx: usize,
        t: TaskId,
        p: u32,
        m: usize,
        st: &mut State,
    ) -> Option<bool> {
        let ti = t.index();
        let task = &self.graph.tasks()[ti];
        let pi = (p - 1) as usize;
        {
            {
                if st.stats.nodes >= self.limits.node_limit {
                    st.nodes_exhausted = false;
                    return Some(true);
                }
                if let Some(limit) = self.limits.time_limit {
                    if st.stats.nodes.is_multiple_of(1024) && st.start.elapsed() >= limit {
                        st.nodes_exhausted = false;
                        return Some(true);
                    }
                }
                st.stats.nodes += 1;

                let dp = &task.design_points()[m];
                // Resource.
                if st.area_used[pi] + dp.area().units() > self.arch.resource_capacity().units() {
                    return None;
                }
                // Secondary resource classes (constraint (6) per class).
                if self
                    .arch
                    .secondary_capacities()
                    .iter()
                    .enumerate()
                    .any(|(k, &cap)| st.sec_used[pi][k] + dp.secondary_usage(k) > cap)
                {
                    return None;
                }
                // Area look-ahead: remaining minimum areas (excluding t) must
                // fit in the total free area.
                let free_total: u64 = (0..self.n as usize)
                    .map(|q| self.arch.resource_capacity().units() - st.area_used[q])
                    .sum::<u64>()
                    - dp.area().units();
                if self.suffix_min_area[idx + 1] > free_total {
                    st.stats.area_prunes += 1;
                    return None;
                }

                // Latency bookkeeping.
                let chain = dp.latency().as_ns()
                    + self
                        .graph
                        .predecessors(t)
                        .iter()
                        .filter(|q| st.part[q.index()] == p)
                        .map(|q| st.chain_ns[q.index()])
                        .fold(0.0f64, f64::max);
                let new_d = st.d_part_ns[pi].max(chain);
                let delta_d = new_d - st.d_part_ns[pi];
                let new_sum = st.sum_d_ns + delta_d;
                let new_max_part = st.max_part.max(p);
                let eta_lb = new_max_part.max(self.eta_floor);
                // Admissible chain bound: the longest assigned-latency path
                // ending at t plus the cheapest possible completion below it.
                let gdepth = dp.latency().as_ns()
                    + self.pred_edges[ti]
                        .iter()
                        .map(|&(q, _)| st.gdepth_ns[q])
                        .fold(0.0f64, f64::max);
                let chain_lb = gdepth + self.tail_after_ns[ti];
                let lb = new_sum.max(chain_lb) + self.ct_ns() * f64::from(eta_lb);
                if lb > self.d_max_ns + 1e-9 {
                    st.stats.latency_prunes += 1;
                    return None;
                }
                if let Some((best, _)) = &st.best {
                    if self.goal == SearchGoal::Optimal && lb >= best - 1e-9 {
                        st.stats.latency_prunes += 1;
                        return None;
                    }
                }

                // Memory: apply deltas, tracking what we touched for undo.
                let mut mem_ok = true;
                let mut touched: Vec<(usize, u64)> = Vec::new();
                {
                    let mut add = |boundary: u32, amount: u64, st: &mut State| {
                        if amount == 0 {
                            return true;
                        }
                        let i = (boundary - 2) as usize;
                        st.mem[i] += amount;
                        touched.push((i, amount));
                        st.mem[i] <= self.arch.memory_capacity()
                    };
                    'mem: {
                        for &(q, data) in &self.pred_edges[ti] {
                            let pa = st.part[q];
                            if pa < p {
                                for b in (pa + 1)..=p {
                                    if !add(b, data, st) {
                                        mem_ok = false;
                                        break 'mem;
                                    }
                                }
                            }
                        }
                        if self.arch.env_policy() == EnvMemoryPolicy::Resident {
                            for b in 2..=p {
                                if !add(b, task.env_input(), st) {
                                    mem_ok = false;
                                    break 'mem;
                                }
                            }
                            for b in (p + 1)..=self.n {
                                if !add(b, task.env_output(), st) {
                                    mem_ok = false;
                                    break 'mem;
                                }
                            }
                        }
                    }
                }
                if !mem_ok {
                    st.stats.memory_rejects += 1;
                    for (i, amount) in touched {
                        st.mem[i] -= amount;
                    }
                    return None;
                }

                // Apply.
                st.part[ti] = p;
                st.dpc[ti] = m;
                st.area_used[pi] += dp.area().units();
                for (k, used) in st.sec_used[pi].iter_mut().enumerate() {
                    *used += dp.secondary_usage(k);
                }
                st.chain_ns[ti] = chain;
                st.gdepth_ns[ti] = gdepth;
                let old_d = st.d_part_ns[pi];
                st.d_part_ns[pi] = new_d;
                st.sum_d_ns = new_sum;
                let old_max = st.max_part;
                st.max_part = new_max_part;

                let abort = self.dfs(idx + 1, st);

                // Undo.
                st.part[ti] = 0;
                st.dpc[ti] = 0;
                st.area_used[pi] -= dp.area().units();
                for (k, used) in st.sec_used[pi].iter_mut().enumerate() {
                    *used -= dp.secondary_usage(k);
                }
                st.chain_ns[ti] = 0.0;
                st.gdepth_ns[ti] = 0.0;
                st.d_part_ns[pi] = old_d;
                st.sum_d_ns -= delta_d;
                st.max_part = old_max;
                for (i, amount) in touched {
                    st.mem[i] -= amount;
                }

                Some(abort)
            }
        }
    }

    fn ct_ns(&self) -> f64 {
        self.arch.reconfig_time().as_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_solution;
    use rtr_graph::{Area, DesignPoint, Latency, TaskGraphBuilder};

    fn dp(name: &str, area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new(name, Area::new(area), Latency::from_ns(lat))
    }

    fn small_graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b
            .add_task("a")
            .design_point(dp("s", 50, 300.0))
            .design_point(dp("f", 90, 150.0))
            .env_input(2)
            .finish();
        let c = b
            .add_task("c")
            .design_point(dp("s", 60, 250.0))
            .design_point(dp("f", 95, 120.0))
            .env_output(1)
            .finish();
        b.add_edge(a, c, 3).unwrap();
        b.build().unwrap()
    }

    fn run(
        graph: &TaskGraph,
        arch: &Architecture,
        n: u32,
        d_max: f64,
        goal: SearchGoal,
    ) -> SearchOutcome {
        StructuredSolver::new(graph, arch, n, d_max, goal, SearchLimits::default()).run().0
    }

    #[test]
    fn finds_feasible_and_respects_window() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        match run(&g, &arch, 2, 1_000.0, SearchGoal::FirstFeasible) {
            SearchOutcome::Feasible(sol) => {
                assert!(validate_solution(&g, &arch, &sol).is_empty());
                assert!(sol.total_latency(&g, &arch).as_ns() <= 1_000.0);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn window_below_optimum_is_infeasible() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        // Optimum is 150 + 120 + 2*50 = 370.
        assert_eq!(run(&g, &arch, 2, 369.0, SearchGoal::FirstFeasible), SearchOutcome::Infeasible);
        assert!(matches!(
            run(&g, &arch, 2, 370.0, SearchGoal::FirstFeasible),
            SearchOutcome::Feasible(_)
        ));
    }

    #[test]
    fn optimal_mode_finds_minimum() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        match run(&g, &arch, 2, 1e9, SearchGoal::Optimal) {
            SearchOutcome::Feasible(sol) => {
                assert_eq!(sol.total_latency(&g, &arch).as_ns(), 370.0);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn oversized_task_is_infeasible() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(40), 16, Latency::from_ns(50.0));
        assert_eq!(run(&g, &arch, 4, 1e9, SearchGoal::FirstFeasible), SearchOutcome::Infeasible);
    }

    #[test]
    fn memory_blocks_split() {
        let g = small_graph();
        // Splitting puts edge data (3 units) across the boundary; the area
        // (50 + 60 > 100) rules out sharing a partition, so memory 2 makes
        // the instance infeasible while memory 3 admits the split.
        let arch = Architecture::new(Area::new(100), 2, Latency::from_ns(50.0));
        assert_eq!(run(&g, &arch, 2, 1e9, SearchGoal::FirstFeasible), SearchOutcome::Infeasible);
        let arch_ok = Architecture::new(Area::new(100), 3, Latency::from_ns(50.0));
        assert!(matches!(
            run(&g, &arch_ok, 2, 1e9, SearchGoal::FirstFeasible),
            SearchOutcome::Feasible(_)
        ));
    }

    #[test]
    fn node_limit_reports_limit() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        let limits = SearchLimits { node_limit: 1, time_limit: None };
        // Force a search that needs more than one node: infeasible window.
        let (out, stats) =
            StructuredSolver::new(&g, &arch, 2, 369.0, SearchGoal::FirstFeasible, limits).run();
        assert_eq!(out, SearchOutcome::LimitReached);
        assert_eq!(stats.nodes, 1);
    }

    #[test]
    fn symmetric_tasks_are_broken() {
        // Four identical independent tasks: symmetry breaking should keep the
        // node count tiny even for an exhaustive (infeasible) search.
        let mut b = TaskGraphBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}")).design_point(dp("m", 10, 100.0)).finish();
        }
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(10), 16, Latency::from_ns(1.0));
        // Each partition fits exactly one task; with N=4 the only solutions
        // (up to symmetry) place one task per partition: total = 400 + 4.
        let (out, stats) = StructuredSolver::new(
            &g,
            &arch,
            4,
            1.0, // infeasible: forces exhaustion
            SearchGoal::FirstFeasible,
            SearchLimits::default(),
        )
        .run();
        assert_eq!(out, SearchOutcome::Infeasible);
        assert!(stats.nodes < 100, "symmetry breaking failed: {} nodes", stats.nodes);

        let (out2, _) = StructuredSolver::new(
            &g,
            &arch,
            4,
            404.0,
            SearchGoal::FirstFeasible,
            SearchLimits::default(),
        )
        .run();
        match out2 {
            SearchOutcome::Feasible(sol) => {
                assert_eq!(sol.partitions_used(), 4);
                assert_eq!(sol.total_latency(&g, &arch).as_ns(), 404.0);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn solutions_are_compacted() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("only").design_point(dp("m", 10, 100.0)).finish();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(1.0));
        match run(&g, &arch, 5, 1e9, SearchGoal::FirstFeasible) {
            SearchOutcome::Feasible(sol) => assert_eq!(sol.partitions_used(), 1),
            other => panic!("expected feasible, got {other:?}"),
        }
    }
}
