//! Cutting planes for the MILP root: a deterministic cut pool fed by
//! knapsack cover/clique separation and Gomory mixed-integer rounds.
//!
//! Cuts are generated **only at the branch-and-bound root, against the
//! root's variable bounds**, so every cut is valid for the whole subtree
//! (children only tighten bounds). Three families:
//!
//! * **cover cuts** — from `≤`-rows whose support is all-binary with
//!   positive coefficients (the per-partition area-knapsack rows of the
//!   partitioning ILP): a greedy, LP-value-ordered minimal cover `C` with
//!   `Σ_{j∈C} a_j > b` yields `Σ_{j∈C} x_j ≤ |C| − 1`;
//! * **clique cuts** — from the same rows: the longest
//!   coefficient-descending prefix whose two smallest members still
//!   pairwise overflow the capacity is a conflict clique, `Σ x_j ≤ 1`;
//! * **Gomory mixed-integer cuts** — from tableau rows of fractional
//!   integer basics at the optimal root basis, with the full
//!   bounded-variable complementation (at-upper nonbasics enter through
//!   their displacement `u − x`) and slack substitution back into
//!   structural space, slacks conservatively treated as continuous.
//!
//! Everything is deterministic: rows are scanned in model order, ties
//! break on ascending variable index, candidates are ranked by exact
//! comparisons, and the pool dedups via exact bit-pattern keys. The pool
//! ages cuts that go slack at the current LP optimum and hands stale ones
//! back to the caller for removal (activity-based aging), keeping the
//! working LP small.

use crate::model::{Constraint, LinExpr, Model, Rel, VarId, VarKind};
use crate::simplex::{fractional_rows, Basis};
use std::collections::BTreeSet;

/// Hard cap on pool size: separation stops adding once this many cuts are
/// active, keeping the working LP rows bounded.
pub(crate) const MAX_POOL_CUTS: usize = 64;
/// Tableau rows inspected per Gomory round.
const MAX_GOMORY_PER_ROUND: usize = 8;
/// Rounds a cut may sit slack at the LP optimum before it is dropped.
const CUT_AGE_LIMIT: u32 = 3;
/// Minimum violation at the separating LP point for a cut to be kept.
const MIN_VIOLATION: f64 = 1e-6;
/// Reject cuts whose kept coefficients span a wider dynamic range.
const MAX_COEF_RANGE: f64 = 1e7;
/// Gomory rows whose fractional part falls outside `[f0, 1-f0]` of this
/// are skipped as numerically fragile.
const GOMORY_FRAC_MIN: f64 = 0.05;

/// One pooled cutting plane over the structural variables.
#[derive(Debug, Clone)]
pub(crate) struct Cut {
    /// Export name, `cut_<family>_<seq>`.
    pub name: String,
    /// `(structural var index, coefficient)`, ascending, merged.
    pub terms: Vec<(usize, f64)>,
    /// Row relation.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: f64,
    /// Consecutive LP optima at which this cut was slack.
    pub age: u32,
}

impl Cut {
    /// Left-hand-side activity at the structural point `x`.
    pub fn activity(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|&(j, c)| c * x[j]).sum()
    }

    /// Slack at `x`: how far inside the cut the point sits (non-negative
    /// when satisfied with room, for both relations).
    pub fn slack(&self, x: &[f64]) -> f64 {
        match self.rel {
            Rel::Le => self.rhs - self.activity(x),
            Rel::Ge => self.activity(x) - self.rhs,
            Rel::Eq => -(self.activity(x) - self.rhs).abs(),
        }
    }

    /// The cut as a model constraint.
    pub fn to_constraint(&self) -> Constraint {
        let expr: LinExpr = self.terms.iter().map(|&(j, c)| (c, VarId(j))).collect();
        Constraint::new(expr, self.rel, self.rhs).with_name(self.name.clone())
    }
}

/// What one separation round produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SeparationResult {
    /// Gomory mixed-integer cuts added.
    pub gomory: usize,
    /// Cover + clique cuts added.
    pub knapsack: usize,
}

impl SeparationResult {
    /// Total cuts added this round.
    pub fn total(&self) -> usize {
        self.gomory + self.knapsack
    }
}

/// Exact dedup key: relation tag, rhs bits, term bits.
type CutKey = (u8, u64, Vec<(usize, u64)>);

/// The root cut pool: active cuts plus lifetime counters.
#[derive(Debug, Default)]
pub(crate) struct CutPool {
    cuts: Vec<Cut>,
    /// Cuts generated over the pool's lifetime (dropped ones included).
    pub generated: usize,
    seen: BTreeSet<CutKey>,
    seq: usize,
}

impl CutPool {
    pub fn new() -> Self {
        CutPool::default()
    }

    /// Active cuts, in working-model row order (base rows first).
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// Number of currently active cuts.
    pub fn active(&self) -> usize {
        self.cuts().len()
    }

    /// Appends every active cut to `model` as a named `cut_*` row.
    pub fn append_rows(&self, model: &mut Model) {
        for cut in &self.cuts {
            model.add_constraint(cut.to_constraint());
        }
    }

    fn key(terms: &[(usize, f64)], rel: Rel, rhs: f64) -> CutKey {
        let tag = match rel {
            Rel::Le => 0u8,
            Rel::Ge => 1,
            Rel::Eq => 2,
        };
        (tag, rhs.to_bits(), terms.iter().map(|&(j, c)| (j, c.to_bits())).collect())
    }

    /// Normalizes, validates, and dedups a candidate cut; returns `true`
    /// if it entered the pool. `x` is the structural LP point the cut must
    /// separate.
    fn try_add(
        &mut self,
        family: &str,
        mut terms: Vec<(usize, f64)>,
        rel: Rel,
        rhs: f64,
        x: &[f64],
    ) -> bool {
        if self.cuts.len() >= MAX_POOL_CUTS {
            return false;
        }
        terms.sort_by_key(|&(j, _)| j);
        terms.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        terms.retain(|&(_, c)| c.abs() > 1e-10);
        if terms.is_empty() || !rhs.is_finite() {
            return false;
        }
        let mut max_c = 0.0f64;
        let mut min_c = f64::INFINITY;
        for &(_, c) in &terms {
            let a = c.abs();
            if a > max_c {
                max_c = a;
            }
            if a < min_c {
                min_c = a;
            }
        }
        if max_c / min_c > MAX_COEF_RANGE || max_c > 1e8 {
            return false;
        }
        let cut = Cut { name: String::new(), terms, rel, rhs, age: 0 };
        if cut.slack(x) > -MIN_VIOLATION {
            return false; // not violated at the LP point: useless here
        }
        let key = Self::key(&cut.terms, cut.rel, cut.rhs);
        if !self.seen.insert(key) {
            return false;
        }
        let mut cut = cut;
        cut.name = format!("cut_{family}_{}", self.seq);
        self.seq += 1;
        self.cuts.push(cut);
        self.generated += 1;
        rtr_trace::status::board().add_ilp_cuts(1);
        true
    }

    /// One deterministic separation round against the structural LP point
    /// `x` and the optimal `basis` of the current working model.
    ///
    /// `base` is the **original** model (knapsack separation scans only its
    /// rows, never cut rows); `work` is the current working model (base
    /// plus active cuts) that `basis` belongs to; `root_bounds` are the
    /// root's integer-rounded bounds, making every derived cut globally
    /// valid for the subtree.
    pub fn separate(
        &mut self,
        base: &Model,
        work: &Model,
        root_bounds: &[(f64, f64)],
        basis: &Basis,
        tol: f64,
        x: &[f64],
    ) -> SeparationResult {
        let knapsack = self.separate_knapsack(base, x);
        let gomory = self.separate_gomory(work, root_bounds, basis, tol, x);
        SeparationResult { gomory, knapsack }
    }

    /// Cover and clique cuts from all-binary positive `≤`-rows of `base`.
    fn separate_knapsack(&mut self, base: &Model, x: &[f64]) -> usize {
        let mut added = 0usize;
        for c in &base.constraints {
            if c.rel != Rel::Le || !c.rhs.is_finite() {
                continue;
            }
            let terms = c.expr.normalized();
            if terms.len() < 2 {
                continue;
            }
            let mut items: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
            let mut ok = true;
            for (v, coef) in &terms {
                let j = v.index();
                if coef <= &0.0 || base.vars[j].kind != VarKind::Binary {
                    ok = false;
                    break;
                }
                items.push((j, *coef));
            }
            if !ok || items.iter().map(|&(_, a)| a).sum::<f64>() <= c.rhs {
                continue;
            }

            // Cover: greedily take items by LP value (desc), coefficient
            // (desc), index (asc) until the capacity overflows, then peel
            // back to a minimal cover.
            let mut by_value = items.clone();
            by_value.sort_by(|a, b| {
                x[b.0]
                    .partial_cmp(&x[a.0])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
                    .then(a.0.cmp(&b.0))
            });
            let mut cover: Vec<(usize, f64)> = Vec::new();
            let mut weight = 0.0f64;
            for &(j, a) in &by_value {
                cover.push((j, a));
                weight += a;
                if weight > c.rhs + 1e-9 {
                    break;
                }
            }
            if weight > c.rhs + 1e-9 {
                // Minimality: drop heavy items that are not needed, largest
                // coefficient first (index-tiebroken), keeping a cover.
                let mut order: Vec<usize> = (0..cover.len()).collect();
                order.sort_by(|&p, &q| {
                    cover[q]
                        .1
                        .partial_cmp(&cover[p].1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(cover[p].0.cmp(&cover[q].0))
                });
                let mut keep = vec![true; cover.len()];
                for &p in &order {
                    if weight - cover[p].1 > c.rhs + 1e-9 {
                        keep[p] = false;
                        weight -= cover[p].1;
                    }
                }
                let cover: Vec<(usize, f64)> =
                    cover.iter().zip(&keep).filter(|(_, &k)| k).map(|(&it, _)| it).collect();
                let rhs = cover.len() as f64 - 1.0;
                let cut_terms: Vec<(usize, f64)> = cover.iter().map(|&(j, _)| (j, 1.0)).collect();
                if self.try_add("cover", cut_terms, Rel::Le, rhs, x) {
                    added += 1;
                }
            }

            // Clique: sort by coefficient descending; the longest prefix
            // whose two smallest members together overflow the capacity is
            // pairwise conflicting.
            let mut by_coef = items.clone();
            by_coef.sort_by(|a, b| {
                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
            });
            let mut k = 0usize;
            for len in 2..=by_coef.len() {
                if by_coef[len - 2].1 + by_coef[len - 1].1 > c.rhs + 1e-9 {
                    k = len;
                } else {
                    break;
                }
            }
            if k >= 2 {
                let cut_terms: Vec<(usize, f64)> =
                    by_coef[..k].iter().map(|&(j, _)| (j, 1.0)).collect();
                if self.try_add("clique", cut_terms, Rel::Le, 1.0, x) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Gomory mixed-integer cuts from fractional integer basics of the
    /// working model's optimal basis.
    fn separate_gomory(
        &mut self,
        work: &Model,
        root_bounds: &[(f64, f64)],
        basis: &Basis,
        tol: f64,
        x: &[f64],
    ) -> usize {
        let n = work.vars.len();
        let mut is_int = vec![false; n];
        for (j, v) in work.vars.iter().enumerate() {
            is_int[j] = matches!(v.kind, VarKind::Integer | VarKind::Binary);
        }
        let Some(snap) =
            fractional_rows(work, Some(root_bounds), basis, tol, &is_int, MAX_GOMORY_PER_ROUND)
        else {
            return 0;
        };
        let mut added = 0usize;
        'rows: for row in &snap.rows {
            let b = row.rhs;
            let f0 = b - b.floor();
            if !(GOMORY_FRAC_MIN..=1.0 - GOMORY_FRAC_MIN).contains(&f0) {
                continue;
            }
            // Per nonbasic column: complement to its displacement from the
            // bound it sits at, apply the GMI coefficient, and record the
            // cut in column space.
            let mut col_coef: Vec<(usize, f64)> = Vec::with_capacity(row.coeffs.len());
            let mut rhs = f0;
            for &(j, a) in &row.coeffs {
                let at_upper = snap.at_upper[j];
                let (bound, c) = if at_upper {
                    // x_j = u_j - y_j, y_j >= 0: coefficient flips.
                    (snap.ub[j], -a)
                } else if snap.lb[j].is_finite() {
                    (snap.lb[j], a)
                } else {
                    // Free nonbasic: GMI needs a one-sided displacement.
                    continue 'rows;
                };
                if !bound.is_finite() {
                    continue 'rows;
                }
                // Integer displacement only when the variable is integer
                // AND the bound it is complemented against is integral.
                let integral = j < snap.n && is_int[j] && bound.fract() == 0.0;
                let g = if integral {
                    let fj = c - c.floor();
                    if fj <= f0 {
                        fj
                    } else {
                        f0 * (1.0 - fj) / (1.0 - f0)
                    }
                } else if c >= 0.0 {
                    c
                } else {
                    f0 * (-c) / (1.0 - f0)
                };
                if g == 0.0 {
                    continue;
                }
                // Substitute the displacement back: y = x - l or y = u - x.
                if at_upper {
                    col_coef.push((j, -g));
                    rhs -= g * bound;
                } else {
                    col_coef.push((j, g));
                    rhs += g * bound;
                }
            }
            // Substitute slacks out via their row definitions:
            // s_i = rhs_i - Σ a_ik x_k  (rows are  a·x + s = rhs).
            let mut terms: Vec<(usize, f64)> = Vec::new();
            for &(j, coef) in &col_coef {
                if j < snap.n {
                    terms.push((j, coef));
                } else {
                    let c = &work.constraints[j - snap.n];
                    rhs -= coef * c.rhs;
                    for (v, a) in c.expr.normalized() {
                        terms.push((v.index(), -coef * a));
                    }
                }
            }
            if self.try_add("gomory", terms, Rel::Ge, rhs, x) {
                added += 1;
            }
        }
        added
    }

    /// Ages every active cut against the structural LP point `x`
    /// (slack ⇒ `age += 1`, tight ⇒ `age = 0`) and returns the indices of
    /// cuts past the age limit, ascending.
    pub fn age_cuts(&mut self, x: &[f64]) -> Vec<usize> {
        let mut stale = Vec::new();
        for (i, cut) in self.cuts.iter_mut().enumerate() {
            if cut.slack(x) > 1e-6 {
                cut.age += 1;
            } else {
                cut.age = 0;
            }
            if cut.age >= CUT_AGE_LIMIT {
                stale.push(i);
            }
        }
        stale
    }

    /// Removes the cuts at `indices` (ascending, as returned by
    /// [`CutPool::age_cuts`], possibly filtered by the caller).
    pub fn remove(&mut self, indices: &[usize]) {
        for &i in indices.iter().rev() {
            self.cuts.remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Variable;
    use crate::simplex::solve_lp;

    const TOL: f64 = 1e-7;

    fn root_bounds(m: &Model) -> Vec<(f64, f64)> {
        m.vars.iter().map(crate::model::effective_bounds).collect()
    }

    /// Brute-force every binary point of `m`; every feasible one must
    /// satisfy every pooled cut (cut validity).
    fn assert_cuts_valid_on_binaries(m: &Model, pool: &CutPool) {
        let n = m.vars.len();
        assert!(n <= 16, "brute force only for small models");
        for mask in 0..(1u32 << n) {
            let point: Vec<f64> =
                (0..n).map(|j| if mask & (1 << j) != 0 { 1.0 } else { 0.0 }).collect();
            if !m.is_feasible_point(&point, 1e-6) {
                continue;
            }
            for cut in pool.cuts() {
                assert!(
                    cut.slack(&point) >= -1e-6,
                    "cut {} cuts off feasible point {point:?}",
                    cut.name
                );
            }
        }
    }

    #[test]
    fn cover_cut_separates_fractional_knapsack() {
        // max 3x0+4x1+5x2 s.t. 3x0+4x1+5x2 <= 6, binaries. LP relaxation is
        // fractional; the cover {x1, x2} (4+5 > 6) must be found.
        let mut m = Model::new();
        let v: Vec<_> = (0..3).map(|_| m.add_var(Variable::binary())).collect();
        m.add_constraint(Constraint::new(
            LinExpr::new() + (3.0, v[0]) + (4.0, v[1]) + (5.0, v[2]),
            Rel::Le,
            6.0,
        ));
        m.maximize(LinExpr::new() + (3.0, v[0]) + (4.0, v[1]) + (5.0, v[2]));
        let lp = solve_lp(&m, None, TOL, 0).unwrap();
        let mut pool = CutPool::new();
        let added = pool.separate_knapsack(&m, &lp.values);
        assert!(added >= 1, "expected at least one knapsack cut");
        assert!(pool.cuts().iter().any(|c| c.name.starts_with("cut_")));
        assert_cuts_valid_on_binaries(&m, &pool);
        // At least one cut must be violated at the LP point (try_add
        // guarantees it, but assert the contract anyway).
        assert!(pool.cuts().iter().any(|c| c.slack(&lp.values) < -1e-7));
    }

    #[test]
    fn clique_cut_from_pairwise_conflicts() {
        // Any two of {5,6,7} overflow 10: a 3-clique. LP point (which puts
        // total "weight" 10 fractionally) violates x0+x1+x2 <= 1.
        let mut m = Model::new();
        let v: Vec<_> = (0..3).map(|_| m.add_var(Variable::binary())).collect();
        m.add_constraint(Constraint::new(
            LinExpr::new() + (5.0, v[0]) + (6.0, v[1]) + (7.0, v[2]),
            Rel::Le,
            10.0,
        ));
        m.maximize(LinExpr::new() + (1.0, v[0]) + (1.0, v[1]) + (1.0, v[2]));
        let lp = solve_lp(&m, None, TOL, 0).unwrap();
        let mut pool = CutPool::new();
        pool.separate_knapsack(&m, &lp.values);
        let clique = pool.cuts().iter().find(|c| c.name.starts_with("cut_clique"));
        let clique = clique.expect("clique cut expected");
        assert_eq!(clique.terms.len(), 3);
        assert_eq!(clique.rhs, 1.0);
        assert_cuts_valid_on_binaries(&m, &pool);
    }

    #[test]
    fn gomory_cut_is_valid_and_violated() {
        // max x + y s.t. 2x + 3y <= 12, 4x + y <= 10, integers >= 0.
        // LP optimum is fractional -> a GMI cut must separate it.
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 10.0));
        let y = m.add_var(Variable::integer(0.0, 10.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (2.0, x) + (3.0, y), Rel::Le, 12.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (4.0, x) + (1.0, y), Rel::Le, 10.0));
        m.maximize(LinExpr::new() + (1.0, x) + (1.0, y));
        let lp = solve_lp(&m, None, TOL, 0).unwrap();
        let frac = lp.values.iter().any(|v| (v - v.round()).abs() > 1e-6);
        assert!(frac, "fixture must have a fractional LP optimum: {:?}", lp.values);
        let bounds = root_bounds(&m);
        let basis = lp.basis.clone().unwrap();
        let mut pool = CutPool::new();
        let added = pool.separate_gomory(&m, &bounds, &basis, TOL, &lp.values);
        assert!(added >= 1, "expected a Gomory cut");
        // Validity: every integer point in the box that satisfies the rows
        // must satisfy every cut.
        for xi in 0..=10i32 {
            for yi in 0..=10i32 {
                let p = [f64::from(xi), f64::from(yi)];
                if !m.is_feasible_point(&p, 1e-6) {
                    continue;
                }
                for cut in pool.cuts() {
                    assert!(
                        cut.slack(&p) >= -1e-6,
                        "cut {} cuts off integer point {p:?}",
                        cut.name
                    );
                }
            }
        }
        assert!(pool.cuts().iter().any(|c| c.slack(&lp.values) < -1e-7));
    }

    #[test]
    fn pool_dedups_and_ages() {
        let mut m = Model::new();
        let v: Vec<_> = (0..3).map(|_| m.add_var(Variable::binary())).collect();
        m.add_constraint(Constraint::new(
            LinExpr::new() + (3.0, v[0]) + (4.0, v[1]) + (5.0, v[2]),
            Rel::Le,
            6.0,
        ));
        m.maximize(LinExpr::new() + (3.0, v[0]) + (4.0, v[1]) + (5.0, v[2]));
        let lp = solve_lp(&m, None, TOL, 0).unwrap();
        let mut pool = CutPool::new();
        let first = pool.separate_knapsack(&m, &lp.values);
        assert!(first >= 1);
        let again = pool.separate_knapsack(&m, &lp.values);
        assert_eq!(again, 0, "identical round must dedup to nothing");
        assert_eq!(pool.generated, pool.active());

        // A point deep inside every cut ages them out after 3 rounds.
        let inside = vec![0.0; 3];
        assert!(pool.age_cuts(&inside).is_empty());
        assert!(pool.age_cuts(&inside).is_empty());
        let stale = pool.age_cuts(&inside);
        assert_eq!(stale.len(), pool.active());
        let active_before = pool.active();
        pool.remove(&stale);
        assert_eq!(pool.active(), 0);
        assert_eq!(pool.generated, active_before, "generated counts dropped cuts too");
    }

    #[test]
    fn cut_rows_append_with_cut_names() {
        let mut m = Model::new();
        let v: Vec<_> = (0..3).map(|_| m.add_var(Variable::binary())).collect();
        m.add_constraint(Constraint::new(
            LinExpr::new() + (5.0, v[0]) + (6.0, v[1]) + (7.0, v[2]),
            Rel::Le,
            10.0,
        ));
        m.maximize(LinExpr::new() + (1.0, v[0]) + (1.0, v[1]) + (1.0, v[2]));
        let lp = solve_lp(&m, None, TOL, 0).unwrap();
        let mut pool = CutPool::new();
        pool.separate_knapsack(&m, &lp.values);
        assert!(pool.active() >= 1);
        let base_rows = m.constraints.len();
        let mut work = m.clone();
        pool.append_rows(&mut work);
        assert_eq!(work.constraints.len(), base_rows + pool.active());
        for (c, cut) in work.constraints[base_rows..].iter().zip(pool.cuts()) {
            assert_eq!(c.name.as_deref(), Some(cut.name.as_str()));
        }
    }
}
