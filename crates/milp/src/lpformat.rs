//! CPLEX LP-format and BAS-format (basis) export.
//!
//! Writing a model in the standard LP text format lets it be inspected by
//! hand or cross-checked with an external solver — fitting for a crate
//! whose whole purpose is standing in for CPLEX. The companion `.bas`
//! export/import ([`Model::to_bas_format`], [`Model::parse_bas_format`])
//! round-trips the optimal [`Basis`] a solve returns, so a warm start can
//! be carried across processes alongside the LP file.

use crate::model::{Model, Rel, Sense, VarKind};
use crate::simplex::{Basis, VarStatus};
use crate::MilpError;
use std::fmt::Write as _;

impl Model {
    /// Renders the model in CPLEX LP format.
    ///
    /// Variable names come from [`Variable::with_name`](crate::Variable::with_name)
    /// (sanitized to LP-legal characters) or default to `x<index>`; name
    /// collisions fall back to the indexed form.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtr_milp::{Model, Variable, Constraint, LinExpr, Rel};
    /// let mut m = Model::new();
    /// let x = m.add_var(Variable::binary().with_name("x"));
    /// m.add_constraint(Constraint::new(LinExpr::new() + (2.0, x), Rel::Le, 1.0));
    /// m.maximize(LinExpr::new() + (1.0, x));
    /// let lp = m.to_lp_format();
    /// assert!(lp.starts_with("Maximize"));
    /// assert!(lp.contains("Binary"));
    /// assert!(lp.trim_end().ends_with("End"));
    /// ```
    pub fn to_lp_format(&self) -> String {
        let names = self.lp_names();
        let mut out = String::new();
        out.push_str(match self.sense {
            Sense::Minimize => "Minimize\n",
            Sense::Maximize => "Maximize\n",
        });
        out.push_str(" obj:");
        let obj = self.objective.normalized();
        if obj.is_empty() {
            out.push_str(" 0 "); // LP format needs at least one term
            out.push_str(&names[0]);
        } else {
            write_terms(&mut out, &obj, &names);
        }
        out.push('\n');

        out.push_str("Subject To\n");
        for (i, c) in self.constraints.iter().enumerate() {
            let label = sanitize(c.name().unwrap_or(""), &format!("c{i}"));
            let _ = write!(out, " {label}:");
            let terms = c.expr().normalized();
            if terms.is_empty() {
                // Degenerate row: encode as 0 * x0 so the file stays legal.
                let _ = write!(out, " 0 {}", names[0]);
            } else {
                write_terms(&mut out, &terms, &names);
            }
            let op = match c.rel() {
                Rel::Le => "<=",
                Rel::Ge => ">=",
                Rel::Eq => "=",
            };
            let _ = writeln!(out, " {op} {}", fmt_num(c.rhs()));
        }

        out.push_str("Bounds\n");
        for (j, v) in self.vars.iter().enumerate() {
            let name = &names[j];
            let (lo, hi) = (v.lower(), v.upper());
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) => {
                    let _ = writeln!(out, " {} <= {name} <= {}", fmt_num(lo), fmt_num(hi));
                }
                (true, false) => {
                    let _ = writeln!(out, " {name} >= {}", fmt_num(lo));
                }
                (false, true) => {
                    let _ = writeln!(out, " {name} <= {}", fmt_num(hi));
                }
                (false, false) => {
                    let _ = writeln!(out, " {name} free");
                }
            }
        }

        let generals: Vec<&str> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind() == VarKind::Integer)
            .map(|(j, _)| names[j].as_str())
            .collect();
        if !generals.is_empty() {
            out.push_str("General\n");
            for n in generals {
                let _ = writeln!(out, " {n}");
            }
        }
        let binaries: Vec<&str> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind() == VarKind::Binary)
            .map(|(j, _)| names[j].as_str())
            .collect();
        if !binaries.is_empty() {
            out.push_str("Binary\n");
            for n in binaries {
                let _ = writeln!(out, " {n}");
            }
        }
        out.push_str("End\n");
        out
    }

    /// Renders `basis` in CPLEX BAS format against this model.
    ///
    /// Per the format, each basic *structural* variable is paired with a
    /// row whose slack is nonbasic (`XL` when the slack sits at its lower
    /// bound, `XU` at its upper); pairing is by ascending index and is
    /// advisory — the solver refactorizes on import and re-pairs rows.
    /// Nonbasic structurals at their upper bound get a `UL` line, nonbasic
    /// free structurals an `FR` line (an extension: stock CPLEX has no
    /// nonbasic-free tag), and everything unmentioned defaults to the
    /// standard reading (structurals at lower bound, row slacks basic).
    ///
    /// Fails with [`MilpError::BasisFormat`] if `basis` does not match the
    /// model's dimensions.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtr_milp::{Model, Variable, Constraint, LinExpr, Rel, solve_lp};
    /// let mut m = Model::new();
    /// let x = m.add_var(Variable::continuous(0.0, 10.0).with_name("x"));
    /// let y = m.add_var(Variable::continuous(0.0, 10.0).with_name("y"));
    /// m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 6.0));
    /// m.maximize(LinExpr::new() + (3.0, x) + (2.0, y));
    /// let basis = solve_lp(&m, None, 1e-7, 0).unwrap().basis.unwrap();
    /// let text = m.to_bas_format(&basis).unwrap();
    /// let back = m.parse_bas_format(&text).unwrap();
    /// assert_eq!(back.statuses, basis.statuses);
    /// ```
    pub fn to_bas_format(&self, basis: &Basis) -> Result<String, MilpError> {
        let n = self.vars.len();
        let m = self.constraints.len();
        if basis.statuses.len() != n + m || basis.order.len() != m {
            return Err(MilpError::BasisFormat {
                detail: format!(
                    "basis has {} statuses / {} rows, model needs {} / {}",
                    basis.statuses.len(),
                    basis.order.len(),
                    n + m,
                    m
                ),
            });
        }
        let basic = basis.statuses.iter().filter(|&&s| s == VarStatus::Basic).count();
        if basic != m {
            return Err(MilpError::BasisFormat {
                detail: format!("{basic} basic columns for {m} rows"),
            });
        }
        let names = self.lp_names();
        let rows = self.bas_row_names();
        // One nonbasic slack exists for every basic structural (both counts
        // equal m minus the number of basic slacks), so zipping the two
        // ascending lists pairs everything.
        let basic_structs: Vec<usize> =
            (0..n).filter(|&j| basis.statuses[j] == VarStatus::Basic).collect();
        let nonbasic_rows: Vec<usize> =
            (0..m).filter(|&i| basis.statuses[n + i] != VarStatus::Basic).collect();
        debug_assert_eq!(basic_structs.len(), nonbasic_rows.len());
        let mut out = String::from("NAME rtr-milp basis\n");
        for (&j, &i) in basic_structs.iter().zip(&nonbasic_rows) {
            let tag = if basis.statuses[n + i] == VarStatus::AtUpper { "XU" } else { "XL" };
            let _ = writeln!(out, " {tag} {} {}", names[j], rows[i]);
        }
        for (status, name) in basis.statuses.iter().take(n).zip(&names) {
            match status {
                VarStatus::AtUpper => {
                    let _ = writeln!(out, " UL {name}");
                }
                VarStatus::Free => {
                    let _ = writeln!(out, " FR {name}");
                }
                VarStatus::AtLower | VarStatus::Basic => {}
            }
        }
        out.push_str("ENDATA\n");
        Ok(out)
    }

    /// Parses a CPLEX BAS file written by [`Model::to_bas_format`] (or by
    /// hand) back into a [`Basis`] for this model.
    ///
    /// Names are resolved against the same sanitized names the LP and BAS
    /// exporters emit. The row → column assignment is reconstructed from
    /// the `XL`/`XU` pairings where given; leftover rows take the remaining
    /// basic columns in ascending order — harmless, since the solver
    /// refactorizes (and thereby re-pairs) any installed basis anyway.
    pub fn parse_bas_format(&self, text: &str) -> Result<Basis, MilpError> {
        let n = self.vars.len();
        let m = self.constraints.len();
        let malformed = |line: usize, detail: &str| MilpError::BasisFormat {
            detail: format!("line {line}: {detail}"),
        };
        let mut var_ix = std::collections::HashMap::new();
        for (j, name) in self.lp_names().into_iter().enumerate() {
            var_ix.entry(name).or_insert(j);
        }
        let mut row_ix = std::collections::HashMap::new();
        for (i, name) in self.bas_row_names().into_iter().enumerate() {
            row_ix.entry(name).or_insert(i);
        }
        // Standard defaults: structurals nonbasic at a finite bound
        // (preferring lower), row slacks basic.
        let mut statuses: Vec<VarStatus> = self
            .vars
            .iter()
            .map(|v| {
                if v.lower().is_finite() {
                    VarStatus::AtLower
                } else if v.upper().is_finite() {
                    VarStatus::AtUpper
                } else {
                    VarStatus::Free
                }
            })
            .collect();
        statuses.resize(n + m, VarStatus::Basic);
        let mut paired: Vec<Option<usize>> = vec![None; m];
        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let toks: Vec<&str> = raw.split_whitespace().collect();
            match toks.as_slice() {
                [] => {}
                [first, ..] if first.starts_with('*') || *first == "NAME" => {}
                ["ENDATA", ..] => break,
                [tag @ ("XL" | "XU"), var, row] => {
                    let &j = var_ix
                        .get(*var)
                        .ok_or_else(|| malformed(line, &format!("unknown variable `{var}`")))?;
                    let &i = row_ix
                        .get(*row)
                        .ok_or_else(|| malformed(line, &format!("unknown row `{row}`")))?;
                    if paired[i].is_some() {
                        return Err(malformed(line, &format!("row `{row}` paired twice")));
                    }
                    statuses[j] = VarStatus::Basic;
                    statuses[n + i] =
                        if *tag == "XU" { VarStatus::AtUpper } else { VarStatus::AtLower };
                    paired[i] = Some(j);
                }
                [tag @ ("UL" | "LL" | "FR"), var] => {
                    let &j = var_ix
                        .get(*var)
                        .ok_or_else(|| malformed(line, &format!("unknown variable `{var}`")))?;
                    statuses[j] = match *tag {
                        "UL" => VarStatus::AtUpper,
                        "LL" => VarStatus::AtLower,
                        _ => VarStatus::Free,
                    };
                }
                [tag, ..] => {
                    return Err(malformed(line, &format!("unrecognized record `{tag}`")));
                }
            }
        }
        let basic = statuses.iter().filter(|&&s| s == VarStatus::Basic).count();
        if basic != m {
            return Err(MilpError::BasisFormat {
                detail: format!("file yields {basic} basic columns for {m} rows"),
            });
        }
        // Rebuild the row → column assignment: honor the explicit pairings,
        // keep basic slacks in their own rows where possible, and hand the
        // leftover basic columns to the leftover rows in ascending order.
        let mut order = vec![usize::MAX; m];
        let mut placed = vec![false; n + m];
        for (i, p) in paired.iter().enumerate() {
            if let Some(j) = *p {
                order[i] = j;
                placed[j] = true;
            }
        }
        for i in 0..m {
            if order[i] == usize::MAX && statuses[n + i] == VarStatus::Basic && !placed[n + i] {
                order[i] = n + i;
                placed[n + i] = true;
            }
        }
        let mut leftovers = (0..n + m).filter(|&c| statuses[c] == VarStatus::Basic && !placed[c]);
        for slot in order.iter_mut().filter(|slot| **slot == usize::MAX) {
            // The basic-count check above guarantees a column per row, but a
            // malformed file should surface as a typed error, never a panic.
            *slot = leftovers.next().ok_or_else(|| MilpError::BasisFormat {
                detail: "fewer basic columns than unpaired rows".to_string(),
            })?;
        }
        Ok(Basis { statuses, order })
    }

    fn lp_names(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        self.vars
            .iter()
            .enumerate()
            .map(|(j, v)| {
                let candidate = sanitize(v.name().unwrap_or(""), &format!("x{j}"));
                if seen.insert(candidate.clone()) {
                    candidate
                } else {
                    let fallback = format!("x{j}");
                    seen.insert(fallback.clone());
                    fallback
                }
            })
            .collect()
    }

    /// Row labels for the BAS exporter, deduplicated the same way variable
    /// names are (the LP exporter tolerates duplicate row labels; a basis
    /// file cannot, since rows are referenced by name).
    fn bas_row_names(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        self.constraints
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let candidate = sanitize(c.name().unwrap_or(""), &format!("c{i}"));
                if seen.insert(candidate.clone()) {
                    candidate
                } else {
                    let fallback = format!("c{i}");
                    seen.insert(fallback.clone());
                    fallback
                }
            })
            .collect()
    }
}

fn write_terms(out: &mut String, terms: &[(crate::VarId, f64)], names: &[String]) {
    for (k, (v, c)) in terms.iter().enumerate() {
        let sign = if *c < 0.0 {
            " - "
        } else if k == 0 {
            " "
        } else {
            " + "
        };
        let _ = write!(out, "{sign}{} {}", fmt_num(c.abs()), names[v.index()]);
    }
}

fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// LP names must start with a letter and avoid operators; invalid or empty
/// names fall back to `fallback`.
fn sanitize(name: &str, fallback: &str) -> String {
    let cleaned: String =
        name.chars()
            .map(|ch| {
                if ch.is_ascii_alphanumeric() || "_!#$%&(),.;?@{}~'`".contains(ch) {
                    ch
                } else {
                    '_'
                }
            })
            .collect();
    if cleaned.is_empty() || !cleaned.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
        fallback.to_owned()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, LinExpr, Variable};
    use crate::simplex::{resolve_lp, solve_lp, LpStatus};

    #[test]
    fn full_file_structure() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary().with_name("pick"));
        let y = m.add_var(Variable::integer(0.0, 9.0));
        let z = m.add_var(Variable::free());
        m.add_constraint(
            Constraint::new(LinExpr::new() + (1.5, x) + (-2.0, y), Rel::Le, 4.0).with_name("cap"),
        );
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, z), Rel::Eq, 0.5));
        m.minimize(LinExpr::new() + (3.0, x) + (1.0, z));
        let lp = m.to_lp_format();
        assert!(lp.starts_with("Minimize\n obj: 3 pick + 1 x2\n"));
        assert!(lp.contains(" cap: 1.5 pick - 2 x1 <= 4\n"));
        assert!(lp.contains(" c1: 1 x2 = 0.5\n"));
        assert!(lp.contains(" 0 <= pick <= 1\n"));
        assert!(lp.contains(" 0 <= x1 <= 9\n"));
        assert!(lp.contains(" x2 free\n"));
        assert!(lp.contains("General\n x1\n"));
        assert!(lp.contains("Binary\n pick\n"));
        assert!(lp.trim_end().ends_with("End"));
    }

    #[test]
    fn empty_objective_and_duplicate_names() {
        let mut m = Model::new();
        let _a = m.add_var(Variable::binary().with_name("dup"));
        let _b = m.add_var(Variable::binary().with_name("dup"));
        let lp = m.to_lp_format();
        // Second `dup` falls back to an indexed name.
        assert!(lp.contains("Binary\n dup\n x1\n"), "{lp}");
        assert!(lp.contains(" obj: 0 dup"));
    }

    #[test]
    fn sanitization() {
        assert_eq!(sanitize("y p1 t2", "f"), "y_p1_t2");
        assert_eq!(sanitize("", "f"), "f");
        assert_eq!(sanitize("0start", "f"), "f");
        assert_eq!(sanitize("a<=b", "f"), "a__b");
    }

    /// An LP with a basic structural (`XL`), an at-upper structural (`UL`),
    /// and a basic slack, so every major BAS record round-trips.
    fn bas_fixture() -> Model {
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 5.0).with_name("x"));
        let y = m.add_var(Variable::continuous(0.0, 10.0).with_name("y"));
        m.add_constraint(
            Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 6.0).with_name("cap"),
        );
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (3.0, y), Rel::Le, 12.0));
        m.maximize(LinExpr::new() + (3.0, x) + (2.0, y));
        m
    }

    #[test]
    fn bas_round_trip_preserves_the_basis() {
        let m = bas_fixture();
        let out = solve_lp(&m, None, 1e-7, 0).unwrap();
        assert_eq!(out.status, LpStatus::Optimal);
        let basis = out.basis.expect("optimal solve returns a basis");
        let text = m.to_bas_format(&basis).unwrap();
        // Optimum is x = 5 (its upper bound), y = 1 basic, `cap` tight.
        assert!(text.starts_with("NAME"), "{text}");
        assert!(text.contains(" XL y cap"), "{text}");
        assert!(text.contains(" UL x"), "{text}");
        assert!(text.trim_end().ends_with("ENDATA"), "{text}");

        let back = m.parse_bas_format(&text).unwrap();
        assert_eq!(back.statuses, basis.statuses);
        let mut got: Vec<usize> = back.order.clone();
        let mut want: Vec<usize> = basis.order.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "same set of basic columns row-assigned");

        // The parsed basis is a working warm start: a re-solve from it
        // reproduces the cold objective.
        let warm = resolve_lp(&m, None, &back, 1e-7, 0).unwrap();
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.objective - out.objective).abs() < 1e-9);
    }

    #[test]
    fn bas_parse_rejects_malformed_input() {
        let m = bas_fixture();
        let err = m.parse_bas_format(" ZZ x cap\nENDATA\n").unwrap_err();
        assert!(err.to_string().contains("unrecognized record"), "{err}");
        let err = m.parse_bas_format(" XL nope cap\nENDATA\n").unwrap_err();
        assert!(err.to_string().contains("unknown variable"), "{err}");
        let err = m.parse_bas_format(" XL x nope\nENDATA\n").unwrap_err();
        assert!(err.to_string().contains("unknown row"), "{err}");
        let err = m.parse_bas_format(" XL x cap\n XU y cap\nENDATA\n").unwrap_err();
        assert!(err.to_string().contains("paired twice"), "{err}");
        // One basic structural but both slacks nonbasic: 1 basic column
        // for 2 rows.
        let err = m.parse_bas_format(" XL x cap\n XU x c1\nENDATA\n").unwrap_err();
        assert!(err.to_string().contains("basic columns"), "{err}");
        let err = m.parse_bas_format("NAME t\nENDATA\n").and_then(|b| m.to_bas_format(&b));
        assert!(err.is_ok(), "all-slack default basis is valid");
    }

    #[test]
    fn bas_export_rejects_foreign_basis() {
        let m = bas_fixture();
        let bad = crate::Basis { statuses: vec![], order: vec![] };
        let err = m.to_bas_format(&bad).unwrap_err();
        assert!(err.to_string().contains("malformed basis"), "{err}");
    }

    #[test]
    fn bas_defaults_follow_bounds_and_comments_are_skipped() {
        let mut m = Model::new();
        let _x = m.add_var(Variable::continuous(0.0, 1.0).with_name("x"));
        let _f = m.add_var(Variable::free().with_name("f"));
        m.add_constraint(Constraint::new(LinExpr::new(), Rel::Le, 1.0));
        let b = m.parse_bas_format("* comment\nNAME t\n\nENDATA\n").unwrap();
        assert_eq!(b.statuses, vec![VarStatus::AtLower, VarStatus::Free, VarStatus::Basic]);
        assert_eq!(b.order, vec![2]);
    }

    #[test]
    fn cut_pool_rows_export_and_round_trip() {
        // A model augmented with cut-pool rows exports them under their
        // `cut_*` names, and a basis of the augmented model survives the
        // BAS round-trip (cut rows are ordinary rows to the format layer).
        let mut m = Model::new();
        let a = m.add_var(Variable::binary().with_name("a"));
        let b = m.add_var(Variable::binary().with_name("b"));
        let c = m.add_var(Variable::binary().with_name("c"));
        m.add_constraint(
            Constraint::new(LinExpr::new() + (5.0, a) + (6.0, b) + (4.0, c), Rel::Le, 10.0)
                .with_name("area"),
        );
        m.maximize(LinExpr::new() + (10.0, a) + (13.0, b) + (7.0, c));

        let cover = crate::cuts::Cut {
            name: "cut_cover_0".to_string(),
            terms: vec![(0, 1.0), (1, 1.0)],
            rel: Rel::Le,
            rhs: 1.0,
            age: 0,
        };
        let gomory = crate::cuts::Cut {
            name: "cut_gomory_1".to_string(),
            terms: vec![(0, 0.5), (2, 1.0)],
            rel: Rel::Ge,
            rhs: 0.5,
            age: 0,
        };
        let mut aug = m.clone();
        aug.add_constraint(cover.to_constraint());
        aug.add_constraint(gomory.to_constraint());

        let lp = aug.to_lp_format();
        assert!(lp.contains(" cut_cover_0: 1 a + 1 b <= 1\n"), "{lp}");
        assert!(lp.contains(" cut_gomory_1: 0.5 a + 1 c >= 0.5\n"), "{lp}");

        let out = solve_lp(&aug, None, 1e-7, 0).unwrap();
        assert_eq!(out.status, LpStatus::Optimal);
        let basis = out.basis.expect("optimal solve returns a basis");
        let text = aug.to_bas_format(&basis).unwrap();
        let back = aug.parse_bas_format(&text).unwrap();
        assert_eq!(back.statuses, basis.statuses);
        let warm = resolve_lp(&aug, None, &back, 1e-7, 0).unwrap();
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.objective - out.objective).abs() < 1e-9);
    }

    #[test]
    fn partitioning_model_exports() {
        // The real ILP from rtr-core should produce a well-formed file; here
        // we check a representative structural subset built directly.
        let mut m = Model::new();
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_var(Variable::binary().with_name(format!("y_p{}_t{}", i / 3, i % 3))))
            .collect();
        for t in 0..3 {
            m.add_constraint(
                Constraint::new(LinExpr::new() + (1.0, vars[t]) + (1.0, vars[t + 3]), Rel::Eq, 1.0)
                    .with_name(format!("unique_t{t}")),
            );
        }
        let lp = m.to_lp_format();
        assert_eq!(lp.matches("unique_t").count(), 3);
        // terms + bounds + binary section + the zero-objective placeholder.
        assert_eq!(lp.matches("y_p").count(), 6 + 6 + 6 + 1);
    }
}
