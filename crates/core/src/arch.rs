//! Target architecture parameters.

use rtr_graph::{Area, Latency};
use std::fmt;

/// How environment I/O occupies on-board memory across partition boundaries.
///
/// The paper's memory constraint (3) charges data read from and written to
/// the environment against the on-board memory `M_max`, alongside
/// inter-partition data. Two interpretations are supported:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnvMemoryPolicy {
    /// Environment data is resident on the board for the whole run: an input
    /// word of task `t` occupies every boundary before `t`'s partition
    /// executes, and an output word occupies every boundary after. This is
    /// the conservative reading of constraint (3) and the default.
    #[default]
    Resident,
    /// The host streams environment data in and out between configurations,
    /// so only inter-task data counts against `M_max`.
    Streamed,
}

impl fmt::Display for EnvMemoryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EnvMemoryPolicy::Resident => "resident",
            EnvMemoryPolicy::Streamed => "streamed",
        })
    }
}

/// Parameters of the run-time reconfigurable processor: the paper's
/// `R_max`, `M_max`, and `C_T`.
///
/// # Examples
///
/// ```
/// use rtr_core::Architecture;
/// use rtr_graph::{Area, Latency};
///
/// let arch = Architecture::new(Area::new(576), 256, Latency::from_ms(1.0));
/// assert_eq!(arch.resource_capacity(), Area::new(576));
/// let fast = Architecture::time_multiplexed();
/// assert!(fast.reconfig_time() < arch.reconfig_time());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    resource_capacity: Area,
    memory_capacity: u64,
    reconfig_time: Latency,
    env_policy: EnvMemoryPolicy,
    secondary_capacities: Vec<u64>,
}

impl Architecture {
    /// Creates an architecture with resource capacity `R_max` (FPGA area per
    /// configuration), on-board memory `M_max` in data units, and
    /// reconfiguration time `C_T`.
    pub fn new(resource_capacity: Area, memory_capacity: u64, reconfig_time: Latency) -> Self {
        Architecture {
            resource_capacity,
            memory_capacity,
            reconfig_time,
            env_policy: EnvMemoryPolicy::default(),
            secondary_capacities: Vec::new(),
        }
    }

    /// Builder-style environment memory policy override.
    pub fn with_env_policy(mut self, policy: EnvMemoryPolicy) -> Self {
        self.env_policy = policy;
        self
    }

    /// Declares per-configuration capacities of *secondary resource
    /// classes* (dedicated multipliers, block RAMs, …) matching the class
    /// indices of [`DesignPoint::secondary`](rtr_graph::DesignPoint::secondary).
    /// A class beyond this vector is unconstrained.
    pub fn with_secondary_capacities(mut self, capacities: Vec<u64>) -> Self {
        self.secondary_capacities = capacities;
        self
    }

    /// A Wildforce-class board: millisecond-scale reconfiguration, the
    /// paper's "reconfiguration time orders of magnitude greater than the
    /// task graph latency" regime.
    pub fn wildforce() -> Self {
        Architecture::new(Area::new(576), 512, Latency::from_ms(10.0))
    }

    /// A time-multiplexed FPGA in the style of \[12\]: nanosecond-scale
    /// context switches, the regime where extra partitions can pay off.
    pub fn time_multiplexed() -> Self {
        Architecture::new(Area::new(576), 512, Latency::from_ns(30.0))
    }

    /// Resource capacity `R_max` of one configuration.
    pub fn resource_capacity(&self) -> Area {
        self.resource_capacity
    }

    /// On-board memory `M_max`, in data units.
    pub fn memory_capacity(&self) -> u64 {
        self.memory_capacity
    }

    /// Reconfiguration time `C_T`.
    pub fn reconfig_time(&self) -> Latency {
        self.reconfig_time
    }

    /// Environment memory policy.
    pub fn env_policy(&self) -> EnvMemoryPolicy {
        self.env_policy
    }

    /// Secondary resource capacities per class (empty when only the primary
    /// area resource is constrained).
    pub fn secondary_capacities(&self) -> &[u64] {
        &self.secondary_capacities
    }

    /// Capacity of secondary class `class`, or `None` if unconstrained.
    pub fn secondary_capacity(&self, class: usize) -> Option<u64> {
        self.secondary_capacities.get(class).copied()
    }

    /// `true` if a single design point fits an empty configuration of this
    /// device (area and every secondary class).
    pub fn admits(&self, dp: &rtr_graph::DesignPoint) -> bool {
        dp.area() <= self.resource_capacity
            && self
                .secondary_capacities
                .iter()
                .enumerate()
                .all(|(k, &cap)| dp.secondary_usage(k) <= cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_regimes() {
        let slow = Architecture::wildforce();
        let fast = Architecture::time_multiplexed();
        assert!(slow.reconfig_time().as_ns() / fast.reconfig_time().as_ns() > 1e4);
    }

    #[test]
    fn policy_override() {
        let a = Architecture::wildforce().with_env_policy(EnvMemoryPolicy::Streamed);
        assert_eq!(a.env_policy(), EnvMemoryPolicy::Streamed);
        assert_eq!(EnvMemoryPolicy::Streamed.to_string(), "streamed");
        assert_eq!(EnvMemoryPolicy::default(), EnvMemoryPolicy::Resident);
    }
}
