//! The event-driven execution model.

use crate::report::{PartitionTrace, SimError, SimReport, TaskTrace};
use rtr_core::{validate_solution, Architecture, Solution};
use rtr_graph::{Latency, TaskGraph};

/// Options for [`simulate_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimOptions {
    /// Double-buffered configuration contexts: while partition `p`
    /// executes, the configuration port loads partition `p + 1` into the
    /// inactive context, hiding reconfiguration time behind execution —
    /// the behaviour of time-multiplexed FPGAs in the style of the paper's
    /// reference \[12\]. The analytic model `Σ d_p + η·C_T` does not account
    /// for this; the simulator is the evaluation tool for it.
    pub prefetch: bool,
}

/// Simulates executing `solution` on the reconfigurable processor.
///
/// The solution is validated first; partitions then execute in order, each
/// paying the reconfiguration cost `C_T` before its tasks run in dataflow
/// order (a task starts once all same-partition predecessors have finished;
/// operands from earlier partitions are available at partition start).
///
/// # Errors
///
/// Returns [`SimError::InvalidSolution`] if the solution violates any
/// constraint.
///
/// # Examples
///
/// ```
/// use rtr_core::{Architecture, Solution, Placement};
/// use rtr_graph::{TaskGraphBuilder, DesignPoint, Area, Latency};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TaskGraphBuilder::new();
/// let a = b.add_task("a")
///     .design_point(DesignPoint::new("m", Area::new(10), Latency::from_ns(100.0)))
///     .finish();
/// let c = b.add_task("c")
///     .design_point(DesignPoint::new("m", Area::new(10), Latency::from_ns(200.0)))
///     .finish();
/// b.add_edge(a, c, 1)?;
/// let g = b.build()?;
/// let arch = Architecture::new(Area::new(16), 8, Latency::from_ns(50.0));
/// let sol = Solution::new(vec![
///     Placement { partition: 1, design_point: 0 },
///     Placement { partition: 2, design_point: 0 },
/// ], 2);
/// let report = rtr_sim::simulate(&g, &arch, &sol)?;
/// // 50 (reconfig) + 100 + 50 (reconfig) + 200.
/// assert_eq!(report.total_latency.as_ns(), 400.0);
/// // The simulator independently confirms the analytic model:
/// assert_eq!(report.total_latency, sol.total_latency(&g, &arch));
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    graph: &TaskGraph,
    arch: &Architecture,
    solution: &Solution,
) -> Result<SimReport, SimError> {
    simulate_with(graph, arch, solution, &SimOptions::default())
}

/// [`simulate`] with explicit [`SimOptions`] (e.g. configuration
/// prefetching on a double-buffered device).
///
/// # Errors
///
/// Returns [`SimError::InvalidSolution`] if the solution violates any
/// constraint.
pub fn simulate_with(
    graph: &TaskGraph,
    arch: &Architecture,
    solution: &Solution,
    options: &SimOptions,
) -> Result<SimReport, SimError> {
    let span = rtr_trace::span("sim.simulate").with("prefetch", options.prefetch);
    let violations = validate_solution(graph, arch, solution);
    if !violations.is_empty() {
        return Err(SimError::InvalidSolution(violations));
    }
    let compact = solution.compacted(solution.n_bound());
    let eta = compact.partitions_used();
    let boundary_memory = compact.boundary_memory(graph, arch.env_policy());

    let mut finish = vec![Latency::ZERO; graph.task_count()];
    let mut clock = Latency::ZERO;
    let mut partitions = Vec::with_capacity(eta as usize);
    let mut peak_memory = 0u64;
    // With prefetch, the configuration port loads context p while p-1
    // executes; track when the port becomes free.
    let mut port_free = Latency::ZERO;
    let mut prev_exec_start = Latency::ZERO;
    let mut prev_exec_end = Latency::ZERO;

    for p in 1..=eta {
        let reconfig_start = if options.prefetch {
            // The inactive context buffer frees once the previous partition
            // has started executing; the port must also be free.
            if p == 1 {
                Latency::ZERO
            } else {
                port_free.max(prev_exec_start)
            }
        } else {
            clock
        };
        let reconfig_end = reconfig_start + arch.reconfig_time();
        port_free = reconfig_end;
        let exec_start =
            if options.prefetch { reconfig_end.max(prev_exec_end) } else { reconfig_end };
        let mut traces = Vec::new();
        let mut exec_end = exec_start;
        // Tasks in topological order: same-partition dataflow execution.
        for &t in graph.topological_order() {
            if compact.placement(t).partition != p {
                continue;
            }
            let dp = &graph.task(t).design_points()[compact.placement(t).design_point];
            let ready = graph
                .predecessors(t)
                .iter()
                .filter(|q| compact.placement(**q).partition == p)
                .map(|q| finish[q.index()])
                .fold(exec_start, Latency::max);
            let done = ready + dp.latency();
            finish[t.index()] = done;
            exec_end = exec_end.max(done);
            traces.push(TaskTrace { task: t, start: ready, finish: done });
        }
        traces.sort_by(|a, b| a.start.total_cmp(&b.start));
        // Memory in use while partition p runs = data held at boundary p
        // (boundary p is the state entering partition p; partition 1 starts
        // with only environment inputs, already charged at later
        // boundaries under the resident policy).
        let memory_in_use = if p >= 2 { boundary_memory[(p - 2) as usize] } else { 0 };
        peak_memory = peak_memory.max(memory_in_use);
        partitions.push(PartitionTrace {
            partition: p,
            reconfig_start,
            exec_start,
            exec_end,
            tasks: traces,
            memory_in_use,
        });
        prev_exec_start = exec_start;
        prev_exec_end = exec_end;
        clock = clock.max(exec_end);
    }

    // One timeline event per partition: when its configuration loaded, when
    // it executed, and what it held in memory.
    if rtr_trace::enabled() {
        for pt in &partitions {
            rtr_trace::event("sim.partition", || {
                vec![
                    ("partition".to_owned(), u64::from(pt.partition).into()),
                    ("reconfig_start_ns".to_owned(), pt.reconfig_start.as_ns().into()),
                    ("exec_start_ns".to_owned(), pt.exec_start.as_ns().into()),
                    ("exec_end_ns".to_owned(), pt.exec_end.as_ns().into()),
                    ("tasks".to_owned(), (pt.tasks.len() as u64).into()),
                    ("memory_in_use".to_owned(), pt.memory_in_use.into()),
                ]
            });
        }
    }
    span.with("eta", u64::from(eta)).with("total_latency_ns", clock.as_ns()).finish();

    Ok(SimReport {
        partitions,
        total_latency: clock,
        reconfig_time: arch.reconfig_time() * eta,
        peak_memory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::Placement;
    use rtr_graph::{Area, DesignPoint, TaskGraphBuilder};

    fn dp(area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new("m", Area::new(area), Latency::from_ns(lat))
    }

    /// Fork-join inside one partition: latency is the critical path, not the
    /// sum.
    #[test]
    fn intra_partition_parallelism() {
        let mut b = TaskGraphBuilder::new();
        let s = b.add_task("s").design_point(dp(5, 100.0)).finish();
        let l = b.add_task("l").design_point(dp(5, 300.0)).finish();
        let r = b.add_task("r").design_point(dp(5, 50.0)).finish();
        let j = b.add_task("j").design_point(dp(5, 100.0)).finish();
        b.add_edge(s, l, 1).unwrap();
        b.add_edge(s, r, 1).unwrap();
        b.add_edge(l, j, 1).unwrap();
        b.add_edge(r, j, 1).unwrap();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(10.0));
        let pl = |p| Placement { partition: p, design_point: 0 };
        let sol = Solution::new(vec![pl(1); 4], 1);
        let report = simulate(&g, &arch, &sol).unwrap();
        // 10 (reconfig) + 100 + 300 + 100.
        assert_eq!(report.total_latency.as_ns(), 510.0);
        assert_eq!(report.partitions_used(), 1);
        assert_eq!(report.execution_latency().as_ns(), 500.0);
    }

    #[test]
    fn matches_analytic_model_across_splits() {
        let mut b = TaskGraphBuilder::new();
        let s = b.add_task("s").design_point(dp(5, 100.0)).finish();
        let l = b.add_task("l").design_point(dp(5, 300.0)).finish();
        let r = b.add_task("r").design_point(dp(5, 50.0)).finish();
        let j = b.add_task("j").design_point(dp(5, 100.0)).finish();
        b.add_edge(s, l, 2).unwrap();
        b.add_edge(s, r, 2).unwrap();
        b.add_edge(l, j, 2).unwrap();
        b.add_edge(r, j, 2).unwrap();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(25.0));
        let pl = |p| Placement { partition: p, design_point: 0 };
        for placements in [
            vec![pl(1), pl(1), pl(1), pl(2)],
            vec![pl(1), pl(2), pl(1), pl(2)],
            vec![pl(1), pl(2), pl(2), pl(3)],
            vec![pl(1), pl(1), pl(2), pl(3)],
        ] {
            let sol = Solution::new(placements, 3);
            let report = simulate(&g, &arch, &sol).unwrap();
            assert_eq!(
                report.total_latency,
                sol.total_latency(&g, &arch),
                "simulator disagrees with analytic model for {sol}"
            );
            assert_eq!(report.peak_memory, sol.peak_memory(&g, arch.env_policy()));
        }
    }

    #[test]
    fn cross_partition_data_waits_in_memory_not_time() {
        // A producer in p1 and two consumers in p2: both consumers start at
        // partition-2 exec start, not serialized after the producer.
        let mut b = TaskGraphBuilder::new();
        let s = b.add_task("s").design_point(dp(5, 100.0)).finish();
        let c1 = b.add_task("c1").design_point(dp(5, 200.0)).finish();
        let c2 = b.add_task("c2").design_point(dp(5, 250.0)).finish();
        b.add_edge(s, c1, 1).unwrap();
        b.add_edge(s, c2, 1).unwrap();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(10.0));
        let pl = |p| Placement { partition: p, design_point: 0 };
        let sol = Solution::new(vec![pl(1), pl(2), pl(2)], 2);
        let report = simulate(&g, &arch, &sol).unwrap();
        let p2 = &report.partitions[1];
        assert_eq!(p2.tasks.len(), 2);
        assert!(p2.tasks.iter().all(|t| t.start == p2.exec_start));
        assert_eq!(report.total_latency.as_ns(), 10.0 + 100.0 + 10.0 + 250.0);
        assert_eq!(p2.memory_in_use, 2);
    }

    #[test]
    fn invalid_solution_is_rejected() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp(5, 1.0)).finish();
        let c = b.add_task("c").design_point(dp(5, 1.0)).finish();
        b.add_edge(a, c, 1).unwrap();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(10.0));
        // Temporal order violated.
        let sol = Solution::new(
            vec![
                Placement { partition: 2, design_point: 0 },
                Placement { partition: 1, design_point: 0 },
            ],
            2,
        );
        assert!(matches!(simulate(&g, &arch, &sol), Err(SimError::InvalidSolution(_))));
    }

    #[test]
    fn prefetch_hides_reconfiguration_behind_execution() {
        // Chain of 3 tasks of 100 ns each in 3 partitions, C_T = 40 ns.
        let mut b = TaskGraphBuilder::new();
        let mut prev = None;
        for i in 0..3 {
            let t = b.add_task(format!("t{i}")).design_point(dp(5, 100.0)).finish();
            if let Some(p) = prev {
                b.add_edge(p, t, 1).unwrap();
            }
            prev = Some(t);
        }
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(10), 16, Latency::from_ns(40.0));
        let pl = |p| Placement { partition: p, design_point: 0 };
        let sol = Solution::new(vec![pl(1), pl(2), pl(3)], 3);
        let plain = simulate(&g, &arch, &sol).unwrap();
        assert_eq!(plain.total_latency.as_ns(), 3.0 * (40.0 + 100.0));
        let pre = simulate_with(&g, &arch, &sol, &SimOptions { prefetch: true }).unwrap();
        // Loads of partitions 2 and 3 hide behind 100 ns executions:
        // 40 + 100 + 100 + 100.
        assert_eq!(pre.total_latency.as_ns(), 340.0);
        // Timeline stays causal.
        for w in pre.partitions.windows(2) {
            assert!(w[1].exec_start >= w[0].exec_end);
            assert!(w[1].reconfig_start >= w[0].exec_start);
        }
    }

    #[test]
    fn prefetch_is_reconfig_bound_when_ct_dominates() {
        // Executions of 10 ns with C_T = 100 ns: the port serializes loads.
        let mut b = TaskGraphBuilder::new();
        let mut prev = None;
        for i in 0..3 {
            let t = b.add_task(format!("t{i}")).design_point(dp(5, 10.0)).finish();
            if let Some(p) = prev {
                b.add_edge(p, t, 1).unwrap();
            }
            prev = Some(t);
        }
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(10), 16, Latency::from_ns(100.0));
        let pl = |p| Placement { partition: p, design_point: 0 };
        let sol = Solution::new(vec![pl(1), pl(2), pl(3)], 3);
        let pre = simulate_with(&g, &arch, &sol, &SimOptions { prefetch: true }).unwrap();
        // Port: loads end at 100, 200, 300; executions at 110, 210, 310.
        assert_eq!(pre.total_latency.as_ns(), 310.0);
    }

    #[test]
    fn prefetch_never_slower_than_blocking_reconfiguration() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp(5, 123.0)).finish();
        let c = b.add_task("c").design_point(dp(5, 77.0)).finish();
        let d = b.add_task("d").design_point(dp(5, 211.0)).finish();
        b.add_edge(a, c, 1).unwrap();
        b.add_edge(c, d, 1).unwrap();
        let g = b.build().unwrap();
        let pl = |p| Placement { partition: p, design_point: 0 };
        let sol = Solution::new(vec![pl(1), pl(2), pl(3)], 3);
        for ct in [1.0, 50.0, 150.0, 1000.0] {
            let arch = Architecture::new(Area::new(10), 16, Latency::from_ns(ct));
            let plain = simulate(&g, &arch, &sol).unwrap();
            let pre = simulate_with(&g, &arch, &sol, &SimOptions { prefetch: true }).unwrap();
            assert!(
                pre.total_latency <= plain.total_latency,
                "ct {ct}: {} > {}",
                pre.total_latency,
                plain.total_latency
            );
        }
    }

    #[test]
    fn gaps_are_compacted_before_execution() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp(5, 100.0)).finish();
        let c = b.add_task("c").design_point(dp(5, 100.0)).finish();
        b.add_edge(a, c, 1).unwrap();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(10.0));
        // Partitions 1 and 5 used out of bound 5: the device reconfigures
        // twice, not five times.
        let sol = Solution::new(
            vec![
                Placement { partition: 1, design_point: 0 },
                Placement { partition: 5, design_point: 0 },
            ],
            5,
        );
        let report = simulate(&g, &arch, &sol).unwrap();
        assert_eq!(report.partitions_used(), 2);
        assert_eq!(report.reconfig_time.as_ns(), 20.0);
    }

    #[test]
    fn timeline_renders() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("a").design_point(dp(5, 100.0)).finish();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(10.0));
        let sol = Solution::new(vec![Placement { partition: 1, design_point: 0 }], 1);
        let report = simulate(&g, &arch, &sol).unwrap();
        let text = report.timeline();
        assert!(text.contains("partition 1"));
        assert!(text.contains("total"));
    }
}
