//! Simulation reports and errors.

use rtr_graph::{Latency, TaskId};
use std::error::Error;
use std::fmt;

/// Why a simulation was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The solution failed validation against the graph and architecture;
    /// the violations are reported verbatim.
    InvalidSolution(Vec<rtr_core::Violation>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidSolution(v) => {
                write!(f, "solution fails validation with {} violation(s)", v.len())?;
                for violation in v {
                    write!(f, "; {violation}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SimError {}

/// Execution trace of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTrace {
    /// The task.
    pub task: TaskId,
    /// Absolute start time (from the start of the whole run).
    pub start: Latency,
    /// Absolute finish time.
    pub finish: Latency,
}

/// Execution trace of one temporal partition (one configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionTrace {
    /// Partition index (1-based, after compaction).
    pub partition: u32,
    /// When reconfiguration for this partition began.
    pub reconfig_start: Latency,
    /// When the configuration was loaded and execution began.
    pub exec_start: Latency,
    /// When the last task of the partition finished.
    pub exec_end: Latency,
    /// Task traces, in start order.
    pub tasks: Vec<TaskTrace>,
    /// On-board memory occupancy while this partition runs (data produced
    /// earlier and still needed, plus resident environment data).
    pub memory_in_use: u64,
}

impl PartitionTrace {
    /// Execution time of this partition (the realized `d_p`).
    pub fn execution_time(&self) -> Latency {
        self.exec_end.saturating_sub(self.exec_start)
    }
}

/// Full report of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-partition traces, in execution order.
    pub partitions: Vec<PartitionTrace>,
    /// Total wall-clock latency of the run (the last finish time).
    pub total_latency: Latency,
    /// Total time spent reconfiguring (`η · C_T`).
    pub reconfig_time: Latency,
    /// Peak on-board memory occupancy over the run.
    pub peak_memory: u64,
}

impl SimReport {
    /// Number of configurations executed (the realized `η`).
    pub fn partitions_used(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Sum of per-partition execution times (the realized `Σ_p d_p`).
    pub fn execution_latency(&self) -> Latency {
        self.partitions.iter().map(PartitionTrace::execution_time).sum()
    }

    /// Serializes the per-task trace as CSV:
    /// `partition, task_index, start_ns, finish_ns`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("partition,task,start_ns,finish_ns\n");
        for p in &self.partitions {
            for t in &p.tasks {
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    p.partition,
                    t.task.index(),
                    t.start.as_ns(),
                    t.finish.as_ns()
                ));
            }
        }
        out
    }

    /// Renders an ASCII Gantt chart of the run: one bar per partition,
    /// reconfiguration shown as `#`, execution as `=`, scaled to `width`
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn gantt(&self, width: usize) -> String {
        assert!(width > 0, "gantt width must be positive");
        let total = self.total_latency.as_ns().max(1.0);
        let col = |t: Latency| ((t.as_ns() / total) * width as f64).round() as usize;
        let mut out = String::new();
        for p in &self.partitions {
            let r0 = col(p.reconfig_start);
            let e0 = col(p.exec_start).min(width);
            let e1 = col(p.exec_end).min(width);
            let mut row = String::with_capacity(width);
            row.push_str(&" ".repeat(r0));
            row.push_str(&"#".repeat(e0.saturating_sub(r0).max(1)));
            row.push_str(&"=".repeat(e1.saturating_sub(e0).max(1)));
            out.push_str(&format!("p{:<3}|{row}\n", p.partition));
        }
        out.push_str(&format!("     0 {:>width$}\n", self.total_latency.to_string()));
        out
    }

    /// Renders a human-readable timeline.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        for p in &self.partitions {
            out.push_str(&format!(
                "partition {}: reconfig @{} -> exec [{} .. {}] ({} tasks, mem {})\n",
                p.partition,
                p.reconfig_start,
                p.exec_start,
                p.exec_end,
                p.tasks.len(),
                p.memory_in_use
            ));
        }
        out.push_str(&format!(
            "total {} (exec {}, reconfig {})",
            self.total_latency,
            self.execution_latency(),
            self.reconfig_time
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_time_is_span() {
        let p = PartitionTrace {
            partition: 1,
            reconfig_start: Latency::ZERO,
            exec_start: Latency::from_ns(50.0),
            exec_end: Latency::from_ns(350.0),
            tasks: Vec::new(),
            memory_in_use: 0,
        };
        assert_eq!(p.execution_time(), Latency::from_ns(300.0));
    }

    #[test]
    fn error_display_lists_violations() {
        let e = SimError::InvalidSolution(vec![]);
        assert!(e.to_string().contains("0 violation"));
    }

    #[test]
    fn gantt_renders_every_partition() {
        let mk = |p: u32, r0: f64, e0: f64, e1: f64| PartitionTrace {
            partition: p,
            reconfig_start: Latency::from_ns(r0),
            exec_start: Latency::from_ns(e0),
            exec_end: Latency::from_ns(e1),
            tasks: Vec::new(),
            memory_in_use: 0,
        };
        let report = SimReport {
            partitions: vec![mk(1, 0.0, 100.0, 400.0), mk(2, 400.0, 500.0, 900.0)],
            total_latency: Latency::from_ns(900.0),
            reconfig_time: Latency::from_ns(200.0),
            peak_memory: 0,
        };
        let g = report.gantt(60);
        assert_eq!(g.lines().count(), 3);
        assert!(g.contains("p1"));
        assert!(g.contains('#'));
        assert!(g.contains('='));
    }

    #[test]
    fn csv_lists_every_task_once() {
        use rtr_graph::TaskId;
        let report = SimReport {
            partitions: vec![PartitionTrace {
                partition: 1,
                reconfig_start: Latency::ZERO,
                exec_start: Latency::from_ns(10.0),
                exec_end: Latency::from_ns(40.0),
                tasks: vec![
                    TaskTrace {
                        task: TaskId::from_index(0),
                        start: Latency::from_ns(10.0),
                        finish: Latency::from_ns(25.0),
                    },
                    TaskTrace {
                        task: TaskId::from_index(1),
                        start: Latency::from_ns(25.0),
                        finish: Latency::from_ns(40.0),
                    },
                ],
                memory_in_use: 0,
            }],
            total_latency: Latency::from_ns(40.0),
            reconfig_time: Latency::from_ns(10.0),
            peak_memory: 0,
        };
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("1,0,10,25"));
        assert!(csv.contains("1,1,25,40"));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn gantt_zero_width_panics() {
        let report = SimReport {
            partitions: Vec::new(),
            total_latency: Latency::ZERO,
            reconfig_time: Latency::ZERO,
            peak_memory: 0,
        };
        let _ = report.gantt(0);
    }
}
