//! Post-hoc analysis of partitioning solutions: utilization, parallelism,
//! and memory profiles. Useful for understanding *why* a solution looks the
//! way it does — e.g. whether the area or the dependency structure is the
//! binding constraint (§2's discussion made measurable).

use crate::arch::Architecture;
use crate::solution::Solution;
use rtr_graph::{Latency, TaskGraph};

/// Metrics for one used partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionAnalysis {
    /// Partition index (1-based).
    pub partition: u32,
    /// Tasks mapped here.
    pub task_count: usize,
    /// Area used.
    pub area_used: u64,
    /// Fraction of `R_max` occupied, in `[0, 1]`.
    pub area_utilization: f64,
    /// The partition latency `d_p`.
    pub latency: Latency,
    /// Sum of task latencies in this partition (total work).
    pub work: Latency,
    /// Average spatial parallelism: `work / d_p` (1.0 = a pure chain;
    /// higher = tasks genuinely overlapped).
    pub parallelism: f64,
}

/// Whole-solution analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionAnalysis {
    /// Per-partition metrics, for partitions `1..=η`.
    pub partitions: Vec<PartitionAnalysis>,
    /// Mean area utilization across used partitions.
    pub mean_area_utilization: f64,
    /// Fraction of the total latency spent reconfiguring.
    pub reconfig_fraction: f64,
    /// Memory occupancy at each boundary (boundaries `2..=N`).
    pub boundary_memory: Vec<u64>,
    /// Peak boundary memory as a fraction of `M_max`.
    pub memory_pressure: f64,
}

impl SolutionAnalysis {
    /// Analyzes a solution. Metrics are computed directly from the
    /// placements (nothing is trusted from a solver).
    ///
    /// # Panics
    ///
    /// Panics if the solution indexes tasks or design points outside the
    /// graph (validate first for untrusted input).
    pub fn analyze(graph: &TaskGraph, arch: &Architecture, solution: &Solution) -> Self {
        let eta = solution.partitions_used();
        let capacity = arch.resource_capacity().units();
        let mut partitions = Vec::with_capacity(eta as usize);
        for p in 1..=eta {
            let tasks = solution.tasks_in_partition(p);
            let area_used = solution.partition_area(graph, p).units();
            let latency = solution.partition_latency(graph, p);
            let work: Latency = tasks
                .iter()
                .map(|&t| {
                    graph.task(t).design_points()[solution.placement(t).design_point].latency()
                })
                .sum();
            let parallelism =
                if latency > Latency::ZERO { work.as_ns() / latency.as_ns() } else { 0.0 };
            partitions.push(PartitionAnalysis {
                partition: p,
                task_count: tasks.len(),
                area_used,
                area_utilization: area_used as f64 / capacity as f64,
                latency,
                work,
                parallelism,
            });
        }
        let mean_area_utilization = if partitions.is_empty() {
            0.0
        } else {
            partitions.iter().map(|p| p.area_utilization).sum::<f64>() / partitions.len() as f64
        };
        let total = solution.total_latency(graph, arch);
        let reconfig = arch.reconfig_time() * eta;
        let reconfig_fraction =
            if total > Latency::ZERO { reconfig.as_ns() / total.as_ns() } else { 0.0 };
        let boundary_memory = solution.boundary_memory(graph, arch.env_policy());
        let peak = boundary_memory.iter().copied().max().unwrap_or(0);
        let memory_pressure = if arch.memory_capacity() > 0 {
            peak as f64 / arch.memory_capacity() as f64
        } else {
            0.0
        };
        SolutionAnalysis {
            partitions,
            mean_area_utilization,
            reconfig_fraction,
            boundary_memory,
            memory_pressure,
        }
    }

    /// Renders a compact text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4} {:>6} {:>8} {:>7} {:>12} {:>12} {:>6}\n",
            "part", "tasks", "area", "util%", "d_p", "work", "par"
        ));
        for p in &self.partitions {
            out.push_str(&format!(
                "{:>4} {:>6} {:>8} {:>6.1}% {:>12} {:>12} {:>6.2}\n",
                p.partition,
                p.task_count,
                p.area_used,
                p.area_utilization * 100.0,
                p.latency.to_string(),
                p.work.to_string(),
                p.parallelism
            ));
        }
        out.push_str(&format!(
            "mean utilization {:.1}%, reconfig {:.1}% of total, memory pressure {:.1}%",
            self.mean_area_utilization * 100.0,
            self.reconfig_fraction * 100.0,
            self.memory_pressure * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::Placement;
    use rtr_graph::{Area, DesignPoint, TaskGraphBuilder};

    fn dp(area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new("m", Area::new(area), Latency::from_ns(lat))
    }

    fn setup() -> (TaskGraph, Architecture, Solution) {
        let mut b = TaskGraphBuilder::new();
        // Partition 1: two independent 100 ns tasks (parallelism 2).
        let a = b.add_task("a").design_point(dp(30, 100.0)).finish();
        let c = b.add_task("c").design_point(dp(30, 100.0)).finish();
        // Partition 2: one 200 ns task.
        let d = b.add_task("d").design_point(dp(50, 200.0)).finish();
        b.add_edge(a, d, 4).unwrap();
        b.add_edge(c, d, 4).unwrap();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(100.0));
        let pl = |p| Placement { partition: p, design_point: 0 };
        (g, arch, Solution::new(vec![pl(1), pl(1), pl(2)], 2))
    }

    #[test]
    fn per_partition_metrics() {
        let (g, arch, sol) = setup();
        let a = SolutionAnalysis::analyze(&g, &arch, &sol);
        assert_eq!(a.partitions.len(), 2);
        let p1 = &a.partitions[0];
        assert_eq!(p1.task_count, 2);
        assert_eq!(p1.area_used, 60);
        assert!((p1.area_utilization - 0.6).abs() < 1e-9);
        assert_eq!(p1.latency.as_ns(), 100.0);
        assert_eq!(p1.work.as_ns(), 200.0);
        assert!((p1.parallelism - 2.0).abs() < 1e-9);
        let p2 = &a.partitions[1];
        assert!((p2.parallelism - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aggregates() {
        let (g, arch, sol) = setup();
        let a = SolutionAnalysis::analyze(&g, &arch, &sol);
        // Total = 100 + 200 exec + 200 reconfig = 500; reconfig 40%.
        assert!((a.reconfig_fraction - 0.4).abs() < 1e-9);
        assert!((a.mean_area_utilization - 0.55).abs() < 1e-9);
        // Boundary 2 holds 8 words of 16.
        assert_eq!(a.boundary_memory, vec![8]);
        assert!((a.memory_pressure - 0.5).abs() < 1e-9);
    }

    #[test]
    fn render_contains_all_rows() {
        let (g, arch, sol) = setup();
        let text = SolutionAnalysis::analyze(&g, &arch, &sol).render();
        assert!(text.contains("mean utilization"));
        assert_eq!(text.lines().count(), 4);
    }
}
