//! Temporal partitioning combined with design space exploration for latency
//! minimization of run-time reconfigured designs.
//!
//! This crate implements the system of Kaul & Vemuri (DATE 1999): given a
//! task graph whose tasks each carry a set of synthesized *design points*
//! (area/latency alternatives), and the parameters of a run-time
//! reconfigurable processor (`R_max`, `M_max`, `C_T`), it simultaneously
//!
//! 1. maps every task to a temporal partition,
//! 2. selects a design point for every task, and
//! 3. explores partition counts,
//!
//! minimizing the total latency `Σ_p d_p + η·C_T` subject to area, memory,
//! and dependency constraints.
//!
//! The core engine is a *feasibility* solve over the paper's ILP
//! formulation, wrapped in two nested searches: a binary subdivision on the
//! latency bound ([`TemporalPartitioner::reduce_latency`], the paper's
//! Figure 1) and a partition-bound relaxation loop
//! ([`TemporalPartitioner::explore`], Figure 2, with a deterministic
//! multi-threaded twin in [`TemporalPartitioner::explore_parallel`]).
//! Two interchangeable
//! backends implement the feasibility solve: the faithful ILP
//! ([`model::IlpModel`] over the `rtr-milp` simplex/branch-and-bound) and a
//! specialized structured search ([`structured::StructuredSolver`]) that
//! scales to the paper's 32-task DCT case study.
//!
//! # Examples
//!
//! See [`TemporalPartitioner`] for an end-to-end example, and the
//! `examples/` directory of the repository for the paper's case studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code recovers from every fallible situation with typed errors or
// degraded-but-valid results; `unwrap`/`expect` are confined to tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
mod arch;
pub mod baseline;
mod bounds;
pub mod checkpoint;
mod error;
pub mod model;
pub mod optimal;
pub mod preprocess;
mod search;
mod solution;
pub mod structured;
mod validate;

pub use analysis::{PartitionAnalysis, SolutionAnalysis};
pub use arch::{Architecture, EnvMemoryPolicy};
pub use bounds::{
    max_area_partitions, max_latency, min_area_partitions, min_latency, min_partitions_for_area,
};
pub use checkpoint::{Checkpoint, CheckpointPolicy, CheckpointRecord, CheckpointResult};
pub use error::PartitionError;
pub use rtr_trace::failpoint;
pub use search::{
    default_thread_count, Backend, Degradation, Exploration, ExploreParams, IterationRecord,
    IterationResult, LostSubtree, RefinementStrategy, TemporalPartitioner, WindowStats,
};
pub use solution::{Placement, Solution};
pub use structured::{SearchGoal, SearchLimits, SearchOutcome, SearchStats};
pub use validate::{validate_solution, Violation};
