//! Exhaustive oracle: on tiny instances, enumerate *every* assignment of
//! (partition, design point) per task, validate each directly, and compare
//! the true optimum against both solver backends. This checks the entire
//! constraint semantics end to end, not just solver agreement.

use rtrpart::core::optimal::{solve_optimal, OptimalOutcome};
use rtrpart::graph::{Area, Latency, TaskGraph};
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::{
    validate_solution, Architecture, Backend, EnvMemoryPolicy, ExploreParams, Placement,
    SearchLimits, Solution, TemporalPartitioner,
};

/// Enumerates every assignment and returns the minimum total latency of a
/// valid one (brute force over (n_bound * dps)^tasks combinations).
fn brute_force_optimum(graph: &TaskGraph, arch: &Architecture, n_bound: u32) -> Option<f64> {
    let tasks = graph.task_count();
    let choices: Vec<Vec<Placement>> = graph
        .tasks()
        .iter()
        .map(|t| {
            let mut v = Vec::new();
            for p in 1..=n_bound {
                for m in 0..t.design_points().len() {
                    v.push(Placement { partition: p, design_point: m });
                }
            }
            v
        })
        .collect();
    let mut best: Option<f64> = None;
    let mut idx = vec![0usize; tasks];
    loop {
        let placements: Vec<Placement> =
            idx.iter().enumerate().map(|(t, &i)| choices[t][i]).collect();
        let sol = Solution::new(placements, n_bound);
        if validate_solution(graph, arch, &sol).is_empty() {
            let lat = sol.total_latency(graph, arch).as_ns();
            best = Some(match best {
                Some(b) => b.min(lat),
                None => lat,
            });
        }
        // Odometer.
        let mut carry = true;
        for (t, i) in idx.iter_mut().enumerate() {
            if *i + 1 < choices[t].len() {
                *i += 1;
                carry = false;
                break;
            }
            *i = 0;
        }
        if carry {
            break;
        }
    }
    best
}

#[test]
fn both_backends_match_exhaustive_enumeration() {
    let params = RandomGraphParams {
        tasks: 4,
        max_layer_width: 2,
        edge_probability: 0.7,
        design_points: (1, 2),
        area_range: (30, 80),
        latency_range: (100.0, 500.0),
        data_range: (1, 3),
    };
    let mut checked = 0;
    for seed in 0..14u64 {
        let g = random_layered(seed, &params);
        // Vary the device per seed to hit different binding constraints, and
        // sweep both boundary-memory policies: with only a handful of memory
        // units the Resident/Streamed accounting decides feasibility.
        let cap = 90 + (seed % 4) * 30;
        let mem = 3 + seed % 6;
        let ct = 50.0 * (1.0 + seed as f64);
        for policy in [EnvMemoryPolicy::Resident, EnvMemoryPolicy::Streamed] {
            let arch = Architecture::new(Area::new(cap), mem, Latency::from_ns(ct))
                .with_env_policy(policy);
            let n = 3;
            let brute = brute_force_optimum(&g, &arch, n);
            for backend in [Backend::Structured, Backend::Milp] {
                let got = match solve_optimal(&g, &arch, n, backend, SearchLimits::default()) {
                    Ok(OptimalOutcome::Optimal(sol, lat)) => {
                        assert!(validate_solution(&g, &arch, &sol).is_empty());
                        Some(lat.as_ns())
                    }
                    Ok(OptimalOutcome::Infeasible) => None,
                    Ok(OptimalOutcome::Interrupted(_)) => {
                        panic!("seed {seed}: {backend:?} interrupted on a 4-task instance")
                    }
                    Err(e) => panic!("seed {seed}: {backend:?} failed: {e}"),
                };
                match (brute, got) {
                    (Some(b), Some(g)) => assert!(
                        (b - g).abs() < 1e-6,
                        "seed {seed} {policy:?} {backend:?}: brute {b} vs solver {g}"
                    ),
                    (None, None) => {}
                    other => {
                        panic!("seed {seed} {policy:?} {backend:?}: feasibility disagreement {other:?}")
                    }
                }
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 28);
}

/// The full exploration — sequential and parallel — against the oracle,
/// under both memory policies: the two paths must agree exactly with each
/// other, and their best latency must land within `δ` of the true optimum
/// at the exploration's own partition cap (infeasibility must agree too).
#[test]
fn explorations_land_within_delta_of_the_oracle() {
    let params = RandomGraphParams {
        tasks: 4,
        max_layer_width: 2,
        edge_probability: 0.7,
        design_points: (1, 2),
        area_range: (30, 80),
        latency_range: (100.0, 500.0),
        data_range: (1, 3),
    };
    let delta_ns = 1.0;
    let mut feasible = 0;
    for seed in 0..10u64 {
        let g = random_layered(seed, &params);
        let cap = 90 + (seed % 4) * 30;
        let mem = 3 + seed % 6;
        let ct = 50.0 * (1.0 + seed as f64);
        for policy in [EnvMemoryPolicy::Resident, EnvMemoryPolicy::Streamed] {
            let arch = Architecture::new(Area::new(cap), mem, Latency::from_ns(ct))
                .with_env_policy(policy);
            // Node-limit-only limits: deterministic windows, so sequential
            // and parallel explorations are comparable byte-for-byte.
            let explore_params = ExploreParams {
                delta: Latency::from_ns(delta_ns),
                gamma: 1,
                limits: SearchLimits { node_limit: 50_000_000, time_limit: None },
                time_budget: None,
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&g, &arch, explore_params)
                .expect("every task fits these devices");
            let sequential = part.explore().unwrap();
            let parallel = part.explore_parallel(4).unwrap();
            assert_eq!(parallel.to_csv(), sequential.to_csv(), "seed {seed} {policy:?}");
            assert_eq!(parallel.best, sequential.best, "seed {seed} {policy:?}");
            assert_eq!(parallel.best_latency, sequential.best_latency, "seed {seed} {policy:?}");

            // The exploration covers bounds up to n_cap = max(N_min^u,
            // N_min^l) + γ, and optimum(N) is non-increasing in N, so its
            // best must sit within δ of the oracle optimum at n_cap.
            let n_cap = sequential.n_min_upper.max(sequential.n_min_lower) + 1;
            let brute = brute_force_optimum(&g, &arch, n_cap);
            match (sequential.best_latency, brute) {
                (Some(lat), Some(b)) => {
                    feasible += 1;
                    assert!(
                        lat.as_ns() >= b - 1e-6 && lat.as_ns() <= b + delta_ns + 1e-6,
                        "seed {seed} {policy:?}: explored {} vs oracle {b}",
                        lat.as_ns()
                    );
                }
                (None, None) => {}
                other => panic!("seed {seed} {policy:?}: feasibility disagreement {other:?}"),
            }
        }
    }
    assert!(feasible >= 8, "only {feasible} feasible oracle comparisons");
}

#[test]
fn oracle_with_secondary_resources() {
    // Two tasks with a DSP-vs-fabric tradeoff; tight DSP budget.
    use rtrpart::graph::{DesignPoint, TaskGraphBuilder};
    let mut b = TaskGraphBuilder::new();
    let a = b
        .add_task("a")
        .design_point(
            DesignPoint::new("soft", Area::new(80), Latency::from_ns(600.0))
                .with_secondary(vec![0]),
        )
        .design_point(
            DesignPoint::new("dsp", Area::new(40), Latency::from_ns(250.0)).with_secondary(vec![2]),
        )
        .finish();
    let c = b
        .add_task("c")
        .design_point(
            DesignPoint::new("soft", Area::new(70), Latency::from_ns(500.0))
                .with_secondary(vec![0]),
        )
        .design_point(
            DesignPoint::new("dsp", Area::new(35), Latency::from_ns(200.0)).with_secondary(vec![3]),
        )
        .finish();
    b.add_edge(a, c, 2).unwrap();
    let g = b.build().unwrap();
    for dsp in [0u64, 2, 3, 5] {
        let arch = Architecture::new(Area::new(160), 16, Latency::from_ns(100.0))
            .with_secondary_capacities(vec![dsp]);
        let brute = brute_force_optimum(&g, &arch, 2);
        for backend in [Backend::Structured, Backend::Milp] {
            let got = match solve_optimal(&g, &arch, 2, backend, SearchLimits::default()).unwrap() {
                OptimalOutcome::Optimal(_, lat) => Some(lat.as_ns()),
                OptimalOutcome::Infeasible => None,
                OptimalOutcome::Interrupted(_) => panic!("interrupted on a 2-task instance"),
            };
            assert_eq!(
                brute.map(|b| (b * 1e6).round()),
                got.map(|g| (g * 1e6).round()),
                "dsp = {dsp}, backend {backend:?}"
            );
        }
    }
}
