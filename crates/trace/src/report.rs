//! Run reports: aggregation of a trace into a human-readable summary.

use crate::event::{Event, EventKind};
use crate::histogram::DurationHistogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Aggregated statistics of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Spans closed under this name.
    pub count: u64,
    /// Summed duration.
    pub total: Duration,
    /// Shortest single span.
    pub min: Duration,
    /// Longest single span.
    pub max: Duration,
    /// Log₂ duration histogram.
    pub histogram: DurationHistogram,
}

impl SpanStats {
    fn record(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        self.histogram.record(d);
    }

    /// Mean span duration.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

impl Default for SpanStats {
    fn default() -> Self {
        SpanStats {
            count: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
            histogram: DurationHistogram::new(),
        }
    }
}

/// Aggregated statistics of one gauge name.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GaugeStats {
    /// Samples seen.
    pub count: u64,
    /// Most recent sample.
    pub last: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// An aggregated view of a whole trace: per-phase (span) time breakdown,
/// counter totals, gauge ranges, event counts, and solver-specific rollups
/// (iterations per partition bound `N`, window outcome counts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Span aggregation by name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge aggregation by name.
    pub gauges: BTreeMap<String, GaugeStats>,
    /// Point-event counts by name.
    pub event_counts: BTreeMap<String, u64>,
    /// `search.iteration` events per partition bound `N`.
    pub iterations_per_n: BTreeMap<u64, u64>,
    /// `search.iteration` events per `result` label
    /// (feasible / infeasible / limit).
    pub outcomes: BTreeMap<String, u64>,
    /// Events in the trace.
    pub event_total: u64,
    /// Span of trace timestamps (first to last event).
    pub wall: Duration,
}

impl RunReport {
    /// Aggregates a sequence of events.
    pub fn from_events<'a, I>(events: I) -> Self
    where
        I: IntoIterator<Item = &'a Event>,
    {
        let mut report = RunReport::default();
        let mut first_ts = u64::MAX;
        let mut last_ts = 0u64;
        for event in events {
            report.event_total += 1;
            first_ts = first_ts.min(event.ts_us);
            last_ts = last_ts.max(event.ts_us);
            match event.kind {
                EventKind::Span => {
                    let d = event.duration().unwrap_or(Duration::ZERO);
                    report.spans.entry(event.name.clone()).or_default().record(d);
                }
                EventKind::Counter => {
                    let inc = event.u64_field("value").unwrap_or(0);
                    *report.counters.entry(event.name.clone()).or_insert(0) += inc;
                }
                EventKind::Gauge => {
                    let v = event.f64_field("value").unwrap_or(f64::NAN);
                    let g = report.gauges.entry(event.name.clone()).or_insert(GaugeStats {
                        count: 0,
                        last: v,
                        min: f64::INFINITY,
                        max: f64::NEG_INFINITY,
                    });
                    g.count += 1;
                    g.last = v;
                    g.min = g.min.min(v);
                    g.max = g.max.max(v);
                }
                EventKind::Event => {
                    *report.event_counts.entry(event.name.clone()).or_insert(0) += 1;
                    if event.name == "search.iteration" {
                        if let Some(n) = event.u64_field("n") {
                            *report.iterations_per_n.entry(n).or_insert(0) += 1;
                        }
                        if let Some(result) = event.str_field("result") {
                            *report.outcomes.entry(result.to_owned()).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        if report.event_total > 0 {
            report.wall = Duration::from_micros(last_ts.saturating_sub(first_ts));
        }
        report
    }

    /// Exports an event stream as a Chrome / Perfetto trace-event JSON
    /// document (see [`crate::perfetto::to_chrome_trace`]).
    ///
    /// An associated function rather than a method because the report
    /// aggregates events away; the timeline needs the raw stream — the
    /// same one [`from_events`](Self::from_events) consumes.
    pub fn to_perfetto_json<'a, I>(events: I) -> String
    where
        I: IntoIterator<Item = &'a Event>,
    {
        crate::perfetto::to_chrome_trace(events)
    }

    /// The total of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The aggregated span stats for `name`, if any span closed under it.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// Renders the report as aligned text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report: {} events over {}",
            self.event_total,
            fmt_duration(self.wall)
        );

        if !self.spans.is_empty() {
            let mut rows: Vec<(&String, &SpanStats)> = self.spans.iter().collect();
            rows.sort_by_key(|&(_, s)| std::cmp::Reverse(s.total));
            let grand_total: Duration = rows.iter().map(|(_, s)| s.total).sum();
            out.push_str("\nphase breakdown (by total time):\n");
            let _ = writeln!(
                out,
                "  {:<28} {:>7} {:>12} {:>6} {:>12} {:>12} {:>12}",
                "span", "count", "total", "%", "mean", "min", "max"
            );
            for (name, s) in rows {
                let pct = if grand_total.is_zero() {
                    0.0
                } else {
                    100.0 * s.total.as_secs_f64() / grand_total.as_secs_f64()
                };
                let _ = writeln!(
                    out,
                    "  {:<28} {:>7} {:>12} {:>5.1}% {:>12} {:>12} {:>12}",
                    name,
                    s.count,
                    fmt_duration(s.total),
                    pct,
                    fmt_duration(s.mean()),
                    fmt_duration(if s.count == 0 { Duration::ZERO } else { s.min }),
                    fmt_duration(s.max),
                );
                let hist = s.histogram.render_compact();
                if !hist.is_empty() && s.count > 1 {
                    let _ = writeln!(out, "  {:<28} {}", "", hist);
                }
            }
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, total) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {total:>14}");
            }
        }

        if !self.gauges.is_empty() {
            out.push_str("\ngauges (last / min / max):\n");
            for (name, g) in &self.gauges {
                let _ = writeln!(
                    out,
                    "  {name:<32} {:>10.3} / {:>10.3} / {:>10.3}  ({} samples)",
                    g.last, g.min, g.max, g.count
                );
            }
        }

        if !self.iterations_per_n.is_empty() {
            out.push_str("\nSolveModel() iterations per partition bound N:\n");
            for (n, count) in &self.iterations_per_n {
                let _ = writeln!(out, "  N = {n:<4} {count:>6} iterations");
            }
        }
        if !self.outcomes.is_empty() {
            out.push_str("window outcomes:\n");
            for (result, count) in &self.outcomes {
                let _ = writeln!(out, "  {result:<12} {count:>6}");
            }
        }

        if !self.event_counts.is_empty() {
            out.push_str("\nevents:\n");
            for (name, count) in &self.event_counts {
                let _ = writeln!(out, "  {name:<40} {count:>10}");
            }
        }
        out
    }
}

/// Formats a duration compactly (`873ns`, `14.2µs`, `3.1ms`, `2.45s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}\u{b5}s", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn span_event(name: &str, dur_us: u64, ts: u64) -> Event {
        Event {
            ts_us: ts,
            kind: EventKind::Span,
            name: name.into(),
            fields: vec![("dur_us".into(), Value::U64(dur_us))],
        }
    }

    #[test]
    fn aggregates_all_kinds() {
        let events = vec![
            span_event("milp.solve", 100, 0),
            span_event("milp.solve", 300, 400),
            Event {
                ts_us: 410,
                kind: EventKind::Counter,
                name: "milp.nodes".into(),
                fields: vec![("value".into(), Value::U64(7))],
            },
            Event {
                ts_us: 420,
                kind: EventKind::Counter,
                name: "milp.nodes".into(),
                fields: vec![("value".into(), Value::U64(5))],
            },
            Event {
                ts_us: 500,
                kind: EventKind::Gauge,
                name: "window".into(),
                fields: vec![("value".into(), Value::F64(2.5))],
            },
            Event {
                ts_us: 600,
                kind: EventKind::Event,
                name: "search.iteration".into(),
                fields: vec![
                    ("n".into(), Value::U64(3)),
                    ("result".into(), Value::Str("feasible".into())),
                ],
            },
            Event {
                ts_us: 700,
                kind: EventKind::Event,
                name: "search.iteration".into(),
                fields: vec![
                    ("n".into(), Value::U64(3)),
                    ("result".into(), Value::Str("infeasible".into())),
                ],
            },
        ];
        let r = RunReport::from_events(&events);
        assert_eq!(r.event_total, 7);
        assert_eq!(r.counter("milp.nodes"), 12);
        assert_eq!(r.counter("absent"), 0);
        let s = r.span("milp.solve").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total, Duration::from_micros(400));
        assert_eq!(s.mean(), Duration::from_micros(200));
        assert_eq!(s.min, Duration::from_micros(100));
        assert_eq!(s.max, Duration::from_micros(300));
        assert_eq!(r.iterations_per_n.get(&3), Some(&2));
        assert_eq!(r.outcomes.get("feasible"), Some(&1));
        assert_eq!(r.wall, Duration::from_micros(700));
        let g = r.gauges.get("window").unwrap();
        assert_eq!(g.count, 1);
        assert_eq!(g.last, 2.5);

        let text = r.render();
        assert!(text.contains("phase breakdown"), "{text}");
        assert!(text.contains("milp.solve"), "{text}");
        assert!(text.contains("milp.nodes"), "{text}");
        assert!(text.contains("N = 3"), "{text}");
        assert!(text.contains("feasible"), "{text}");
    }

    #[test]
    fn empty_report_renders() {
        let r = RunReport::from_events(std::iter::empty());
        assert_eq!(r.event_total, 0);
        assert!(r.render().contains("0 events"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.5ms");
        assert_eq!(fmt_duration(Duration::from_millis(2450)), "2.45s");
        assert!(fmt_duration(Duration::from_micros(14)).contains("\u{b5}s"));
    }
}
