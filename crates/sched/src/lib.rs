//! One work-stealing pool for every parallel unit in the solver stack.
//!
//! Both parallel layers of the exploration — phase-2 candidate `N`s and
//! depth-`k` subtree prefix jobs inside a window solve — used to carry
//! their own bespoke scoped-thread pools, which meant a nested run split
//! the `--threads` budget statically and a stalled window idled workers
//! that other candidates could have used. This crate replaces both with a
//! single scheduler:
//!
//! * **One global thread budget.** [`Pool::scoped`] spawns `threads - 1`
//!   scoped workers; the calling thread participates as the last worker,
//!   so exactly `threads` threads compute.
//! * **A shared FIFO injector + per-participant Chase–Lev deques.**
//!   Top-level batches go into the injector, so participants claim their
//!   indices in ascending order — the same claim discipline (and pruning
//!   heuristic: small candidate `N`s first) the bespoke pools had.
//!   Batches submitted from *inside* a job are pushed (in reverse) onto
//!   the submitter's own deque: its LIFO pops come back ascending and
//!   stay local, while idle participants steal the oldest (highest)
//!   indices from the top. Deque overflow spills into the injector.
//! * **Dynamic nesting.** [`Pool::with`] reuses the ambient pool when the
//!   caller is already a participant, so a window solve submitted from
//!   inside a candidate job shares the same budget — and a stalled
//!   window's jobs get stolen by whoever is idle, instead of waiting on a
//!   private sub-pool.
//! * **Determinism by merge discipline, not by schedule.** The pool makes
//!   no ordering promises; callers own a result slot per job index and
//!   merge in ascending index order, which is what keeps results
//!   bit-identical to the sequential path at any thread count.
//! * **Panic isolation with bounded retries.** Each job runs under
//!   `catch_unwind` behind the `sched.job` failpoint; a job is retried up
//!   to [`SCHED_RETRY_LIMIT`] times and then reported lost in the
//!   [`BatchReport`], which is a pure function of the job list under
//!   seeded fault injection.
//!
//! Scheduling telemetry (`sched.*`) is published live to the
//! `rtr_trace::status` board and emitted as trace counters/gauges when the
//! pool winds down. Steals, pops, and parks are scheduling-dependent and
//! therefore gauges; job/batch totals are deterministic at a fixed thread
//! count and therefore counters.

mod deque;

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use deque::{Deque, Steal, Word};
use rtr_trace::status::board;

/// A job that panics on every attempt is abandoned after this many
/// retries (matching the per-layer `PANIC_RETRY_LIMIT` it replaces).
pub const SCHED_RETRY_LIMIT: u32 = 2;

/// Per-participant bounded deque capacity; overflow spills to the
/// injector. Power of two, comfortably above the largest batch a single
/// submitter produces (`MAX_JOBS = 4096` subtree jobs plus nesting slack).
const DEQUE_CAPACITY: usize = 8192;

/// How long an idle participant parks before re-scanning for work. A
/// timed wait (rather than precise wakeup bookkeeping) makes lost-wakeup
/// livelocks impossible, which matters on oversubscribed 1-CPU runners.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

thread_local! {
    /// `(pool, participant ordinal)` while this thread participates in a
    /// pool; null outside. Set by the worker loop and the scoped owner.
    static CURRENT: Cell<(*const Pool, usize)> = const { Cell::new((std::ptr::null(), 0)) };
    /// Nesting depth of `execute` frames on this thread; a batch
    /// submitted at depth > 0 comes from inside another job (nested
    /// parallelism, e.g. a window solve inside a candidate).
    static EXEC_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// What happened to a batch: panic-isolation totals plus the ascending
/// indices of jobs abandoned after [`SCHED_RETRY_LIMIT`] retries. Under
/// seeded `sched.job` fault injection this is a pure function of the job
/// list (index, attempt, and the caller's `fail_key` — never of which
/// thread ran what).
#[derive(Debug, Default, Clone)]
pub struct BatchReport {
    /// Panics caught across all attempts of all jobs.
    pub panics_caught: u64,
    /// Retries performed (a lost job contributes `SCHED_RETRY_LIMIT`).
    pub jobs_retried: u64,
    /// Ascending indices of jobs whose every attempt panicked.
    pub lost: Vec<usize>,
}

impl BatchReport {
    /// True when every job completed on its first attempt.
    pub fn is_clean(&self) -> bool {
        self.panics_caught == 0 && self.jobs_retried == 0 && self.lost.is_empty()
    }
}

/// Snapshot of the pool's scheduling telemetry. `jobs`, `batches`,
/// `nested_batches`, and `lost_jobs` are deterministic at a fixed thread
/// count; the rest depend on runtime scheduling.
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedStats {
    /// Participants in the pool (the `--threads` budget).
    pub threads: usize,
    /// Jobs executed to completion (including lost jobs).
    pub jobs: u64,
    /// Batches submitted.
    pub batches: u64,
    /// Batches submitted from inside another job (nested parallelism).
    pub nested_batches: u64,
    /// Jobs abandoned after retry exhaustion.
    pub lost_jobs: u64,
    /// Jobs a participant popped from its own deque.
    pub local_pops: u64,
    /// Jobs claimed from another participant's deque.
    pub steals: u64,
    /// Jobs drained from the overflow injector.
    pub injector_pops: u64,
    /// Timed parks while idle.
    pub idle_parks: u64,
    /// Maximum observed single-deque depth.
    pub max_queue_depth: u64,
}

#[derive(Default)]
struct Counters {
    jobs: AtomicU64,
    batches: AtomicU64,
    nested_batches: AtomicU64,
    lost_jobs: AtomicU64,
    local_pops: AtomicU64,
    steals: AtomicU64,
    injector_pops: AtomicU64,
    idle_parks: AtomicU64,
    max_queue_depth: AtomicU64,
}

#[derive(Default)]
struct Account {
    panics_caught: u64,
    jobs_retried: u64,
    lost: Vec<usize>,
}

/// Type-erased shared state of one in-flight batch. Lives on the
/// submitter's stack for the duration of [`Pool::run`]; job words in the
/// deques point at it. Soundness is structural: `run` does not return
/// until `remaining` hits zero, and a finishing participant never touches
/// the batch after its decrement (see `execute`).
struct BatchShared {
    /// Invokes the caller's closure for one index.
    call: unsafe fn(*const (), usize),
    /// The caller's closure, erased.
    data: *const (),
    /// Jobs not yet finished (completed or abandoned).
    remaining: AtomicUsize,
    /// Caller-chosen `sched.job` failpoint namespace.
    fail_key: u64,
    account: Mutex<Account>,
}

unsafe fn call_closure<F: Fn(usize) + Sync>(data: *const (), index: usize) {
    // SAFETY: `data` was erased from an `&F` that outlives the batch
    // (it borrows from the `Pool::run` frame, which blocks until every
    // job has finished).
    let f = unsafe { &*data.cast::<F>() };
    f(index);
}

fn pack(batch: *const BatchShared, index: usize) -> Word {
    (batch as u64, index as u64)
}

/// The work-stealing pool. Create one with [`Pool::scoped`] (or
/// [`Pool::with`], which reuses the ambient pool when nested) and submit
/// indexed batches with [`Pool::run`].
pub struct Pool {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<Word>>,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

impl Pool {
    fn new(threads: usize) -> Self {
        Pool {
            deques: (0..threads).map(|_| Deque::new(DEQUE_CAPACITY)).collect(),
            injector: Mutex::new(VecDeque::new()),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        }
    }

    /// Run `f` with a pool of exactly `threads` participants
    /// (`threads - 1` spawned workers plus the calling thread). Workers
    /// are joined — and `sched.*` telemetry emitted — before this
    /// returns. `threads` is clamped to at least 1; a 1-thread pool has
    /// no workers and the owner executes every job itself, in ascending
    /// index order.
    pub fn scoped<R>(threads: usize, f: impl FnOnce(&Pool) -> R) -> R {
        let threads = threads.max(1);
        let pool = Pool::new(threads);
        let out = std::thread::scope(|scope| {
            for ordinal in 0..threads - 1 {
                let pool = &pool;
                scope.spawn(move || pool.worker_loop(ordinal));
            }
            let owner = CurrentGuard::set(&pool, threads - 1);
            let out = f(&pool);
            drop(owner);
            pool.shutdown.store(true, Ordering::Release);
            pool.park_cv.notify_all();
            out
        });
        pool.emit_telemetry();
        out
    }

    /// Reuse the ambient pool when the calling thread is already a
    /// participant (nested parallelism shares the global budget);
    /// otherwise create a scoped pool of `threads`.
    pub fn with<R>(threads: usize, f: impl FnOnce(&Pool) -> R) -> R {
        let (ptr, _) = CURRENT.with(Cell::get);
        if ptr.is_null() {
            Pool::scoped(threads, f)
        } else {
            // SAFETY: `CURRENT` is non-null only between `CurrentGuard::set`
            // and its drop, both of which happen while the pool is alive
            // (worker loops and the scoped owner frame borrow it).
            f(unsafe { &*ptr })
        }
    }

    /// Number of participants (spawned workers + owner).
    pub fn threads(&self) -> usize {
        self.deques.len()
    }

    /// This thread's participant ordinal in `self`, if it is one.
    pub fn participant_ordinal(&self) -> Option<usize> {
        let (ptr, ordinal) = CURRENT.with(Cell::get);
        (std::ptr::eq(ptr, self)).then_some(ordinal)
    }

    /// Telemetry snapshot (live; racy reads are fine).
    pub fn stats(&self) -> SchedStats {
        let c = &self.counters;
        SchedStats {
            threads: self.threads(),
            jobs: c.jobs.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            nested_batches: c.nested_batches.load(Ordering::Relaxed),
            lost_jobs: c.lost_jobs.load(Ordering::Relaxed),
            local_pops: c.local_pops.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            injector_pops: c.injector_pops.load(Ordering::Relaxed),
            idle_parks: c.idle_parks.load(Ordering::Relaxed),
            max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Execute `f(index)` for every `index in 0..count`, spread across
    /// the pool, and block (helping: the caller executes queued jobs,
    /// possibly from other batches, while it waits) until all have
    /// finished. Panicking jobs are caught, retried up to
    /// [`SCHED_RETRY_LIMIT`] times, then abandoned and listed in the
    /// report. `fail_key` namespaces the `sched.job` failpoint so
    /// distinct batch kinds draw distinct fault decisions.
    ///
    /// The pool promises nothing about execution order; determinism is
    /// the caller's obligation, discharged by giving each index its own
    /// result slot and merging in ascending index order.
    pub fn run<F: Fn(usize) + Sync>(&self, count: usize, fail_key: u64, f: F) -> BatchReport {
        if count == 0 {
            return BatchReport::default();
        }
        let batch = BatchShared {
            call: call_closure::<F>,
            data: (&raw const f).cast(),
            remaining: AtomicUsize::new(count),
            fail_key,
            account: Mutex::new(Account::default()),
        };
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        board().add_sched_batches(1);
        let nested = EXEC_DEPTH.with(Cell::get) > 0;
        if nested {
            self.counters.nested_batches.fetch_add(1, Ordering::Relaxed);
            board().add_sched_nested_batches(1);
        }

        match self.participant_ordinal() {
            Some(me) => {
                let depth = if nested {
                    // Reverse push onto the submitter's deque: its LIFO
                    // pops see ascending indices and stay local; thieves
                    // take the oldest (highest) index from the top.
                    for index in (0..count).rev() {
                        let word = pack(&raw const batch, index);
                        if self.deques[me].push(word).is_err() {
                            self.injector
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push_back(word);
                        }
                    }
                    self.deques[me].len_estimate() as u64
                } else {
                    // Top-level batch: the FIFO injector hands indices to
                    // every participant in ascending order, preserving
                    // the bespoke pools' claim discipline.
                    let mut queue =
                        self.injector.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    for index in 0..count {
                        queue.push_back(pack(&raw const batch, index));
                    }
                    queue.len() as u64
                };
                self.counters.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
                board().max_sched_queue_depth(depth);
                self.park_cv.notify_all();
                while batch.remaining.load(Ordering::Acquire) != 0 {
                    match self.find_job(me) {
                        Some(job) => self.execute(job),
                        None => self.park(),
                    }
                }
            }
            None => {
                // Not a participant of this pool (defensive fallback):
                // run the batch inline, sequentially, with identical
                // isolation semantics.
                for index in 0..count {
                    self.execute(pack(&raw const batch, index));
                }
            }
        }

        let mut account =
            batch.account.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Completion order is scheduling-dependent; the report is not.
        account.lost.sort_unstable();
        BatchReport {
            panics_caught: account.panics_caught,
            jobs_retried: account.jobs_retried,
            lost: account.lost,
        }
    }

    fn find_job(&self, me: usize) -> Option<Word> {
        if let Some(word) = self.deques[me].pop() {
            self.counters.local_pops.fetch_add(1, Ordering::Relaxed);
            board().add_sched_local_pops(1);
            return Some(word);
        }
        if let Some(word) =
            self.injector.lock().unwrap_or_else(std::sync::PoisonError::into_inner).pop_front()
        {
            self.counters.injector_pops.fetch_add(1, Ordering::Relaxed);
            return Some(word);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            loop {
                match self.deques[victim].steal() {
                    Steal::Success(word) => {
                        self.counters.steals.fetch_add(1, Ordering::Relaxed);
                        board().add_sched_steals(1);
                        return Some(word);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Run one job to completion (or abandonment) with panic isolation.
    fn execute(&self, word: Word) {
        // SAFETY: job words only exist in the deques/injector while their
        // `BatchShared` frame is alive inside `Pool::run`, which cannot
        // return before this job decrements `remaining`.
        let batch = unsafe { &*(word.0 as *const BatchShared) };
        let index = word.1 as usize;
        let depth = EXEC_DEPTH.with(Cell::get);
        EXEC_DEPTH.with(|d| d.set(depth + 1));
        let mut attempt: u32 = 0;
        loop {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                rtr_trace::failpoint::panic_if(
                    "sched.job",
                    batch.fail_key ^ (((index as u64) << 8) | u64::from(attempt)),
                );
                // SAFETY: see `call_closure`.
                unsafe { (batch.call)(batch.data, index) };
            }));
            match outcome {
                Ok(()) => break,
                Err(_) => {
                    let mut account =
                        batch.account.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    account.panics_caught += 1;
                    if attempt >= SCHED_RETRY_LIMIT {
                        account.lost.push(index);
                        drop(account);
                        self.counters.lost_jobs.fetch_add(1, Ordering::Relaxed);
                        board().add_sched_lost_jobs(1);
                        break;
                    }
                    account.jobs_retried += 1;
                    attempt += 1;
                }
            }
        }
        EXEC_DEPTH.with(|d| d.set(depth));
        self.counters.jobs.fetch_add(1, Ordering::Relaxed);
        board().add_sched_jobs(1);
        // Last touch of `batch`: after this decrement the submitter may
        // return and pop the frame.
        if batch.remaining.fetch_sub(1, Ordering::Release) == 1 {
            self.park_cv.notify_all();
        }
    }

    fn park(&self) {
        self.counters.idle_parks.fetch_add(1, Ordering::Relaxed);
        board().add_sched_idle_parks(1);
        let guard = self.park_lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Timed wait: spurious wakeups and missed notifies both resolve
        // to a rescan, so no wakeup bookkeeping can livelock.
        let _ = self.park_cv.wait_timeout(guard, PARK_TIMEOUT);
    }

    fn worker_loop(&self, ordinal: usize) {
        let _current = CurrentGuard::set(self, ordinal);
        board().worker_started();
        loop {
            if let Some(word) = self.find_job(ordinal) {
                self.execute(word);
            } else if self.shutdown.load(Ordering::Acquire) {
                break;
            } else {
                self.park();
            }
        }
        board().worker_stopped();
    }

    /// Emit the final `sched.*` telemetry for this pool's lifetime.
    /// Deterministic totals (at a fixed thread count) go out as counters;
    /// scheduling-dependent ones as gauges. Trace consumers comparing
    /// streams across thread counts must strip `sched.*` events — the
    /// schedule is exactly what these measure.
    fn emit_telemetry(&self) {
        if !rtr_trace::enabled() {
            return;
        }
        let stats = self.stats();
        rtr_trace::counter("sched.jobs", stats.jobs);
        rtr_trace::counter("sched.batches", stats.batches);
        rtr_trace::counter("sched.nested_batches", stats.nested_batches);
        rtr_trace::counter("sched.lost_jobs", stats.lost_jobs);
        rtr_trace::gauge("sched.threads", stats.threads as f64);
        rtr_trace::gauge("sched.steals", stats.steals as f64);
        rtr_trace::gauge("sched.local_pops", stats.local_pops as f64);
        rtr_trace::gauge("sched.injector_pops", stats.injector_pops as f64);
        rtr_trace::gauge("sched.idle_parks", stats.idle_parks as f64);
        rtr_trace::gauge("sched.max_queue_depth", stats.max_queue_depth as f64);
    }
}

/// RAII for the thread-local participant registration.
struct CurrentGuard {
    previous: (*const Pool, usize),
}

impl CurrentGuard {
    fn set(pool: &Pool, ordinal: usize) -> CurrentGuard {
        let previous = CURRENT.with(|c| c.replace((pool as *const Pool, ordinal)));
        CurrentGuard { previous }
    }
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests;
