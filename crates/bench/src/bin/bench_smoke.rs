//! Deterministic smoke bench: the fixture behind the CI regression gate.
//!
//! Runs two small explorations — the AR filter on a tight device and a
//! relaxed 4×4 DCT — **sequentially, under pure node budgets**, so every
//! counter in the resulting `BENCH_smoke.json` is a deterministic solver
//! fact: identical on every machine running the same code. CI regenerates
//! this file and diffs it against the committed baseline
//! (`crates/bench/baselines/BENCH_smoke.json`) with
//! `rtr-bench-diff --counters-only`; an intentional solver change ships
//! with a refreshed baseline.
//!
//! `RTR_THREADS` is deliberately ignored: the fixture pins one thread so
//! the gate's counters never depend on the runner's CPU count.

use rtr_bench::{per_solve_limits, BenchRun, DctExperiment};
use rtr_core::{Architecture, ExploreParams, TemporalPartitioner};
use rtr_graph::{Area, Latency};
use rtr_workloads::{ar::ar_filter, dct::dct_4x4};

fn main() {
    let mut bench = BenchRun::new("smoke");

    // AR filter on a device holding half the total minimum area: exercises
    // infeasible windows, latency/area pruning, and the dominance memo.
    let ar = ar_filter().expect("static construction");
    let arch =
        Architecture::new(Area::new(ar.total_min_area().units() / 2), 64, Latency::from_us(1.0));
    let params = ExploreParams {
        delta: Latency::from_ns(50.0),
        gamma: 1,
        limits: per_solve_limits(),
        ..Default::default()
    };
    let partitioner = TemporalPartitioner::new(&ar, &arch, params).expect("AR tasks fit");
    let ex = partitioner.explore().expect("exploration runs");
    bench.record_exploration("ar.", &ex);
    println!("ar: {} windows, best {:?}", ex.records.len(), ex.best_latency.map(|l| l.as_ns()));

    // Relaxed DCT: every window decidable well inside the node budget, so
    // the node counts are exhaustive-search facts, not budget artifacts.
    let dct = dct_4x4();
    let exp = DctExperiment {
        table: 0,
        r_max: 1024,
        ct: Latency::from_us(1.0),
        delta_ns: 2_000.0,
        alpha: 0,
        gamma: 0,
    };
    let dct_arch = exp.architecture();
    let partitioner =
        TemporalPartitioner::new(&dct, &dct_arch, exp.params()).expect("DCT tasks fit");
    let ex = partitioner.explore().expect("exploration runs");
    bench.record_exploration("dct.", &ex);
    println!("dct: {} windows, best {:?}", ex.records.len(), ex.best_latency.map(|l| l.as_ns()));

    // AR filter again, through the unified work-stealing pool at a pinned
    // 2 threads on both layers. Window *outcomes* and the pool's job/batch
    // totals are deterministic at a fixed thread count (the job lists are a
    // pure function of the instance), so they gate as counters; steal/pop/
    // park splits depend on OS scheduling and are recorded as metrics only.
    // Node counters are omitted: under parallel incumbent sharing they are
    // schedule-dependent.
    let sched_params = ExploreParams {
        delta: Latency::from_ns(50.0),
        gamma: 1,
        limits: per_solve_limits(),
        solver_threads: 2,
        ..Default::default()
    };
    let partitioner = TemporalPartitioner::new(&ar, &arch, sched_params).expect("AR tasks fit");
    let board = rtr_trace::status::board();
    let before = board.snapshot();
    let ex = partitioner.explore_parallel(2).expect("exploration runs");
    let after = board.snapshot();
    let mut count = |key: &str, v: u64| bench.counter(format!("sched.{key}"), v);
    count("jobs", after.sched_jobs - before.sched_jobs);
    count("batches", after.sched_batches - before.sched_batches);
    count("nested_batches", after.sched_nested_batches - before.sched_nested_batches);
    count("lost_jobs", after.sched_lost_jobs - before.sched_lost_jobs);
    bench.record_windows("sched.", &ex);
    bench.metric("sched.steals", (after.sched_steals - before.sched_steals) as f64);
    bench.metric("sched.local_pops", (after.sched_local_pops - before.sched_local_pops) as f64);
    bench.metric("sched.idle_parks", (after.sched_idle_parks - before.sched_idle_parks) as f64);
    bench.metric("sched.queue_depth_max", after.sched_queue_depth_max as f64);
    println!("sched: {} windows, best {:?}", ex.records.len(), ex.best_latency.map(|l| l.as_ns()));

    bench.write_and_report();
}
