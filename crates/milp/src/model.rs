//! Model-builder API: variables, linear expressions, constraints.

use crate::error::MilpError;
use crate::solution::{Outcome, SolveOptions};
use std::fmt;
use std::ops::Add;

/// Index of a variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw index of the variable.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued.
    Continuous,
    /// Integer-valued.
    Integer,
    /// 0-1 valued (integer with bounds clamped to `[0, 1]`).
    Binary,
}

/// A decision variable: bounds, integrality, and an optional name.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) kind: VarKind,
    pub(crate) name: Option<String>,
}

impl Variable {
    /// A continuous variable with bounds `[lower, upper]` (either may be
    /// infinite).
    pub fn continuous(lower: f64, upper: f64) -> Self {
        Variable { lower, upper, kind: VarKind::Continuous, name: None }
    }

    /// A non-negative continuous variable `[0, ∞)`.
    pub fn non_negative() -> Self {
        Variable::continuous(0.0, f64::INFINITY)
    }

    /// A free continuous variable `(-∞, ∞)`.
    pub fn free() -> Self {
        Variable::continuous(f64::NEG_INFINITY, f64::INFINITY)
    }

    /// An integer variable with bounds `[lower, upper]`.
    pub fn integer(lower: f64, upper: f64) -> Self {
        Variable { lower, upper, kind: VarKind::Integer, name: None }
    }

    /// A 0-1 variable.
    pub fn binary() -> Self {
        Variable { lower: 0.0, upper: 1.0, kind: VarKind::Binary, name: None }
    }

    /// Attaches a diagnostic name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Lower bound.
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Upper bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Integrality class.
    pub fn kind(&self) -> VarKind {
        self.kind
    }

    /// Diagnostic name, if set.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// A linear expression `Σ c_j · x_j`.
///
/// Terms on the same variable are accumulated when the expression is
/// normalized at constraint-build time; callers may freely add duplicates.
///
/// # Examples
///
/// ```
/// use rtr_milp::{Model, Variable, LinExpr};
/// let mut m = Model::new();
/// let x = m.add_var(Variable::binary());
/// let y = m.add_var(Variable::binary());
/// let e = LinExpr::new() + (1.0, x) + (2.5, y) + (0.5, x);
/// assert_eq!(e.terms().len(), 3); // normalized later to x: 1.5, y: 2.5
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// The empty expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Adds `coeff · var` to the expression.
    pub fn push(&mut self, coeff: f64, var: VarId) {
        self.terms.push((var, coeff));
    }

    /// Builder-style [`push`](Self::push).
    pub fn plus(mut self, coeff: f64, var: VarId) -> Self {
        self.push(coeff, var);
        self
    }

    /// The raw (unnormalized) term list.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// `true` if the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Sums duplicate variables and drops exact zeros; returns terms sorted
    /// by variable index.
    pub fn normalized(&self) -> Vec<(VarId, f64)> {
        let mut terms = self.terms.clone();
        terms.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| *c != 0.0);
        out
    }

    /// Evaluates the expression at the given point (indexed by variable).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|(v, c)| c * values[v.0]).sum()
    }
}

impl Add<(f64, VarId)> for LinExpr {
    type Output = LinExpr;
    fn add(self, (coeff, var): (f64, VarId)) -> LinExpr {
        self.plus(coeff, var)
    }
}

impl FromIterator<(f64, VarId)> for LinExpr {
    fn from_iter<I: IntoIterator<Item = (f64, VarId)>>(iter: I) -> Self {
        let mut e = LinExpr::new();
        for (c, v) in iter {
            e.push(c, v);
        }
        e
    }
}

/// Relational operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rel::Le => "<=",
            Rel::Ge => ">=",
            Rel::Eq => "=",
        })
    }
}

/// A linear constraint `expr (≤ | ≥ | =) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub(crate) expr: LinExpr,
    pub(crate) rel: Rel,
    pub(crate) rhs: f64,
    pub(crate) name: Option<String>,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(expr: LinExpr, rel: Rel, rhs: f64) -> Self {
        Constraint { expr, rel, rhs, name: None }
    }

    /// Attaches a diagnostic name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The left-hand-side expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relational operator.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// The right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Diagnostic name, if set.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// `true` if the point `values` satisfies this constraint within `tol`.
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.expr.eval(values);
        match self.rel {
            Rel::Le => lhs <= self.rhs + tol,
            Rel::Ge => lhs >= self.rhs - tol,
            Rel::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sense {
    /// Minimize the objective (the default; feasibility models keep a zero
    /// objective).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// A mixed-integer linear program.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Sense,
}

/// Compile-time proof that models can be built and solved from several
/// threads at once: `Model::solve` takes `&self` and keeps all simplex and
/// branch-and-bound scratch on the call stack, which the parallel
/// exploration in `rtr-core` relies on.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn sync_and_send<T: Sync + Send>() {}
    sync_and_send::<Model>();
    sync_and_send::<crate::SolveOptions>();
    sync_and_send::<crate::Outcome>();
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a variable and returns its id.
    pub fn add_var(&mut self, var: Variable) -> VarId {
        self.vars.push(var);
        VarId(self.vars.len() - 1)
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Sets a minimization objective.
    pub fn minimize(&mut self, expr: LinExpr) {
        self.objective = expr;
        self.sense = Sense::Minimize;
    }

    /// Sets a maximization objective.
    pub fn maximize(&mut self, expr: LinExpr) {
        self.objective = expr;
        self.sense = Sense::Maximize;
    }

    /// Replaces the right-hand side of constraint `index` in place.
    ///
    /// This is the re-solve mutation of the paper's binary-subdivision loop
    /// (the latency window moves while every coefficient stays fixed): a
    /// basis from the previous solve stays structurally valid and can be
    /// passed to [`resolve_lp`](crate::resolve_lp) /
    /// [`solve_mip_warm`](crate::solve_mip_warm).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_rhs(&mut self, index: usize, rhs: f64) {
        self.constraints[index].rhs = rhs;
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The variables.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Iterator over the ids of integer and binary variables.
    pub fn integer_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Integer | VarKind::Binary))
            .map(|(i, _)| VarId(i))
    }

    /// Validates the model: bounds are ordered, binaries are in `[0, 1]`,
    /// every coefficient and right-hand side is finite, and all variable
    /// references are in range.
    ///
    /// # Errors
    ///
    /// Returns the first problem found as a [`MilpError`].
    pub fn validate(&self) -> Result<(), MilpError> {
        for (i, v) in self.vars.iter().enumerate() {
            let (lo, hi) = effective_bounds(v);
            if lo > hi || lo.is_nan() || hi.is_nan() {
                return Err(MilpError::InvalidBounds {
                    var: v.name.clone().unwrap_or_else(|| format!("x{i}")),
                    lower: v.lower,
                    upper: v.upper,
                });
            }
        }
        let check_expr = |expr: &LinExpr, context: &str| -> Result<(), MilpError> {
            for &(v, c) in expr.terms() {
                if v.0 >= self.vars.len() {
                    return Err(MilpError::UnknownVariable {
                        index: v.0,
                        var_count: self.vars.len(),
                    });
                }
                if !c.is_finite() {
                    return Err(MilpError::NonFiniteCoefficient { context: context.to_owned() });
                }
            }
            Ok(())
        };
        check_expr(&self.objective, "objective")?;
        for (i, c) in self.constraints.iter().enumerate() {
            let context = c.name.clone().unwrap_or_else(|| format!("constraint {i}"));
            check_expr(&c.expr, &context)?;
            if !c.rhs.is_finite() {
                return Err(MilpError::NonFiniteCoefficient { context });
            }
        }
        Ok(())
    }

    /// Solves the model with the given options. This is the high-level entry
    /// point; it validates, then runs branch and bound (or pure simplex if
    /// there are no integer variables).
    ///
    /// # Errors
    ///
    /// Returns a [`MilpError`] for invalid models or if the simplex hits its
    /// iteration limit.
    pub fn solve(&self, options: &SolveOptions) -> Result<Outcome, MilpError> {
        self.validate()?;
        crate::branch::solve_mip(self, options)
    }

    /// `true` if the point satisfies every constraint and every variable
    /// bound (within `tol`), and integer variables take integer values.
    pub fn is_feasible_point(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, v) in self.vars.iter().enumerate() {
            let (lo, hi) = effective_bounds(v);
            if values[i] < lo - tol || values[i] > hi + tol {
                return false;
            }
            if matches!(v.kind, VarKind::Integer | VarKind::Binary)
                && (values[i] - values[i].round()).abs() > tol
            {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.is_satisfied(values, tol))
    }
}

/// Bounds with binary variables clamped to `[0, 1]`.
pub(crate) fn effective_bounds(v: &Variable) -> (f64, f64) {
    match v.kind {
        VarKind::Binary => (v.lower.max(0.0), v.upper.min(1.0)),
        _ => (v.lower, v.upper),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_merges_and_drops_zeros() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let y = m.add_var(Variable::binary());
        let e = LinExpr::new() + (1.0, y) + (2.0, x) + (3.0, y) + (-2.0, x);
        let n = e.normalized();
        assert_eq!(n, vec![(y, 4.0)]);
    }

    #[test]
    fn eval_and_satisfaction() {
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        let c = Constraint::new(LinExpr::new() + (2.0, x) + (1.0, y), Rel::Le, 10.0);
        assert!(c.is_satisfied(&[3.0, 4.0], 1e-9));
        assert!(!c.is_satisfied(&[5.0, 1.0], 1e-9));
        let eq = Constraint::new(LinExpr::new() + (1.0, x), Rel::Eq, 2.0);
        assert!(eq.is_satisfied(&[2.0 + 1e-10, 0.0], 1e-9));
        assert!(!eq.is_satisfied(&[2.1, 0.0], 1e-9));
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut m = Model::new();
        m.add_var(Variable::continuous(3.0, 1.0).with_name("bad"));
        assert!(matches!(m.validate(), Err(MilpError::InvalidBounds { .. })));
    }

    #[test]
    fn validate_rejects_foreign_var() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let mut other = Model::new();
        other.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 1.0));
        assert!(matches!(other.validate(), Err(MilpError::UnknownVariable { .. })));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (f64::NAN, x), Rel::Le, 1.0));
        assert!(matches!(m.validate(), Err(MilpError::NonFiniteCoefficient { .. })));
    }

    #[test]
    fn feasible_point_checks_integrality() {
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 5.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 4.0));
        assert!(m.is_feasible_point(&[3.0], 1e-9));
        assert!(!m.is_feasible_point(&[3.5], 1e-9));
        assert!(!m.is_feasible_point(&[4.5], 1e-9));
    }

    #[test]
    fn binary_bounds_are_clamped() {
        let v = Variable::binary();
        assert_eq!(effective_bounds(&v), (0.0, 1.0));
    }

    #[test]
    fn integer_var_iterator() {
        let mut m = Model::new();
        let _a = m.add_var(Variable::non_negative());
        let b = m.add_var(Variable::binary());
        let c = m.add_var(Variable::integer(0.0, 9.0));
        assert_eq!(m.integer_vars().collect::<Vec<_>>(), vec![b, c]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(VarId(3).to_string(), "x3");
        assert_eq!(Rel::Le.to_string(), "<=");
        assert_eq!(Rel::Ge.to_string(), ">=");
        assert_eq!(Rel::Eq.to_string(), "=");
    }
}
