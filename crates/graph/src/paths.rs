//! Root→leaf path enumeration.
//!
//! The paper's latency constraint (7) ranges over "all the paths in the task
//! graph" from root tasks `T_r` to leaf tasks `T_l`. The number of such paths
//! can be exponential in the number of tasks, so enumeration is guarded by
//! [`PathLimits`]; callers that hit the cap learn how many paths were dropped
//! instead of silently truncating.

use crate::graph::{TaskGraph, TaskId};

/// Limits for path enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLimits {
    /// Maximum number of paths to collect before giving up.
    pub max_paths: usize,
}

impl PathLimits {
    /// A generous default: enough for the paper's case studies (the DCT has
    /// 64 paths) and typical clustered task graphs, small enough to keep ILP
    /// model sizes sane.
    pub const DEFAULT: PathLimits = PathLimits { max_paths: 100_000 };
}

impl Default for PathLimits {
    fn default() -> Self {
        PathLimits::DEFAULT
    }
}

/// Result of enumerating root→leaf paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEnumeration {
    paths: Vec<Vec<TaskId>>,
    truncated: bool,
    total_path_count: Option<u128>,
}

impl PathEnumeration {
    /// The collected paths, each a root→leaf task sequence.
    pub fn paths(&self) -> &[Vec<TaskId>] {
        &self.paths
    }

    /// `true` if the enumeration stopped early at [`PathLimits::max_paths`].
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Exact number of root→leaf paths in the graph, computed by dynamic
    /// programming (counting, not enumeration), or `None` if it overflows
    /// `u128`.
    pub fn total_path_count(&self) -> Option<u128> {
        self.total_path_count
    }

    /// Consumes the enumeration and returns the paths.
    pub fn into_paths(self) -> Vec<Vec<TaskId>> {
        self.paths
    }
}

/// Exact root→leaf path count by DP over the topological order; `None` on
/// `u128` overflow.
pub(crate) fn count_paths(graph: &TaskGraph) -> Option<u128> {
    let n = graph.task_count();
    let mut counts = vec![0u128; n];
    let mut total: u128 = 0;
    for &t in graph.topological_order() {
        let c = if graph.predecessors(t).is_empty() {
            1
        } else {
            let mut acc: u128 = 0;
            for &p in graph.predecessors(t) {
                acc = acc.checked_add(counts[p.index()])?;
            }
            acc
        };
        counts[t.index()] = c;
        if graph.successors(t).is_empty() {
            total = total.checked_add(c)?;
        }
    }
    Some(total)
}

impl TaskGraph {
    /// Enumerates root→leaf paths, the paper's set `P_{t_i ⇝ t_j}` over all
    /// roots `t_i ∈ T_r` and leaves `t_j ∈ T_l`.
    ///
    /// Enumeration stops once `limits.max_paths` paths have been collected;
    /// the result records whether truncation happened and the exact total
    /// count.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtr_graph::{TaskGraphBuilder, DesignPoint, Area, Latency, PathLimits};
    /// # fn main() -> Result<(), rtr_graph::GraphError> {
    /// let mut b = TaskGraphBuilder::new();
    /// let dp = DesignPoint::new("m", Area::new(1), Latency::from_ns(1.0));
    /// let a = b.add_task("a").design_point(dp.clone()).finish();
    /// let c = b.add_task("c").design_point(dp.clone()).finish();
    /// b.add_edge(a, c, 1)?;
    /// let g = b.build()?;
    /// let e = g.enumerate_paths(PathLimits::default());
    /// assert_eq!(e.paths().len(), 1);
    /// assert!(!e.is_truncated());
    /// # Ok(())
    /// # }
    /// ```
    pub fn enumerate_paths(&self, limits: PathLimits) -> PathEnumeration {
        let total_path_count = count_paths(self);
        let mut paths = Vec::new();
        let mut truncated = false;
        let mut current: Vec<TaskId> = Vec::new();
        for root in self.roots() {
            if truncated {
                break;
            }
            dfs(self, root, &mut current, &mut paths, limits.max_paths, &mut truncated);
        }
        PathEnumeration { paths, truncated, total_path_count }
    }
}

fn dfs(
    graph: &TaskGraph,
    t: TaskId,
    current: &mut Vec<TaskId>,
    out: &mut Vec<Vec<TaskId>>,
    cap: usize,
    truncated: &mut bool,
) {
    if *truncated {
        return;
    }
    current.push(t);
    if graph.successors(t).is_empty() {
        if out.len() >= cap {
            *truncated = true;
        } else {
            out.push(current.clone());
        }
    } else {
        for &s in graph.successors(t) {
            dfs(graph, s, current, out, cap, truncated);
            if *truncated {
                break;
            }
        }
    }
    current.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TaskGraphBuilder;
    use crate::quantity::{Area, Latency};
    use crate::task::DesignPoint;

    fn dp() -> DesignPoint {
        DesignPoint::new("m", Area::new(1), Latency::from_ns(1.0))
    }

    fn chain(n: usize) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let ids: Vec<_> =
            (0..n).map(|i| b.add_task(format!("t{i}")).design_point(dp()).finish()).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 1).unwrap();
        }
        b.build().unwrap()
    }

    /// k stacked diamonds: path count 2^k.
    fn diamond_stack(k: usize) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let mut prev = b.add_task("s0").design_point(dp()).finish();
        for i in 0..k {
            let l = b.add_task(format!("l{i}")).design_point(dp()).finish();
            let r = b.add_task(format!("r{i}")).design_point(dp()).finish();
            let join = b.add_task(format!("j{i}")).design_point(dp()).finish();
            b.add_edge(prev, l, 1).unwrap();
            b.add_edge(prev, r, 1).unwrap();
            b.add_edge(l, join, 1).unwrap();
            b.add_edge(r, join, 1).unwrap();
            prev = join;
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_has_one_path() {
        let g = chain(5);
        let e = g.enumerate_paths(PathLimits::default());
        assert_eq!(e.paths().len(), 1);
        assert_eq!(e.paths()[0].len(), 5);
        assert_eq!(e.total_path_count(), Some(1));
        assert!(!e.is_truncated());
    }

    #[test]
    fn diamond_stack_path_count_is_exponential() {
        let g = diamond_stack(6);
        let e = g.enumerate_paths(PathLimits::default());
        assert_eq!(e.paths().len(), 64);
        assert_eq!(e.total_path_count(), Some(64));
    }

    #[test]
    fn truncation_respects_cap_and_reports_total() {
        let g = diamond_stack(6);
        let e = g.enumerate_paths(PathLimits { max_paths: 10 });
        assert_eq!(e.paths().len(), 10);
        assert!(e.is_truncated());
        assert_eq!(e.total_path_count(), Some(64));
    }

    #[test]
    fn disconnected_tasks_are_their_own_paths() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("a").design_point(dp()).finish();
        b.add_task("b").design_point(dp()).finish();
        let g = b.build().unwrap();
        let e = g.enumerate_paths(PathLimits::default());
        assert_eq!(e.paths().len(), 2);
        assert!(e.paths().iter().all(|p| p.len() == 1));
    }

    #[test]
    fn every_path_starts_at_root_and_ends_at_leaf() {
        let g = diamond_stack(3);
        let roots = g.roots();
        let leaves = g.leaves();
        for p in g.enumerate_paths(PathLimits::default()).paths() {
            assert!(roots.contains(&p[0]));
            assert!(leaves.contains(p.last().unwrap()));
            for w in p.windows(2) {
                assert!(g.successors(w[0]).contains(&w[1]));
            }
        }
    }
}
