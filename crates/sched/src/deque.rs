//! Bounded Chase–Lev work-stealing deque specialised to two-word job
//! references.
//!
//! Each pool participant owns one deque. The owner pushes and pops at the
//! *bottom* (LIFO, so batch indices pushed in descending order come back
//! ascending); thieves steal from the *top* (FIFO, so the oldest — highest
//! index — job migrates first). Values are `(u64, u64)` pairs: an erased
//! batch pointer and a job index (see `lib.rs`).
//!
//! # Memory-ordering rationale (in lieu of a loom run)
//!
//! The orderings follow Lê, Pop, Cohen & Zappa Nardelli, *Correct and
//! Efficient Work-Stealing for Weak Memory Models* (PPoPP 2013), the
//! C11-proved port of the original Chase–Lev algorithm, restricted to the
//! bounded case (no buffer growth, which removes the only `unsafe`-prone
//! path in the paper's version):
//!
//! * `push` writes the slot with plain (relaxed) stores, then publishes via
//!   a **release** store of `bottom`. A thief that observes the new
//!   `bottom` through its **acquire** load therefore also observes both
//!   slot words — no torn or stale value can be stolen.
//! * `pop` decrements `bottom` (relaxed) and then issues a **SeqCst
//!   fence** before reading `top`. The matching SeqCst CAS in `steal`
//!   guarantees that for the *last* element, owner and thief cannot both
//!   believe they won: either the thief's CAS on `top` is ordered before
//!   the owner's fence (the owner then sees the incremented `top` and
//!   reports empty) or after (the CAS fails). For any element other than
//!   the last, owner and thief touch disjoint indices and no ordering
//!   beyond the release/acquire publication is needed.
//! * `steal` reads `top` (acquire), fences SeqCst, reads `bottom`
//!   (acquire), reads the slot, then claims it with a **SeqCst
//!   compare-exchange** on `top`. The claim can only succeed if `top` was
//!   unchanged since the read, and a slot at index `t` can only be
//!   *overwritten* by a `push` after `top` has advanced past `t` (the
//!   bounded buffer refuses to wrap onto an unconsumed slot: `push` fails
//!   when `bottom - top == capacity`). Hence a successful CAS proves the
//!   two slot words read before it were a coherent pair.
//!
//! The bounded-capacity refusal (`Err(Full)`) is what lets the slot words
//! themselves stay relaxed: an index is never reused while a thief may
//! still claim it. Overflow is handled one level up by the pool's shared
//! injector queue, which is a plain mutex-protected ring and needs no
//! argument.

use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};

/// Two-word value carried by the deque: `(batch pointer, job index)`.
pub(crate) type Word = (u64, u64);

/// Outcome of a steal attempt.
pub(crate) enum Steal {
    /// Nothing visible to steal.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Claimed one value.
    Success(Word),
}

/// Error returned by `push` when the bounded buffer is full.
pub(crate) struct Full;

struct Slot {
    a: AtomicU64,
    b: AtomicU64,
}

pub(crate) struct Deque {
    top: AtomicI64,
    bottom: AtomicI64,
    mask: i64,
    slots: Box<[Slot]>,
}

impl Deque {
    /// `capacity` must be a power of two.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|_| Slot { a: AtomicU64::new(0), b: AtomicU64::new(0) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Deque {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            mask: capacity as i64 - 1,
            slots,
        }
    }

    #[allow(clippy::cast_sign_loss)]
    fn slot(&self, index: i64) -> &Slot {
        &self.slots[(index & self.mask) as usize]
    }

    /// Owner-only: push one value at the bottom. Fails (leaving the deque
    /// untouched) when the bounded buffer is full.
    pub(crate) fn push(&self, value: Word) -> Result<(), Full> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t > self.mask {
            return Err(Full);
        }
        let slot = self.slot(b);
        slot.a.store(value.0, Ordering::Relaxed);
        slot.b.store(value.1, Ordering::Relaxed);
        // Publish the slot words before the new bottom becomes visible.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pop the most recently pushed value.
    pub(crate) fn pop(&self) -> Option<Word> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let slot = self.slot(b);
        let value = (slot.a.load(Ordering::Relaxed), slot.b.load(Ordering::Relaxed));
        if t == b {
            // Last element: race the thieves for it.
            let won =
                self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(value);
        }
        Some(value)
    }

    /// Any thread: try to steal the oldest value.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let slot = self.slot(t);
        let value = (slot.a.load(Ordering::Relaxed), slot.b.load(Ordering::Relaxed));
        if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_err() {
            return Steal::Retry;
        }
        Steal::Success(value)
    }

    /// Racy size estimate; used only for queue-depth gauges.
    pub(crate) fn len_estimate(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        usize::try_from((b - t).max(0)).unwrap_or(0)
    }
}
