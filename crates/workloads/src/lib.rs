//! Workloads for the temporal partitioning system.
//!
//! * [`dct`] — the paper's 4×4 DCT case study: 32 vector-product tasks with
//!   the reconstructed design-point table, plus an `n × n` generalization;
//! * [`ar`] — the paper's AR-filter case study: a 6-task graph with design
//!   points synthesized by `rtr-hls` from the Figure-5 task templates;
//! * [`fft`] — radix-2 FFT stages with exact butterfly wiring, clustered
//!   into tasks;
//! * [`jpeg`] — a JPEG-encoder-style pipeline (the paper's motivating
//!   application around the DCT);
//! * [`matmul`] — blocked matrix multiply with per-output accumulation
//!   chains;
//! * [`random`] — seeded random layered DAGs and simple deterministic
//!   shapes (chains, forks, diamonds) for stress and property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ar;
pub mod dct;
pub mod fft;
pub mod jpeg;
pub mod matmul;
pub mod random;
pub mod rng;
