//! Figure 4 worked example: per-partition latency is the longest mapped
//! path, exactly as the paper illustrates (partition 1 holds paths of 350,
//! 400, and 150 ns → `d_1 = 400`; partition 2 holds a 300 ns path →
//! `d_2 = 300`).

use rtrpart::graph::{Area, DesignPoint, Latency, TaskGraphBuilder};
use rtrpart::{Architecture, Placement, Solution};

fn dp(lat: f64) -> DesignPoint {
    DesignPoint::new("m", Area::new(10), Latency::from_ns(lat))
}

/// Builds the Figure-4-style instance and the mapping shown in the paper.
fn figure4() -> (rtrpart::graph::TaskGraph, Solution) {
    let mut b = TaskGraphBuilder::new();
    // Partition 1: chain a1(200) -> a2(150) = 350; b(400); c(150).
    let a1 = b.add_task("a1").design_point(dp(200.0)).finish();
    let a2 = b.add_task("a2").design_point(dp(150.0)).finish();
    let bb = b.add_task("b").design_point(dp(400.0)).finish();
    let c = b.add_task("c").design_point(dp(150.0)).finish();
    // Partition 2: chain d1(100) -> d2(200) = 300.
    let d1 = b.add_task("d1").design_point(dp(100.0)).finish();
    let d2 = b.add_task("d2").design_point(dp(200.0)).finish();
    b.add_edge(a1, a2, 1).unwrap();
    b.add_edge(a2, d1, 1).unwrap();
    b.add_edge(bb, d1, 1).unwrap();
    b.add_edge(c, d2, 1).unwrap();
    b.add_edge(d1, d2, 1).unwrap();
    let g = b.build().unwrap();
    let pl = |p| Placement { partition: p, design_point: 0 };
    (g, Solution::new(vec![pl(1), pl(1), pl(1), pl(1), pl(2), pl(2)], 2))
}

#[test]
fn partition_latency_is_longest_mapped_path() {
    let (g, sol) = figure4();
    assert_eq!(sol.partition_latency(&g, 1).as_ns(), 400.0);
    assert_eq!(sol.partition_latency(&g, 2).as_ns(), 300.0);
}

#[test]
fn simulator_realizes_the_same_latencies() {
    let (g, sol) = figure4();
    let arch = Architecture::new(Area::new(64), 64, Latency::from_ns(1_000.0));
    let report = rtrpart::sim::simulate(&g, &arch, &sol).unwrap();
    assert_eq!(report.partitions[0].execution_time().as_ns(), 400.0);
    assert_eq!(report.partitions[1].execution_time().as_ns(), 300.0);
    assert_eq!(report.total_latency.as_ns(), 400.0 + 300.0 + 2.0 * 1000.0);
}

#[test]
fn ilp_d_variables_respect_the_same_bound() {
    // An ILP solve over the Figure-4 instance with a window just below
    // 700 ns of execution must be infeasible; at 700 ns it is feasible.
    use rtrpart::core::model::{IlpModel, ModelOptions};
    use rtrpart::milp::SolveOptions;

    let (g, _) = figure4();
    let ct = 10.0;
    let arch = Architecture::new(Area::new(40), 64, Latency::from_ns(ct));
    // Area 40 fits exactly the 4 tasks of partition 1; the d1/d2 chain must
    // go to partition 2 -> execution floor is 400 + 300 = 700.
    for (window_exec, feasible) in [(660.0, false), (700.0, true)] {
        let ilp = IlpModel::build(
            &g,
            &arch,
            2,
            Latency::from_ns(window_exec + 2.0 * ct),
            Latency::ZERO,
            &ModelOptions::default(),
        )
        .unwrap();
        let out = ilp.model().solve(&SolveOptions::feasibility()).unwrap();
        assert_eq!(out.status.has_solution(), feasible, "window {window_exec}");
    }
}
