//! Task-graph model for temporal partitioning of run-time reconfigurable
//! designs.
//!
//! This crate implements the input model of Kaul & Vemuri (DATE 1999):
//! a directed acyclic *task graph* whose vertices are behavioral tasks and
//! whose edges carry the number of data units `B(t_i, t_j)` communicated
//! between tasks. Every task owns a set of *design points* — alternative
//! implementations produced by a high-level-synthesis estimator, each
//! characterized by an area `R(m)` and a latency `D(m)` for its module set
//! `m ∈ M_t`.
//!
//! # Examples
//!
//! ```
//! use rtr_graph::{TaskGraphBuilder, DesignPoint, Area, Latency};
//!
//! # fn main() -> Result<(), rtr_graph::GraphError> {
//! let mut b = TaskGraphBuilder::new();
//! let producer = b.add_task("producer")
//!     .design_point(DesignPoint::new("small", Area::new(100), Latency::from_ns(40.0)))
//!     .design_point(DesignPoint::new("fast", Area::new(220), Latency::from_ns(15.0)))
//!     .env_input(4)
//!     .finish();
//! let consumer = b.add_task("consumer")
//!     .design_point(DesignPoint::new("only", Area::new(150), Latency::from_ns(25.0)))
//!     .env_output(1)
//!     .finish();
//! b.add_edge(producer, consumer, 2)?;
//! let graph = b.build()?;
//! assert_eq!(graph.task_count(), 2);
//! assert_eq!(graph.roots(), vec![producer]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never panic on inputs.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod builder;
mod dot;
mod error;
mod graph;
mod paths;
mod quantity;
mod stats;
mod task;
mod textfmt;

pub use builder::{TaskBuilder, TaskGraphBuilder};
pub use error::GraphError;
pub use graph::{Edge, EdgeId, TaskGraph, TaskId};
pub use paths::{PathEnumeration, PathLimits};
pub use quantity::{Area, Latency};
pub use stats::GraphStats;
pub use task::{DesignPoint, Task};
