//! A small deterministic pseudo-random number generator for workload
//! synthesis and seeded stress tests.
//!
//! The generators in this crate only need reproducible streams, not
//! cryptographic quality, so we use SplitMix64 (Steele, Lea & Flood,
//! OOPSLA 2014) — the same mixer `rand`'s `StdRng` seeds itself with —
//! which keeps the whole workspace free of external dependencies and
//! buildable offline.

/// A deterministic SplitMix64 generator.
///
/// The same seed always produces the same stream, on every platform.
///
/// # Examples
///
/// ```
/// use rtr_workloads::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.range_u64(1, 6) >= 1 && b.range_u64(1, 6) <= 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[lo, hi]` (inclusive on both ends).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Modulo bias is negligible for the small spans used here and
        // determinism matters more than perfect uniformity.
        lo + self.next_u64() % (span + 1)
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)` (degenerate ranges return `lo`).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.range_f64(0.0, 1.0) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(Rng::new(1).next_u64(), Rng::new(2).next_u64());
    }

    #[test]
    fn ranges_are_inclusive_and_bounded() {
        let mut r = Rng::new(99);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.range_u64(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi, "both endpoints reachable");
        assert_eq!(r.range_u64(9, 9), 9);
        assert_eq!(r.range_usize(4, 4), 4);
    }

    #[test]
    fn f64_range_and_chance() {
        let mut r = Rng::new(123);
        for _ in 0..1000 {
            let v = r.range_f64(10.0, 20.0);
            assert!((10.0..20.0).contains(&v));
        }
        assert_eq!(r.range_f64(5.0, 5.0), 5.0);
        let mut hits = 0;
        for _ in 0..1000 {
            if r.chance(0.5) {
                hits += 1;
            }
        }
        assert!((300..700).contains(&hits), "p=0.5 hit {hits}/1000");
        let mut r2 = Rng::new(5);
        assert!(!r2.chance(0.0));
        assert!(r2.chance(1.0));
    }
}
