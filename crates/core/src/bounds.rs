//! Partition-count and latency bounds (paper §3.1, "Preprocessing").

use crate::arch::Architecture;
use rtr_graph::{Latency, TaskGraph};

/// `MinAreaPartitions()`: the lower bound `N_min^l` on the number of
/// partitions — total minimum-area design-point area divided (rounding up)
/// by the device capacity. When the architecture declares secondary
/// resource classes, the analogous per-class bound is taken too and the
/// maximum returned.
///
/// A zero-capacity device yields [`u32::MAX`] for any non-empty demand
/// (nothing fits; [`crate::TemporalPartitioner::new`] rejects such
/// instances with a typed error before any bound is consulted) and `1` for
/// zero demand.
pub fn min_area_partitions(graph: &TaskGraph, arch: &Architecture) -> u32 {
    let mut n = partitions_for(graph.total_min_area().units(), arch.resource_capacity().units());
    for (class, &cap) in arch.secondary_capacities().iter().enumerate() {
        if cap == 0 {
            continue; // a zero-capacity class constrains placement, not count
        }
        let demand: u64 = graph
            .tasks()
            .iter()
            .map(|t| {
                t.design_points().iter().map(|dp| dp.secondary_usage(class)).min().unwrap_or(0)
            })
            .sum();
        n = n.max((demand.div_ceil(cap) as u32).max(1));
    }
    n
}

/// `MaxAreaPartitions()`: `N_min^u`, the minimum number of partitions needed
/// if every task uses its maximum-area design point. The paper notes this is
/// *not* an upper bound on partitions in general (dependency-induced
/// fragmentation can force more), but it anchors the exploration window
/// `N_min^l + α ..= N_min^u + γ`.
///
/// Zero-capacity devices degrade as in [`min_area_partitions`].
pub fn max_area_partitions(graph: &TaskGraph, arch: &Architecture) -> u32 {
    partitions_for(graph.total_max_area().units(), arch.resource_capacity().units())
}

/// The minimum number of partitions `units` area units can occupy on a
/// device with `capacity` units per partition — `⌈units / capacity⌉`, at
/// least 1. The structured search uses this with *committed* areas (actual
/// design-point choices, not per-task minimums) as an admissible η lower
/// bound mid-path.
///
/// Zero-capacity devices degrade as in [`min_area_partitions`].
pub fn min_partitions_for_area(units: u64, capacity: u64) -> u32 {
    partitions_for(units, capacity)
}

/// `⌈units / capacity⌉`, at least 1, with the degenerate `capacity == 0`
/// mapped to "infinitely many partitions" instead of a divide-by-zero
/// panic.
fn partitions_for(units: u64, capacity: u64) -> u32 {
    if capacity == 0 {
        return if units == 0 { 1 } else { u32::MAX };
    }
    (units.div_ceil(capacity).min(u64::from(u32::MAX)) as u32).max(1)
}

/// `MaxLatency(N)`: the worst-case latency for `N` partitions — every task
/// serialized on its maximum-latency design point, plus `N` reconfigurations.
pub fn max_latency(graph: &TaskGraph, arch: &Architecture, n: u32) -> Latency {
    graph.total_max_latency() + arch.reconfig_time() * n
}

/// `MinLatency(N)`: the best-case latency for `N` partitions — the critical
/// path with every task on its minimum-latency design point, plus `N`
/// reconfigurations.
pub fn min_latency(graph: &TaskGraph, arch: &Architecture, n: u32) -> Latency {
    graph.critical_path_min_latency() + arch.reconfig_time() * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::{Area, DesignPoint, TaskGraphBuilder};

    fn two_point_graph() -> TaskGraph {
        // Two tasks in a chain, each with a small-slow and big-fast point.
        let mut b = TaskGraphBuilder::new();
        let mk = |small: u64, big: u64, slow: f64, fast: f64| {
            vec![
                DesignPoint::new("small", Area::new(small), Latency::from_ns(slow)),
                DesignPoint::new("big", Area::new(big), Latency::from_ns(fast)),
            ]
        };
        let a = b.add_task("a").design_points(mk(100, 300, 900.0, 400.0)).finish();
        let c = b.add_task("c").design_points(mk(150, 350, 800.0, 350.0)).finish();
        b.add_edge(a, c, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn partition_bounds() {
        let g = two_point_graph();
        let arch = Architecture::new(Area::new(200), 100, Latency::from_ns(10.0));
        // min areas: 100 + 150 = 250 -> ceil(250/200) = 2.
        assert_eq!(min_area_partitions(&g, &arch), 2);
        // max areas: 300 + 350 = 650 -> ceil(650/200) = 4.
        assert_eq!(max_area_partitions(&g, &arch), 4);
    }

    #[test]
    fn bounds_are_at_least_one() {
        let g = two_point_graph();
        let arch = Architecture::new(Area::new(10_000), 100, Latency::from_ns(10.0));
        assert_eq!(min_area_partitions(&g, &arch), 1);
        assert_eq!(max_area_partitions(&g, &arch), 1);
    }

    #[test]
    fn partitions_for_area() {
        assert_eq!(min_partitions_for_area(0, 200), 1);
        assert_eq!(min_partitions_for_area(200, 200), 1);
        assert_eq!(min_partitions_for_area(201, 200), 2);
        assert_eq!(min_partitions_for_area(650, 200), 4);
    }

    #[test]
    fn latency_bounds() {
        let g = two_point_graph();
        let arch = Architecture::new(Area::new(200), 100, Latency::from_ns(10.0));
        // Max: 900 + 800 serial + 3 * 10.
        assert_eq!(max_latency(&g, &arch, 3).as_ns(), 1730.0);
        // Min: 400 + 350 path + 3 * 10.
        assert_eq!(min_latency(&g, &arch, 3).as_ns(), 780.0);
        // Monotone in N.
        assert!(min_latency(&g, &arch, 4) > min_latency(&g, &arch, 3));
    }

    #[test]
    fn min_latency_below_max_latency() {
        let g = two_point_graph();
        let arch = Architecture::wildforce();
        for n in 1..6 {
            assert!(min_latency(&g, &arch, n) <= max_latency(&g, &arch, n));
        }
    }
}
