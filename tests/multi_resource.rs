//! The paper's multiple-resource-types extension: "Similar equations can be
//! added if multiple resource types exist in the FPGA" (§3.2.3). Design
//! points can consume secondary resource classes (dedicated multipliers,
//! block RAMs, …) with per-configuration capacities; both backends enforce
//! the per-class constraint.

use rtrpart::graph::{Area, DesignPoint, Latency, TaskGraphBuilder};
use rtrpart::{validate_solution, Architecture, Backend, ExploreParams, TemporalPartitioner};

/// Two independent tasks whose *fast* design points each need 3 dedicated
/// multipliers (class 0); plenty of raw area everywhere.
fn dsp_graph() -> rtrpart::graph::TaskGraph {
    let mut b = TaskGraphBuilder::new();
    for i in 0..2 {
        b.add_task(format!("t{i}"))
            .design_point(
                DesignPoint::new("soft", Area::new(120), Latency::from_ns(900.0))
                    .with_secondary(vec![0]),
            )
            .design_point(
                DesignPoint::new("dsp", Area::new(60), Latency::from_ns(300.0))
                    .with_secondary(vec![3]),
            )
            .finish();
    }
    b.build().unwrap()
}

#[test]
fn dsp_capacity_forces_soft_logic_or_extra_partitions() {
    let g = dsp_graph();
    // 4 DSPs per configuration: both tasks cannot use their DSP point in
    // the same partition (3 + 3 > 4); area alone would allow it.
    let arch = Architecture::new(Area::new(1000), 64, Latency::from_us(1.0))
        .with_secondary_capacities(vec![4]);
    for backend in [Backend::Structured, Backend::Milp] {
        let params = ExploreParams { backend, gamma: 2, ..Default::default() };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        let (result, sol) = part.solve_window(1, Latency::from_us(100.0), Latency::ZERO).unwrap();
        let sol =
            sol.unwrap_or_else(|| panic!("{backend:?}: single partition is feasible ({result:?})"));
        assert!(validate_solution(&g, &arch, &sol).is_empty());
        // At most one task can sit on the DSP point.
        let dsp_users = sol.placements().iter().filter(|pl| pl.design_point == 1).count();
        assert!(dsp_users <= 1, "{backend:?}: {dsp_users} DSP users in one partition");
    }
}

#[test]
fn exploration_uses_more_partitions_to_unlock_dsp_points() {
    let g = dsp_graph();
    // Tiny reconfiguration cost: splitting into 2 partitions lets both
    // tasks run on DSPs (300 ns each) instead of one soft (900 ns).
    let arch = Architecture::new(Area::new(1000), 64, Latency::from_ns(10.0))
        .with_secondary_capacities(vec![3]);
    let params = ExploreParams { delta: Latency::from_ns(10.0), gamma: 3, ..Default::default() };
    let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
    let ex = part.explore().unwrap();
    let best = ex.best.expect("feasible");
    assert!(validate_solution(&g, &arch, &best).is_empty());
    // Independent tasks: 2 partitions of one DSP task each = 300 + 300 + 20;
    // vs 1 partition mixing soft+dsp = max(900, 300) + 10 = 910.
    assert_eq!(best.partitions_used(), 2);
    assert_eq!(ex.best_latency.unwrap().as_ns(), 620.0);
}

#[test]
fn unplaceable_dsp_demand_is_rejected_up_front() {
    let mut b = TaskGraphBuilder::new();
    b.add_task("hungry")
        .design_point(
            DesignPoint::new("only", Area::new(10), Latency::from_ns(5.0)).with_secondary(vec![9]),
        )
        .finish();
    let g = b.build().unwrap();
    let arch = Architecture::new(Area::new(1000), 64, Latency::from_ns(10.0))
        .with_secondary_capacities(vec![4]);
    assert!(matches!(
        TemporalPartitioner::new(&g, &arch, Default::default()),
        Err(rtrpart::PartitionError::TaskTooLarge { .. })
    ));
}

#[test]
fn min_partitions_accounts_for_secondary_demand() {
    // 4 tasks, each irreducibly needing 2 DSPs; device has 3 DSPs but vast
    // area: at least ceil(8/3) = 3 partitions.
    let mut b = TaskGraphBuilder::new();
    for i in 0..4 {
        b.add_task(format!("t{i}"))
            .design_point(
                DesignPoint::new("m", Area::new(10), Latency::from_ns(100.0))
                    .with_secondary(vec![2]),
            )
            .finish();
    }
    let g = b.build().unwrap();
    let arch = Architecture::new(Area::new(10_000), 64, Latency::from_ns(10.0))
        .with_secondary_capacities(vec![3]);
    assert_eq!(rtrpart::min_area_partitions(&g, &arch), 3);
    // And the exploration respects it.
    let part = TemporalPartitioner::new(&g, &arch, Default::default()).unwrap();
    let ex = part.explore().unwrap();
    assert!(ex.best.unwrap().partitions_used() >= 3);
}

#[test]
fn backends_agree_with_secondary_constraints() {
    let g = dsp_graph();
    for caps in [vec![3u64], vec![4], vec![6]] {
        let arch = Architecture::new(Area::new(1000), 64, Latency::from_ns(50.0))
            .with_secondary_capacities(caps.clone());
        let mut answers = Vec::new();
        for backend in [Backend::Structured, Backend::Milp] {
            let params = ExploreParams { backend, ..Default::default() };
            let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
            // Window: both on DSP in one partition = 300 + 50 = 350 ns.
            let (result, _) = part.solve_window(1, Latency::from_ns(350.0), Latency::ZERO).unwrap();
            answers.push(matches!(result, rtrpart::IterationResult::Feasible { .. }));
        }
        assert_eq!(answers[0], answers[1], "caps {caps:?}");
        // 6 DSPs admit the both-DSP single partition; fewer do not.
        assert_eq!(answers[0], caps[0] >= 6, "caps {caps:?}");
    }
}
