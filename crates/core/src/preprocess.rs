//! Preprocessing of task graphs before partitioning.
//!
//! The paper's §2: "If the number of design alternatives for a task are too
//! many, then exploring the large design space can become too
//! computationally expensive. In such cases, 'candidate' design points must
//! be obtained by effective design space pruning techniques." This module
//! provides the two safe prunings:
//!
//! * dropping *dominated* design points (never part of any optimal
//!   solution — a dominating point can always be substituted);
//! * dropping points that no configuration of the architecture admits.

use crate::arch::Architecture;
use rtr_graph::{TaskGraph, TaskGraphBuilder};

/// What [`prune_design_points`] removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// Dominated design points dropped.
    pub dominated: usize,
    /// Points too large for the device (area or a secondary class) dropped.
    pub inadmissible: usize,
    /// Design points remaining.
    pub remaining: usize,
}

/// Returns a copy of `graph` with every task's design-point set reduced to
/// its admissible Pareto front. Tasks whose *entire* set is inadmissible
/// keep their original points (so the partitioner can report
/// `TaskTooLarge` with full context instead of a confusing empty set).
///
/// Pruning is solution-preserving: any feasible solution of the original
/// instance maps to one of the pruned instance with equal or better
/// latency, because a dominating point is no larger (in every resource
/// class) and no slower.
pub fn prune_design_points(graph: &TaskGraph, arch: &Architecture) -> (TaskGraph, PruneReport) {
    let mut report = PruneReport::default();
    let mut b = TaskGraphBuilder::new();
    let mut ids = Vec::with_capacity(graph.task_count());
    for task in graph.tasks() {
        let admissible: Vec<_> =
            task.design_points().iter().filter(|dp| arch.admits(dp)).cloned().collect();
        let pool = if admissible.is_empty() {
            task.design_points().to_vec()
        } else {
            report.inadmissible += task.design_points().len() - admissible.len();
            admissible
        };
        let front: Vec<_> = pool
            .iter()
            .filter(|dp| !pool.iter().any(|other| dp.is_dominated_by(other)))
            .cloned()
            .collect();
        report.dominated += pool.len() - front.len();
        report.remaining += front.len();
        ids.push(
            b.add_task(task.name())
                .design_points(front)
                .env_input(task.env_input())
                .env_output(task.env_output())
                .finish(),
        );
    }
    for e in graph.edges() {
        // Copying edges of an already-valid graph cannot introduce
        // duplicates or cycles.
        let copied = b.add_edge(ids[e.src().index()], ids[e.dst().index()], e.data());
        debug_assert!(copied.is_ok(), "copying a valid graph");
    }
    match b.build() {
        Ok(pruned) => (pruned, report),
        // Pruning preserves validity; if a rebuild ever fails, fall back
        // to the untouched input instead of panicking.
        Err(_) => (graph.clone(), PruneReport::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::{Area, DesignPoint, Latency};

    fn graph_with_redundancy() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b
            .add_task("a")
            .design_point(DesignPoint::new("good", Area::new(50), Latency::from_ns(100.0)))
            .design_point(DesignPoint::new("dominated", Area::new(60), Latency::from_ns(120.0)))
            .design_point(DesignPoint::new("huge", Area::new(900), Latency::from_ns(10.0)))
            .finish();
        let c = b
            .add_task("c")
            .design_point(DesignPoint::new("only", Area::new(40), Latency::from_ns(80.0)))
            .finish();
        b.add_edge(a, c, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn drops_dominated_and_inadmissible_points() {
        let g = graph_with_redundancy();
        let arch = Architecture::new(Area::new(200), 16, Latency::from_ns(10.0));
        let (pruned, report) = prune_design_points(&g, &arch);
        assert_eq!(report.inadmissible, 1); // "huge"
        assert_eq!(report.dominated, 1); // "dominated"
        assert_eq!(report.remaining, 2);
        let a = pruned.task(pruned.task_by_name("a").unwrap());
        assert_eq!(a.design_points().len(), 1);
        assert_eq!(a.design_points()[0].name(), "good");
        // Structure preserved.
        assert_eq!(pruned.edge_count(), 1);
        assert_eq!(pruned.task(pruned.task_by_name("a").unwrap()).env_input(), 0);
    }

    #[test]
    fn keeps_incomparable_points() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("t")
            .design_point(DesignPoint::new("small", Area::new(50), Latency::from_ns(500.0)))
            .design_point(DesignPoint::new("fast", Area::new(150), Latency::from_ns(100.0)))
            .finish();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(200), 16, Latency::from_ns(10.0));
        let (pruned, report) = prune_design_points(&g, &arch);
        assert_eq!(report.dominated, 0);
        assert_eq!(pruned.tasks()[0].design_points().len(), 2);
    }

    #[test]
    fn fully_inadmissible_task_keeps_points_for_diagnostics() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("big")
            .design_point(DesignPoint::new("m", Area::new(900), Latency::from_ns(10.0)))
            .finish();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(10.0));
        let (pruned, report) = prune_design_points(&g, &arch);
        assert_eq!(pruned.tasks()[0].design_points().len(), 1);
        assert_eq!(report.inadmissible, 0);
        // And the partitioner still reports the diagnostic error.
        assert!(crate::TemporalPartitioner::new(&pruned, &arch, Default::default()).is_err());
    }

    #[test]
    fn pruning_preserves_the_optimum() {
        use crate::optimal::{solve_optimal, OptimalOutcome};
        let g = graph_with_redundancy();
        let arch = Architecture::new(Area::new(200), 16, Latency::from_ns(10.0));
        let (pruned, _) = prune_design_points(&g, &arch);
        let lat = |graph: &TaskGraph| match solve_optimal(
            graph,
            &arch,
            2,
            crate::Backend::Structured,
            Default::default(),
        )
        .unwrap()
        {
            OptimalOutcome::Optimal(_, l) => l.as_ns(),
            other => panic!("expected optimal, got {other:?}"),
        };
        assert_eq!(lat(&g), lat(&pruned));
    }

    #[test]
    fn secondary_classes_participate_in_dominance() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("t")
            .design_point(
                DesignPoint::new("lean", Area::new(50), Latency::from_ns(100.0))
                    .with_secondary(vec![1]),
            )
            .design_point(
                // Same area/latency but more DSPs: dominated.
                DesignPoint::new("greedy", Area::new(50), Latency::from_ns(100.0))
                    .with_secondary(vec![3]),
            )
            .finish();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(10.0))
            .with_secondary_capacities(vec![4]);
        let (pruned, report) = prune_design_points(&g, &arch);
        assert_eq!(report.dominated, 1);
        assert_eq!(pruned.tasks()[0].design_points()[0].name(), "lean");
    }
}
