//! Flight-recorder contracts, exercised end-to-end through the real
//! `rtrpart` binary plus in-process panic-flush checks:
//!
//! * `--trace --trace-export perfetto` emits a file that parses as
//!   Chrome trace-event JSON with per-track monotone timestamps;
//! * the standalone `trace-export` subcommand round-trips a JSONL trace;
//! * `--status-file` heartbeats update while a solve runs and the lines
//!   written so far survive SIGKILL of the whole solver process;
//! * `--status-every 0` and an unwritable `--status-file` are typed
//!   errors, not panics;
//! * a JSONL trace sink flushes buffered events when a panic unwinds
//!   through it (the fault-injection satellite).

use rtrpart::trace::JsonValue;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_rtrpart");

/// Per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("rtr_flight_{}_{label}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn write_dct(dir: &Scratch) -> PathBuf {
    let graph = dir.path("dct.tg");
    fs::write(&graph, rtrpart::workloads::dct::dct_4x4().to_text()).expect("write graph");
    graph
}

/// Deterministic base arguments (node budgets, one thread).
fn run_args(graph: &Path, extra: &[&str]) -> Vec<String> {
    let mut args: Vec<String> = [
        "partition",
        "--graph",
        graph.to_str().unwrap(),
        "--rmax",
        "576",
        "--mmax",
        "512",
        "--ct",
        "1us",
        "--gamma",
        "2",
        "--solve-nodes",
        "150000",
        "--threads",
        "1",
        "--quiet",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    args.extend(extra.iter().map(|s| (*s).to_owned()));
    args
}

/// Asserts `text` parses as a Chrome trace-event document and returns
/// (event count, metadata count) after checking per-track monotonicity.
fn check_chrome_trace(text: &str) -> (usize, usize) {
    let root = rtrpart::trace::parse_value(text).expect("trace-export output is valid JSON");
    let Some(JsonValue::Arr(events)) = root.get("traceEvents") else {
        panic!("no traceEvents array in export");
    };
    assert!(!events.is_empty(), "empty traceEvents");
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    let mut timed = 0usize;
    let mut meta = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("event has ph");
        let pid = ev.get("pid").and_then(|v| v.as_f64()).expect("event has pid") as u64;
        let tid = ev.get("tid").and_then(|v| v.as_f64()).expect("event has tid") as u64;
        match ph {
            "M" => {
                meta += 1;
                continue;
            }
            "X" | "C" | "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("event has ts");
        let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        assert!(
            ts >= *prev,
            "timestamps regress on track (pid={pid}, tid={tid}): {ts} after {prev}"
        );
        *prev = ts;
        timed += 1;
    }
    (timed, meta)
}

#[test]
fn trace_export_flag_emits_valid_chrome_trace() {
    let dir = Scratch::new("export_flag");
    let graph = write_dct(&dir);
    let trace = dir.path("run.jsonl");
    let out = Command::new(BIN)
        .args(run_args(&graph, &["--trace", trace.to_str().unwrap(), "--trace-export", "perfetto"]))
        .output()
        .expect("spawn rtrpart");
    assert!(out.status.success(), "rtrpart failed: {}", String::from_utf8_lossy(&out.stderr));
    let exported = dir.path("run.jsonl.perfetto.json");
    let text = fs::read_to_string(&exported).expect("perfetto export exists");
    let (timed, meta) = check_chrome_trace(&text);
    assert!(timed > 10, "suspiciously small export: {timed} events");
    assert!(meta > 0, "no thread_name metadata emitted");
    // The exporter reconstructs named tracks for the main explore thread.
    assert!(text.contains("\"explore\""), "main track name missing");
}

#[test]
fn trace_export_subcommand_round_trips() {
    let dir = Scratch::new("export_cmd");
    let graph = write_dct(&dir);
    let trace = dir.path("run.jsonl");
    let exported = dir.path("timeline.json");
    let out = Command::new(BIN)
        .args(run_args(&graph, &["--trace", trace.to_str().unwrap()]))
        .output()
        .expect("spawn rtrpart");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = Command::new(BIN)
        .args(["trace-export", trace.to_str().unwrap(), exported.to_str().unwrap()])
        .output()
        .expect("spawn rtrpart trace-export");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    check_chrome_trace(&fs::read_to_string(&exported).expect("export exists"));

    // Without --trace, --trace-export must be rejected up front.
    let out = Command::new(BIN)
        .args(run_args(&graph, &["--trace-export", "perfetto"]))
        .output()
        .expect("spawn rtrpart");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));
}

/// Parses one heartbeat line, returning (ts_us, nodes, windows_done).
fn parse_heartbeat(line: &str) -> (u64, u64, u64) {
    let v = rtrpart::trace::parse_value(line).expect("heartbeat line is valid JSON");
    let get =
        |k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or_else(|| panic!("no {k}")) as u64;
    (get("ts_us"), get("nodes"), get("windows_done"))
}

#[test]
fn status_heartbeats_update_and_survive_sigkill() {
    let dir = Scratch::new("heartbeat");
    let graph = write_dct(&dir);
    let status = dir.path("status.jsonl");
    // A node budget large enough that the solve runs for many heartbeat
    // intervals on any machine (debug builds sustain ~1M nodes/s).
    let mut child = Command::new(BIN)
        .args(run_args(
            &graph,
            &[
                "--solve-nodes",
                "40000000",
                "--status-file",
                status.to_str().unwrap(),
                "--status-every",
                "25",
            ],
        ))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");

    // Wait until the heartbeat shows live progress: at least three lines
    // with strictly increasing node counts.
    let deadline = Instant::now() + Duration::from_secs(120);
    let lines = loop {
        let text = fs::read_to_string(&status).unwrap_or_default();
        let complete: Vec<&str> =
            text.split_inclusive('\n').filter(|l| l.ends_with('\n')).collect();
        if complete.len() >= 3 {
            let nodes: Vec<u64> = complete.iter().map(|l| parse_heartbeat(l).1).collect();
            if nodes[nodes.len() - 1] > nodes[0] {
                break complete.len();
            }
        }
        if child.try_wait().expect("poll victim").is_some() {
            panic!("victim finished before heartbeats showed progress: {text}");
        }
        assert!(Instant::now() < deadline, "no heartbeat progress within deadline");
        std::thread::sleep(Duration::from_millis(10));
    };

    // SIGKILL the whole process: no Drop, no final snapshot — the lines
    // already on disk must stand on their own.
    child.kill().expect("kill victim");
    let _ = child.wait();
    let text = fs::read_to_string(&status).expect("status file survives the kill");
    let complete: Vec<&str> = text.split_inclusive('\n').filter(|l| l.ends_with('\n')).collect();
    assert!(complete.len() >= lines, "heartbeat lines disappeared after the kill");
    let mut prev = (0, 0, 0);
    for line in &complete {
        let cur = parse_heartbeat(line);
        assert!(cur.0 >= prev.0, "heartbeat timestamps regress: {line}");
        assert!(cur.1 >= prev.1, "node counter regressed: {line}");
        prev = cur;
    }
    assert!(prev.1 > 0, "final heartbeat shows no explored nodes");
}

#[test]
fn status_flag_misuse_is_a_typed_error() {
    let dir = Scratch::new("status_errors");
    let graph = write_dct(&dir);

    // Zero interval: rejected up front with the typed StatusError message.
    let status = dir.path("status.jsonl");
    let out = Command::new(BIN)
        .args(run_args(&graph, &["--status-file", status.to_str().unwrap(), "--status-every", "0"]))
        .output()
        .expect("spawn rtrpart");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("interval"), "unexpected error: {stderr}");
    assert!(!stderr.contains("panicked"), "zero interval panicked: {stderr}");

    // Missing parent directory: a create error naming the path.
    let bad = dir.path("no_such_dir").join("status.jsonl");
    let out = Command::new(BIN)
        .args(run_args(&graph, &["--status-file", bad.to_str().unwrap()]))
        .output()
        .expect("spawn rtrpart");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("status"), "unexpected error: {stderr}");
    assert!(!stderr.contains("panicked"), "missing dir panicked: {stderr}");

    // --status-every without --status-file.
    let out = Command::new(BIN)
        .args(run_args(&graph, &["--status-every", "100"]))
        .output()
        .expect("spawn rtrpart");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--status-file"));
}

#[test]
fn jsonl_sink_flushes_on_panic() {
    // The panic-hook flush contract: when a panic starts unwinding with a
    // JSONL sink installed, everything emitted so far must already be on
    // disk by the time the hook returns — even though the sink is neither
    // dropped nor uninstalled yet. Driven through the deterministic
    // fault-injection machinery (rate 1.0 at a site only this test uses).
    let dir = Scratch::new("panic_flush");
    let path = dir.path("panicked.jsonl");
    let config = rtrpart::trace::failpoint::FailpointConfig::parse("7:1.0:flightrec.boom")
        .expect("failpoint spec parses");
    rtrpart::trace::failpoint::install(config);
    let sink = rtrpart::trace::JsonlSink::create(&path).expect("create sink");
    rtrpart::trace::install(std::sync::Arc::new(sink));
    rtrpart::trace::counter("flightrec.before_panic", 42);
    let caught = std::panic::catch_unwind(|| {
        rtrpart::trace::failpoint::panic_if("flightrec.boom", 1);
    });
    rtrpart::trace::failpoint::clear();
    assert!(caught.is_err(), "failpoint at rate 1.0 did not fire");

    // Read the file BEFORE uninstalling: only the panic hook can have
    // flushed it.
    let text = fs::read_to_string(&path).expect("trace file exists");
    rtrpart::trace::uninstall();
    assert!(
        text.contains("flightrec.before_panic"),
        "events emitted before the panic were not flushed by the panic hook: {text:?}"
    );
    let events = rtrpart::trace::parse_jsonl(&text).expect("flushed JSONL parses");
    assert!(events.iter().any(|e| e.name == "flightrec.before_panic"));
}
