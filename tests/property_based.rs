//! Property-based tests over the whole stack, driven by seeded random task
//! graphs.

use proptest::prelude::*;
use rtrpart::graph::{Area, Latency};
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::{
    validate_solution, Architecture, EnvMemoryPolicy, ExploreParams, SearchLimits,
    TemporalPartitioner,
};
use std::time::Duration;

fn arb_params() -> impl Strategy<Value = (u64, RandomGraphParams, u64, u64, f64)> {
    (
        any::<u64>(),                 // seed
        2usize..10,                   // tasks
        1usize..4,                    // max layer width
        60u64..240,                   // device capacity
        8u64..64,                     // memory
        10.0f64..100_000.0,           // reconfig ns
    )
        .prop_map(|(seed, tasks, width, cap, mem, ct)| {
            (
                seed,
                RandomGraphParams {
                    tasks,
                    max_layer_width: width,
                    design_points: (1, 3),
                    area_range: (20, 60),
                    latency_range: (50.0, 600.0),
                    data_range: (1, 3),
                    ..Default::default()
                },
                cap,
                mem,
                ct,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Every solution the exploration produces satisfies every constraint,
    /// and the simulator realizes exactly the analytic latency.
    #[test]
    fn explored_solutions_are_always_valid((seed, gp, cap, mem, ct) in arb_params()) {
        let g = random_layered(seed, &gp);
        let arch = Architecture::new(Area::new(cap), mem, Latency::from_ns(ct));
        let params = ExploreParams {
            delta: Latency::from_ns(100.0),
            gamma: 1,
            limits: SearchLimits { node_limit: 300_000, time_limit: Some(Duration::from_millis(300)) },
            time_budget: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else {
            // Some task cannot fit the device at all: a legal outcome.
            return Ok(());
        };
        let ex = part.explore().unwrap();
        if let Some(best) = &ex.best {
            prop_assert!(validate_solution(&g, &arch, best).is_empty());
            let lat = best.total_latency(&g, &arch);
            prop_assert_eq!(ex.best_latency.unwrap(), lat);
            let report = rtrpart::sim::simulate(&g, &arch, best).unwrap();
            prop_assert!(
                (report.total_latency.as_ns() - lat.as_ns()).abs() < 1e-6,
                "simulator disagrees: {} vs {}",
                report.total_latency,
                lat
            );
            // Latency decomposition is consistent.
            let eta = best.partitions_used();
            prop_assert!(eta >= 1 && eta <= best.n_bound());
            let decomposed =
                best.execution_latency(&g).as_ns() + (arch.reconfig_time() * eta).as_ns();
            prop_assert!(
                (lat.as_ns() - decomposed).abs() < 1e-6,
                "decomposition drifted: {} vs {}",
                lat.as_ns(),
                decomposed
            );
        }
    }

    /// Feasible iterations never report a latency above their window, and
    /// windows only shrink within one partition bound.
    #[test]
    fn iteration_records_are_well_formed((seed, gp, cap, mem, ct) in arb_params()) {
        let g = random_layered(seed, &gp);
        let arch = Architecture::new(Area::new(cap), mem, Latency::from_ns(ct));
        let params = ExploreParams {
            delta: Latency::from_ns(50.0),
            limits: SearchLimits { node_limit: 300_000, time_limit: Some(Duration::from_millis(300)) },
            time_budget: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else { return Ok(()); };
        let ex = part.explore().unwrap();
        for r in &ex.records {
            prop_assert!(r.d_min <= r.d_max);
            if let rtrpart::IterationResult::Feasible { latency, .. } = r.result {
                prop_assert!(latency.as_ns() <= r.d_max.as_ns() + 1e-6);
            }
        }
        let mut last_n = 0;
        for r in &ex.records {
            prop_assert!(r.n >= last_n, "partition bounds never shrink");
            last_n = r.n;
        }
    }

    /// The greedy baseline, when it succeeds, always produces valid
    /// solutions and never beats the exploration by more than δ.
    #[test]
    fn greedy_baseline_is_valid_and_no_better((seed, gp, cap, mem, ct) in arb_params()) {
        use rtrpart::core::baseline::{greedy_partition, DesignPointPicker};
        let g = random_layered(seed, &gp);
        let arch = Architecture::new(Area::new(cap), mem, Latency::from_ns(ct));
        let n_cap = g.task_count() as u32;
        for picker in [DesignPointPicker::MinArea, DesignPointPicker::MaxArea, DesignPointPicker::MinLatency] {
            if let Some(sol) = greedy_partition(&g, &arch, picker, n_cap) {
                prop_assert!(validate_solution(&g, &arch, &sol).is_empty());
            }
        }
    }

    /// Boundary memory is monotone under the Resident policy relative to
    /// Streamed: the resident accounting can only add occupancy.
    #[test]
    fn resident_memory_dominates_streamed((seed, gp, cap, mem, ct) in arb_params()) {
        use rtrpart::core::baseline::{greedy_partition, DesignPointPicker};
        let g = random_layered(seed, &gp);
        let arch = Architecture::new(Area::new(cap), mem.max(1024), Latency::from_ns(ct));
        if let Some(sol) = greedy_partition(&g, &arch, DesignPointPicker::MinArea, g.task_count() as u32) {
            let resident = sol.boundary_memory(&g, EnvMemoryPolicy::Resident);
            let streamed = sol.boundary_memory(&g, EnvMemoryPolicy::Streamed);
            for (r, s) in resident.iter().zip(&streamed) {
                prop_assert!(r >= s);
            }
        }
    }

    /// The paper's bounds really bound: MinLatency(N) ≤ any achieved
    /// latency ≤ MaxLatency(N) for solutions under partition bound N.
    #[test]
    fn latency_bounds_bracket_solutions((seed, gp, cap, mem, ct) in arb_params()) {
        let g = random_layered(seed, &gp);
        let arch = Architecture::new(Area::new(cap), mem, Latency::from_ns(ct));
        let params = ExploreParams {
            limits: SearchLimits { node_limit: 300_000, time_limit: Some(Duration::from_millis(300)) },
            time_budget: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else { return Ok(()); };
        let ex = part.explore().unwrap();
        if let Some(best) = &ex.best {
            let n = best.partitions_used();
            let lo = rtrpart::min_latency(&g, &arch, n);
            let hi = rtrpart::max_latency(&g, &arch, n);
            let lat = best.total_latency(&g, &arch);
            prop_assert!(lat >= lo, "latency {lat} below MinLatency {lo}");
            prop_assert!(lat <= hi, "latency {lat} above MaxLatency {hi}");
        }
    }
}
