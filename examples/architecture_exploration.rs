//! Architecture exploration: sweep the reconfiguration time `C_T` and watch
//! the optimal partition count move — the paper's §2 "Area-Latency
//! Tradeoff" discussion made concrete.
//!
//! With a huge `C_T` (Wildforce-class board) the minimum-partition solution
//! wins; as `C_T` shrinks toward the time-multiplexed-FPGA regime, spending
//! extra reconfigurations on larger (faster) design points starts to pay.
//!
//! Run with `cargo run --release --example architecture_exploration`.

use rtrpart::graph::{Area, Latency};
use rtrpart::workloads::random::chain;
use rtrpart::{Architecture, ExploreParams, SearchLimits, TemporalPartitioner};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6-stage chain whose stages each get a small-slow and big-fast
    // implementation, so the partitioner has a real design space.
    let base = chain(6, 1, 1.0);
    let mut b = rtrpart::graph::TaskGraphBuilder::new();
    let mut prev = None;
    for t in base.tasks() {
        let id = b
            .add_task(t.name())
            .design_point(rtrpart::graph::DesignPoint::new(
                "small",
                Area::new(60),
                Latency::from_ns(800.0),
            ))
            .design_point(rtrpart::graph::DesignPoint::new(
                "fast",
                Area::new(150),
                Latency::from_ns(300.0),
            ))
            .finish();
        if let Some(p) = prev {
            b.add_edge(p, id, 4)?;
        }
        prev = Some(id);
    }
    let graph = b.build()?;

    println!("{:>12} {:>6} {:>14} {:>14}", "C_T", "eta", "exec latency", "total latency");
    for ct_ns in [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0] {
        let arch = Architecture::new(Area::new(320), 64, Latency::from_ns(ct_ns));
        let params = ExploreParams {
            delta: Latency::from_ns(20.0),
            gamma: 3,
            limits: SearchLimits {
                node_limit: 5_000_000,
                time_limit: Some(Duration::from_millis(500)),
            },
            ..Default::default()
        };
        let partitioner = TemporalPartitioner::new(&graph, &arch, params)?;
        let exploration = partitioner.explore()?;
        let best = exploration.best.expect("feasible chain");
        println!(
            "{:>12} {:>6} {:>14} {:>14}",
            Latency::from_ns(ct_ns).to_string(),
            best.partitions_used(),
            best.execution_latency(&graph).to_string(),
            best.total_latency(&graph, &arch).to_string()
        );
    }
    println!("\nsmaller C_T -> more partitions -> faster design points win;");
    println!("larger C_T -> the minimum-partition packing wins.");
    Ok(())
}
