//! Deterministic fault-injection registry.
//!
//! A *failpoint* is a named site in the solver stack where a fault can be
//! injected on demand: a worker panic, a singular basis, a failed
//! checkpoint write. With no configuration installed every call is a
//! relaxed atomic load and an immediate return, so production runs pay
//! one branch per site visit and nothing else.
//!
//! Faults are injected **deterministically**: the decision for a visit is
//! a pure function of `(seed, site, key)`, where `key` is a stable
//! caller-chosen identity for the visit (a window's `(n, iteration)`, a
//! job index, a pivot ordinal) — never a global hit counter. That makes
//! injection independent of thread interleaving: the same seed trips the
//! same visits whether the exploration runs on one thread or eight, which
//! is what lets the differential tests compare degraded runs across
//! thread counts.
//!
//! Configuration comes from the `RTR_FAILPOINTS` environment variable —
//! `<seed>:<rate>[:<site,site,...>]`, e.g. `RTR_FAILPOINTS=7:0.2` or
//! `RTR_FAILPOINTS=7:1.0:search.job` — or programmatically via
//! [`install`] / [`clear`] for tests. `rate` is the per-visit trip
//! probability in `[0, 1]`; an empty site list means every registered
//! site participates.
//!
//! The decision function is the SplitMix64 output mixer (Steele, Lea &
//! Flood, OOPSLA 2014) over `seed`, an FNV-1a hash of the site name, and
//! the visit key — the same generator family the rest of the workspace
//! uses for seeded workloads, inlined here so this crate stays
//! dependency-free.

use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Panic payload carried by [`panic_if`] so handlers can tell injected
/// faults apart from genuine bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failpoint site that tripped.
    pub site: &'static str,
}

/// An installed fault-injection configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FailpointConfig {
    /// Seed for the deterministic trip decision.
    pub seed: u64,
    /// Per-visit trip probability in `[0, 1]`.
    pub rate: f64,
    /// Sites that participate; empty means all sites.
    pub sites: Vec<String>,
}

impl FailpointConfig {
    /// Parses the `RTR_FAILPOINTS` syntax: `<seed>:<rate>[:<site,...>]`.
    ///
    /// Returns `None` for empty or malformed strings (malformed
    /// configurations are ignored rather than trusted to fail a run).
    pub fn parse(spec: &str) -> Option<FailpointConfig> {
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        let mut parts = spec.splitn(3, ':');
        let seed = parts.next()?.trim().parse::<u64>().ok()?;
        let rate = parts.next()?.trim().parse::<f64>().ok()?;
        if !(0.0..=1.0).contains(&rate) {
            return None;
        }
        let sites = match parts.next() {
            Some(list) => list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect(),
            None => Vec::new(),
        };
        Some(FailpointConfig { seed, rate, sites })
    }
}

/// `true` once any configuration has ever been installed; lets the hot
/// path skip the mutex entirely in unconfigured processes.
static ARMED: AtomicBool = AtomicBool::new(false);

/// `true` after the first [`failpoint`] call has consulted the
/// environment, so the env variable is parsed at most once.
static ENV_CHECKED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<FailpointConfig>> {
    static REGISTRY: OnceLock<Mutex<Option<FailpointConfig>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

/// Installs a fault-injection configuration for the whole process
/// (overriding any `RTR_FAILPOINTS` environment setting).
pub fn install(config: FailpointConfig) {
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    *guard = Some(config);
    ENV_CHECKED.store(true, Ordering::Release);
    ARMED.store(true, Ordering::Release);
}

/// Removes any installed configuration; subsequent [`failpoint`] calls
/// are no-ops (the environment is *not* re-consulted).
pub fn clear() {
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    *guard = None;
    ENV_CHECKED.store(true, Ordering::Release);
    // Leave ARMED set: the fast path must keep checking the registry
    // because a test may re-install later; an unconfigured registry
    // still returns quickly.
}

/// The SplitMix64 output mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the site name, so each site gets an independent stream.
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn decide(config: &FailpointConfig, site: &str, key: u64) -> bool {
    if config.rate <= 0.0 {
        return false;
    }
    if !config.sites.is_empty() && !config.sites.iter().any(|s| s == site) {
        return false;
    }
    let draw = mix(config.seed ^ site_hash(site) ^ mix(key));
    // 53 mantissa bits -> uniform in [0, 1); matches rtr-workloads.
    let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
    unit < config.rate
}

/// Returns `true` if the fault at `site` should trip for this visit.
///
/// `key` is a stable identity for the visit (window id, job index, retry
/// attempt); the decision is a pure function of `(seed, site, key)` and
/// therefore independent of scheduling. With no configuration installed
/// (and no `RTR_FAILPOINTS` in the environment) this is a single relaxed
/// atomic load.
pub fn failpoint(site: &str, key: u64) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        if ENV_CHECKED.swap(true, Ordering::AcqRel) {
            return false;
        }
        // First call in this process: consult the environment once.
        match std::env::var("RTR_FAILPOINTS").ok().as_deref().and_then(FailpointConfig::parse) {
            Some(config) => install(config),
            None => return false,
        }
    }
    let guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    match guard.as_ref() {
        Some(config) => decide(config, site, key),
        None => false,
    }
}

/// Panics with an [`InjectedFault`] payload if the fault at `site`
/// should trip for this visit. Callers isolate the panic with
/// `catch_unwind` and may downcast the payload to confirm its origin.
pub fn panic_if(site: &'static str, key: u64) {
    if failpoint(site, key) {
        panic_any(InjectedFault { site });
    }
}

/// Installs a process-wide panic hook that suppresses the default
/// backtrace printing for [`InjectedFault`] panics (they are expected
/// and caught) while leaving every other panic's output untouched.
/// Idempotent; intended for fault-injection tests.
pub fn silence_injected_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_and_rejects() {
        let c = FailpointConfig::parse("7:0.25").expect("valid spec");
        assert_eq!(c.seed, 7);
        assert!((c.rate - 0.25).abs() < 1e-12);
        assert!(c.sites.is_empty());

        let c = FailpointConfig::parse("42:1.0:search.job, explore.window").expect("with sites");
        assert_eq!(c.sites, vec!["search.job", "explore.window"]);

        assert!(FailpointConfig::parse("").is_none());
        assert!(FailpointConfig::parse("x:0.5").is_none());
        assert!(FailpointConfig::parse("7:1.5").is_none());
        assert!(FailpointConfig::parse("7:-0.1").is_none());
        assert!(FailpointConfig::parse("7").is_none());
    }

    #[test]
    fn decisions_are_deterministic_and_site_independent() {
        let config = FailpointConfig { seed: 99, rate: 0.5, sites: Vec::new() };
        let mut trips = 0;
        for key in 0..1000 {
            let a = decide(&config, "a.site", key);
            assert_eq!(a, decide(&config, "a.site", key), "pure in key");
            trips += u64::from(a);
        }
        assert!((300..700).contains(&trips), "rate 0.5 tripped {trips}/1000");

        // Different sites see different streams.
        let same = (0..256)
            .filter(|&k| decide(&config, "a.site", k) == decide(&config, "b.site", k))
            .count();
        assert!(same < 256, "site hash decorrelates streams");
    }

    #[test]
    fn site_filter_and_rate_edges() {
        let only_a = FailpointConfig { seed: 1, rate: 1.0, sites: vec!["a".into()] };
        assert!(decide(&only_a, "a", 0));
        assert!(!decide(&only_a, "b", 0));
        let off = FailpointConfig { seed: 1, rate: 0.0, sites: Vec::new() };
        assert!(!decide(&off, "a", 0));
    }

    /// Serializes tests that touch the process-global registry.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn install_clear_roundtrip() {
        let _guard = global_lock();
        install(FailpointConfig { seed: 3, rate: 1.0, sites: vec!["only.this".into()] });
        assert!(failpoint("only.this", 0));
        assert!(!failpoint("other.site", 0));
        clear();
        assert!(!failpoint("only.this", 0));
    }

    #[test]
    fn panic_payload_is_typed() {
        let _guard = global_lock();
        install(FailpointConfig { seed: 5, rate: 1.0, sites: vec!["typed.payload".into()] });
        silence_injected_panics();
        let caught = std::panic::catch_unwind(|| panic_if("typed.payload", 9));
        clear();
        let payload = caught.expect_err("should have tripped");
        let fault = payload.downcast_ref::<InjectedFault>().expect("typed payload");
        assert_eq!(fault.site, "typed.payload");
    }
}
