//! # rtr-trace
//!
//! Structured tracing, metrics, and run reports for the temporal
//! partitioning solver stack — self-contained (no external dependencies,
//! builds offline) and free when off.
//!
//! The paper's central claim is about *where time goes*: the iterative
//! `Reduce_Latency` / `Refine_Partitions_Bound` procedure explores more of
//! the design space per unit time than solving the ILP to optimality. This
//! crate is the measurement substrate for that claim — every layer of the
//! workspace (simplex pivots, branch-and-bound nodes, window solves,
//! schedule estimation, simulated timelines) emits structured events
//! through one global dispatch point.
//!
//! ## Model
//!
//! * [`Event`] — one structured record: a timestamp, a kind, a dotted
//!   name, and key/value [`Value`] fields.
//! * Kinds: [`span`] (named stretch of wall-clock time), [`counter`]
//!   (monotonic increment), [`gauge`] (level sample), [`event`]
//!   (structured point event).
//! * [`Sink`] — where events go. Ships with [`MemorySink`] (in-memory
//!   vector) and [`JsonlSink`] (one JSON object per line).
//! * [`RunReport`] — aggregates events (in memory or parsed back from a
//!   JSONL file via [`parse_jsonl`]) into a per-phase time breakdown with
//!   counter totals and duration histograms.
//! * [`Instrument`] — implemented by solver-statistics structs across the
//!   workspace so each layer emits its counters through one shared path.
//! * [`capture`] — diverts one thread's events into a buffer so parallel
//!   drivers can re-emit per-worker streams in a deterministic order with
//!   [`dispatch_all`] (used by the parallel partition-count exploration).
//! * [`perfetto`] — Chrome / Perfetto trace-event export of an event
//!   stream ([`RunReport::to_perfetto_json`]), reconstructing per-candidate
//!   and per-subtree-job timeline tracks.
//! * [`status`] — the live [`StatusBoard`]: lock-free progress counters
//!   published by the solver stack and written as heartbeat JSONL by a
//!   [`StatusWriter`] watcher thread.
//!
//! ## Cost when disabled
//!
//! No sink is installed by default. Every emission helper first checks one
//! relaxed atomic ([`enabled`]); a disabled call is a load, a branch, and
//! an immediate return — no clock read, no allocation, no lock. Solver
//! results are bit-identical with tracing on, off, or absent; the trace is
//! an observer, never a participant.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use rtr_trace as trace;
//!
//! let sink = Arc::new(trace::MemorySink::new());
//! trace::install(sink.clone());
//! {
//!     let _solve = trace::span("demo.solve").with("n", 3u32);
//!     trace::counter("demo.nodes", 17);
//! }
//! trace::uninstall();
//!
//! let events = sink.take();
//! let report = trace::RunReport::from_events(&events);
//! assert_eq!(report.counter("demo.nodes"), 17);
//! assert_eq!(report.span("demo.solve").unwrap().count, 1);
//! println!("{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never panic on inputs.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod event;
pub mod failpoint;
mod histogram;
mod json;
pub mod perfetto;
mod report;
mod sink;
pub mod status;

pub use event::{Event, EventKind, Instrument, Value};
pub use histogram::DurationHistogram;
pub use json::{parse_event, parse_jsonl, parse_value, write_event, JsonValue, ParseError};
pub use report::{fmt_duration, GaugeStats, RunReport, SpanStats};
pub use sink::{
    capture, counter, dispatch, dispatch_all, enabled, event, gauge, install, now_us, span,
    uninstall, JsonlSink, MemorySink, Sink, Span,
};
pub use status::{board, StatusBoard, StatusError, StatusSnapshot, StatusWriter, WindowOutcome};
