//! Property test: no parser in the workspace panics on corrupted input.
//!
//! Each round takes a valid serialized artifact — a `.tg` task graph, a
//! CPLEX BAS basis file, a checkpoint JSON, a trace JSONL line — applies a
//! deterministic byte-level mutation (flip, truncate, duplicate, insert,
//! delete), and feeds it back to the matching parser. The parser must
//! return `Ok` or its typed error; a panic aborts the test binary.

use rtrpart::graph::TaskGraph;
use rtrpart::milp::{solve_lp, Constraint, LinExpr, Model, Rel, Variable};
use rtrpart::workloads::rng::Rng;
use rtrpart::Checkpoint;

const ROUNDS: u64 = 400;

/// Applies one deterministic mutation to `bytes`; invalid UTF-8 produced
/// along the way is replaced lossily, which is exactly what a parser fed
/// from disk would see after `String::from_utf8_lossy`.
fn mutate(valid: &str, rng: &mut Rng) -> String {
    let mut bytes = valid.as_bytes().to_vec();
    if bytes.is_empty() {
        bytes.push(rng.range_u64(0, 255) as u8);
        return String::from_utf8_lossy(&bytes).into_owned();
    }
    // A few stacked mutations per round corrupt structure, not just one
    // character.
    for _ in 0..=rng.range_usize(0, 3) {
        if bytes.is_empty() {
            break;
        }
        let at = rng.range_usize(0, bytes.len() - 1);
        match rng.range_u64(0, 5) {
            0 => bytes[at] = rng.range_u64(0, 255) as u8,
            1 => bytes.truncate(at),
            2 => {
                let b = bytes[at];
                bytes.insert(at, b);
            }
            3 => bytes.insert(at, rng.range_u64(0, 255) as u8),
            4 => {
                bytes.remove(at);
            }
            _ => {
                // Swap two regions' first bytes — reorders tokens cheaply.
                let other = rng.range_usize(0, bytes.len() - 1);
                bytes.swap(at, other);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn task_graph_parser_never_panics() {
    let valid = rtrpart::workloads::dct::dct_4x4().to_text();
    let mut rng = Rng::new(0x7461_736b);
    for _ in 0..ROUNDS {
        let corrupt = mutate(&valid, &mut rng);
        let _ = TaskGraph::from_text(&corrupt);
    }
    // The uncorrupted round-trip still works after all that.
    assert!(TaskGraph::from_text(&valid).is_ok());
}

#[test]
fn bas_parser_never_panics() {
    // The doctest model from `to_bas_format`, enlarged a little so the BAS
    // file has several rows to corrupt.
    let mut m = Model::new();
    let vars: Vec<_> = (0..4)
        .map(|i| m.add_var(Variable::continuous(0.0, 10.0).with_name(format!("x{i}"))))
        .collect();
    for pair in vars.windows(2) {
        m.add_constraint(Constraint::new(
            LinExpr::new() + (1.0, pair[0]) + (1.0, pair[1]),
            Rel::Le,
            6.0,
        ));
    }
    let mut obj = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj = obj + ((i + 1) as f64, v);
    }
    m.maximize(obj);
    let basis = solve_lp(&m, None, 1e-7, 0).expect("lp solves").basis.expect("basis");
    let valid = m.to_bas_format(&basis).expect("bas serializes");
    let mut rng = Rng::new(0x6261_7369);
    for _ in 0..ROUNDS {
        let corrupt = mutate(&valid, &mut rng);
        let _ = m.parse_bas_format(&corrupt);
    }
    assert_eq!(m.parse_bas_format(&valid).expect("round trip").statuses, basis.statuses);
}

#[test]
fn checkpoint_parser_never_panics() {
    // A checkpoint with every record shape: feasible (placements),
    // infeasible, and limit.
    let valid = r#"{
  "version": 1,
  "fingerprint": "0x0123456789abcdef",
  "records": [
    {"n": 3, "iteration": 1, "d_min_ns": 100.5, "d_max_ns": 900.25,
     "result": "feasible", "latency_ns": 450.125, "eta": 3,
     "elapsed_us": 42, "placements": [[1, 0], [2, 1], [3, 0]]},
    {"n": 3, "iteration": 2, "d_min_ns": 100.5, "d_max_ns": 450.125,
     "result": "infeasible", "latency_ns": null, "eta": null,
     "elapsed_us": 7, "placements": null},
    {"n": 4, "iteration": 1, "d_min_ns": 90.0, "d_max_ns": 450.125,
     "result": "limit", "latency_ns": null, "eta": null,
     "elapsed_us": 9, "placements": null}
  ]
}"#;
    assert!(Checkpoint::from_json(valid).is_ok(), "fixture must be valid");
    let mut rng = Rng::new(0x636b_7074);
    for _ in 0..ROUNDS {
        let corrupt = mutate(valid, &mut rng);
        let _ = Checkpoint::from_json(&corrupt);
    }
}

#[test]
fn trace_jsonl_parser_never_panics() {
    let valid = "{\"ts_us\": 12, \"kind\": \"event\", \"name\": \"search.iteration\", \
                 \"fields\": {\"n\": 3, \"latency_ns\": 450.5, \"result\": \"feasible\"}}\n\
                 {\"ts_us\": 15, \"kind\": \"counter\", \"name\": \"milp.pivots\", \
                 \"fields\": {\"value\": 99}}\n";
    assert!(rtrpart::trace::parse_jsonl(valid).is_ok(), "fixture must be valid");
    let mut rng = Rng::new(0x6a73_6f6e);
    for _ in 0..ROUNDS {
        let corrupt = mutate(valid, &mut rng);
        let _ = rtrpart::trace::parse_jsonl(&corrupt);
    }
}

/// Round-tripping a real checkpoint through its own serializer stays
/// parseable — the generative side of the property.
#[test]
fn checkpoint_round_trips_through_json() {
    let valid = r#"{"version": 1, "fingerprint": "0x000000000000002a", "records": []}"#;
    let ck = Checkpoint::from_json(valid).expect("parses");
    let again = Checkpoint::from_json(&ck.to_json()).expect("round trip");
    assert_eq!(ck, again);
}
