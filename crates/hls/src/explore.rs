//! Design-space exploration: allocation enumeration and Pareto pruning.

use crate::error::HlsError;
use crate::library::FuLibrary;
use crate::op::BehavioralTask;
use crate::schedule::{schedule, Allocation};
use rtr_graph::{DesignPoint, Task, TaskGraphBuilder};

/// Options for [`enumerate_design_points`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorOptions {
    /// Maximum functional units per operation kind (also capped by the
    /// number of operations of that kind — more units can never help).
    pub max_units_per_kind: usize,
    /// Maximum number of allocations to schedule before giving up
    /// enumeration (guards combinatorial blow-up on many-kind tasks).
    pub max_allocations: usize,
    /// Maximum number of Pareto points to keep ("candidate design points
    /// must be obtained by effective design space pruning techniques", §2).
    pub max_points: usize,
}

impl Default for EstimatorOptions {
    fn default() -> Self {
        EstimatorOptions { max_units_per_kind: 8, max_allocations: 4096, max_points: 8 }
    }
}

/// A synthesized design point together with the module set that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizedPoint {
    /// The area/latency design point (named after the module set).
    pub design_point: DesignPoint,
    /// The functional-unit allocation (module set) behind it.
    pub allocation: Allocation,
}

/// Enumerates functional-unit allocations for `task`, schedules each, and
/// returns the Pareto-optimal (area, latency) design points sorted by
/// increasing area (hence decreasing latency).
///
/// # Errors
///
/// Returns an [`HlsError`] if the task is invalid.
pub fn enumerate_design_points(
    task: &BehavioralTask,
    library: &FuLibrary,
    options: &EstimatorOptions,
) -> Result<Vec<SynthesizedPoint>, HlsError> {
    task.validate()?;
    let kinds = task.kinds_used();
    let maxima: Vec<usize> =
        kinds.iter().map(|&k| task.count_of(k).min(options.max_units_per_kind).max(1)).collect();

    // Cartesian product of per-kind counts, capped.
    let mut allocations = Vec::new();
    let mut counts = vec![1usize; kinds.len()];
    'outer: loop {
        let mut alloc = Allocation::new();
        for (i, &k) in kinds.iter().enumerate() {
            alloc = alloc.with(k, counts[i]);
        }
        allocations.push(alloc);
        if allocations.len() >= options.max_allocations {
            break;
        }
        // Odometer increment.
        for i in 0..kinds.len() {
            if counts[i] < maxima[i] {
                counts[i] += 1;
                continue 'outer;
            }
            counts[i] = 1;
        }
        break;
    }

    let mut points: Vec<SynthesizedPoint> = Vec::with_capacity(allocations.len());
    for alloc in allocations {
        let sched = schedule(task, &alloc, library)?;
        let area = alloc.area(task, library);
        let dp = DesignPoint::new(alloc.label(), area, sched.latency)
            .with_secondary(alloc.secondary(task, library));
        points.push(SynthesizedPoint { design_point: dp, allocation: alloc });
    }

    // Pareto pruning.
    let mut front: Vec<SynthesizedPoint> = Vec::new();
    for p in points {
        if front.iter().any(|q| p.design_point.is_dominated_by(&q.design_point)) {
            continue;
        }
        front.retain(|q| !q.design_point.is_dominated_by(&p.design_point));
        // Drop exact duplicates in both dimensions.
        if !front.iter().any(|q| {
            q.design_point.area() == p.design_point.area()
                && q.design_point.latency() == p.design_point.latency()
        }) {
            front.push(p);
        }
    }
    front.sort_by_key(|a| a.design_point.area());

    // Thin the front to at most `max_points`, always keeping the extremes
    // (a single-point budget keeps the smallest implementation).
    if front.len() > options.max_points && options.max_points == 1 {
        front.truncate(1);
    }
    if front.len() > options.max_points && options.max_points >= 2 {
        let keep = options.max_points;
        let last = front.len() - 1;
        let mut kept = Vec::with_capacity(keep);
        for i in 0..keep {
            let idx = i * last / (keep - 1);
            kept.push(front[idx].clone());
        }
        kept.dedup_by(|a, b| a.design_point.area() == b.design_point.area());
        front = kept;
    }
    Ok(front)
}

/// Synthesizes a ready-to-insert [`Task`] for a task graph: runs
/// [`enumerate_design_points`] and wraps the result with the environment
/// I/O volumes.
///
/// # Errors
///
/// Returns an [`HlsError`] if the task is invalid.
///
/// # Examples
///
/// ```
/// use rtr_hls::{BehavioralTask, OpKind, FuLibrary, EstimatorOptions, synthesize_task};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = BehavioralTask::new("stage");
/// let m = b.add_op(OpKind::Mul, 12, &[]);
/// b.add_op(OpKind::Add, 12, &[m]);
/// let task = synthesize_task(&b, &FuLibrary::default(), &EstimatorOptions::default(), 2, 1)?;
/// assert_eq!(task.name(), "stage");
/// assert!(!task.design_points().is_empty());
/// # Ok(())
/// # }
/// ```
pub fn synthesize_task(
    task: &BehavioralTask,
    library: &FuLibrary,
    options: &EstimatorOptions,
    env_input: u64,
    env_output: u64,
) -> Result<Task, HlsError> {
    let points = enumerate_design_points(task, library, options)?;
    // Build through a throwaway graph builder to reuse its Task assembly.
    let mut b = TaskGraphBuilder::new();
    let id = b
        .add_task(task.name())
        .design_points(points.into_iter().map(|p| p.design_point))
        .env_input(env_input)
        .env_output(env_output)
        .finish();
    let g = b.build().expect("single synthesized task is always a valid graph");
    Ok(g.task(id).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    fn vector_product(width: u32) -> BehavioralTask {
        let mut t = BehavioralTask::new("vp");
        let m: Vec<_> = (0..4).map(|_| t.add_op(OpKind::Mul, width, &[])).collect();
        let a0 = t.add_op(OpKind::Add, width, &[m[0], m[1]]);
        let a1 = t.add_op(OpKind::Add, width, &[m[2], m[3]]);
        t.add_op(OpKind::Add, width, &[a0, a1]);
        t
    }

    #[test]
    fn front_is_sorted_and_pareto() {
        let pts = enumerate_design_points(
            &vector_product(16),
            &FuLibrary::default(),
            &Default::default(),
        )
        .unwrap();
        assert!(pts.len() >= 2, "expected several tradeoff points, got {}", pts.len());
        for w in pts.windows(2) {
            assert!(w[0].design_point.area() < w[1].design_point.area());
            assert!(
                w[0].design_point.latency() > w[1].design_point.latency(),
                "front must trade area for latency"
            );
        }
    }

    #[test]
    fn no_point_is_dominated() {
        let pts = enumerate_design_points(
            &vector_product(12),
            &FuLibrary::default(),
            &Default::default(),
        )
        .unwrap();
        for a in &pts {
            for b in &pts {
                assert!(!a.design_point.is_dominated_by(&b.design_point));
            }
        }
    }

    #[test]
    fn max_points_thins_but_keeps_extremes() {
        let task = vector_product(16);
        let all = enumerate_design_points(
            &task,
            &FuLibrary::default(),
            &EstimatorOptions { max_points: 100, ..Default::default() },
        )
        .unwrap();
        let thin = enumerate_design_points(
            &task,
            &FuLibrary::default(),
            &EstimatorOptions { max_points: 2, ..Default::default() },
        )
        .unwrap();
        assert!(thin.len() <= 2);
        assert_eq!(
            thin.first().unwrap().design_point.area(),
            all.first().unwrap().design_point.area()
        );
        assert_eq!(
            thin.last().unwrap().design_point.area(),
            all.last().unwrap().design_point.area()
        );
    }

    #[test]
    fn single_kind_task() {
        let mut t = BehavioralTask::new("adds");
        let a = t.add_op(OpKind::Add, 8, &[]);
        let b = t.add_op(OpKind::Add, 8, &[]);
        t.add_op(OpKind::Add, 8, &[a, b]);
        let pts = enumerate_design_points(&t, &FuLibrary::unit(), &Default::default()).unwrap();
        // 1 adder: 3*8 = 24 ns at area 8; 2 adders: 16 ns at area 16.
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].design_point.latency().as_ns(), 24.0);
        assert_eq!(pts[1].design_point.latency().as_ns(), 16.0);
    }

    #[test]
    fn allocation_cap_respected() {
        let t = vector_product(8);
        let opts = EstimatorOptions { max_allocations: 1, ..Default::default() };
        let pts = enumerate_design_points(&t, &FuLibrary::unit(), &opts).unwrap();
        assert_eq!(pts.len(), 1, "only the all-ones allocation was explored");
    }

    #[test]
    fn synthesize_task_carries_env_io() {
        let task =
            synthesize_task(&vector_product(8), &FuLibrary::default(), &Default::default(), 4, 1)
                .unwrap();
        assert_eq!(task.env_input(), 4);
        assert_eq!(task.env_output(), 1);
        assert_eq!(task.name(), "vp");
    }

    #[test]
    fn invalid_task_is_rejected() {
        let t = BehavioralTask::new("empty");
        assert!(enumerate_design_points(&t, &FuLibrary::unit(), &Default::default()).is_err());
    }

    #[test]
    fn virtex_points_carry_dsp_usage() {
        let pts = enumerate_design_points(
            &vector_product(16),
            &FuLibrary::virtex_style(),
            &Default::default(),
        )
        .unwrap();
        for p in &pts {
            // DSP usage equals the number of multipliers in the module set.
            assert_eq!(
                p.design_point.secondary(),
                &[p.allocation.count(OpKind::Mul) as u64],
                "{}",
                p.design_point
            );
        }
        // The front contains allocations with different multiplier counts.
        let dsp_counts: std::collections::BTreeSet<u64> =
            pts.iter().map(|p| p.design_point.secondary_usage(0)).collect();
        assert!(dsp_counts.len() > 1, "expected a DSP tradeoff, got {dsp_counts:?}");
    }
}
