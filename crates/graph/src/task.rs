//! Tasks and their synthesized design points.

use crate::quantity::{Area, Latency};
use std::fmt;

/// One synthesized implementation alternative for a task: the paper's design
/// point with module set `m ∈ M_t`, area `R(m)` and latency `D(m)`.
///
/// Design points normally come from a high-level-synthesis estimator (see the
/// `rtr-hls` crate); they can also be entered directly, as the DCT case study
/// does with its published design-point table.
///
/// # Examples
///
/// ```
/// use rtr_graph::{DesignPoint, Area, Latency};
/// let dp = DesignPoint::new("2mul-1add", Area::new(155), Latency::from_ns(580.0));
/// assert_eq!(dp.area(), Area::new(155));
/// assert_eq!(dp.latency().as_ns(), 580.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    name: String,
    area: Area,
    latency: Latency,
    secondary: Vec<u64>,
}

impl DesignPoint {
    /// Creates a design point with the given module-set `name`, `area`, and
    /// `latency`.
    pub fn new(name: impl Into<String>, area: Area, latency: Latency) -> Self {
        DesignPoint { name: name.into(), area, latency, secondary: Vec::new() }
    }

    /// Adds consumption of *secondary resource classes* (the paper's
    /// "Similar equations can be added if multiple resource types exist in
    /// the FPGA" — e.g. dedicated multipliers or block RAMs, indexed by
    /// class). Entries beyond the vector's length count as 0.
    pub fn with_secondary(mut self, secondary: Vec<u64>) -> Self {
        self.secondary = secondary;
        self
    }

    /// Name of the module set implementing this design point.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The FPGA area `R(m)` consumed by this design point.
    pub fn area(&self) -> Area {
        self.area
    }

    /// The execution latency `D(m)` of this design point.
    pub fn latency(&self) -> Latency {
        self.latency
    }

    /// Secondary resource consumption per class (empty for points that use
    /// only the primary area resource).
    pub fn secondary(&self) -> &[u64] {
        &self.secondary
    }

    /// Consumption of secondary class `class` (0 beyond the vector).
    pub fn secondary_usage(&self, class: usize) -> u64 {
        self.secondary.get(class).copied().unwrap_or(0)
    }

    /// `true` if `self` is dominated by `other`: `other` is no larger (in
    /// area and every secondary class) and no slower, and strictly better in
    /// at least one dimension.
    pub fn is_dominated_by(&self, other: &DesignPoint) -> bool {
        let classes = self.secondary.len().max(other.secondary.len());
        let secondary_no_worse =
            (0..classes).all(|k| other.secondary_usage(k) <= self.secondary_usage(k));
        let secondary_strictly_better =
            (0..classes).any(|k| other.secondary_usage(k) < self.secondary_usage(k));
        let no_worse =
            other.area <= self.area && other.latency <= self.latency && secondary_no_worse;
        let strictly_better =
            other.area < self.area || other.latency < self.latency || secondary_strictly_better;
        no_worse && strictly_better
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (area {}, {})", self.name, self.area, self.latency)
    }
}

/// A behavioral task: a vertex of the task graph, with its set of design
/// points `M_t` and its environment I/O volumes `B(env, t)` and `B(t, env)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    name: String,
    design_points: Vec<DesignPoint>,
    env_input: u64,
    env_output: u64,
}

impl Task {
    pub(crate) fn new(
        name: String,
        design_points: Vec<DesignPoint>,
        env_input: u64,
        env_output: u64,
    ) -> Self {
        Task { name, design_points, env_input, env_output }
    }

    /// Task name (unique within a graph).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The design points `M_t` available for this task.
    pub fn design_points(&self) -> &[DesignPoint] {
        &self.design_points
    }

    /// Data units read from the environment, `B(env, t)`.
    pub fn env_input(&self) -> u64 {
        self.env_input
    }

    /// Data units written to the environment, `B(t, env)`.
    pub fn env_output(&self) -> u64 {
        self.env_output
    }

    /// Fallback for the point selectors below. Validated tasks always have
    /// at least one design point (the builder rejects empty sets), so this
    /// zero-cost stub is unreachable in practice; it exists so an invariant
    /// breach degrades instead of panicking.
    fn empty_fallback() -> &'static DesignPoint {
        use std::sync::OnceLock;
        static FALLBACK: OnceLock<DesignPoint> = OnceLock::new();
        FALLBACK.get_or_init(|| DesignPoint::new("(none)", Area::new(0), Latency::from_ns(0.0)))
    }

    /// The design point with minimum area (ties broken by lower latency).
    ///
    /// This is the `min(R(m))` selection of the paper's
    /// `MinAreaPartitions()` bound.
    pub fn min_area_point(&self) -> &DesignPoint {
        self.design_points
            .iter()
            .min_by(|a, b| a.area().cmp(&b.area()).then(a.latency().total_cmp(&b.latency())))
            .unwrap_or_else(|| Self::empty_fallback())
    }

    /// The design point with maximum area (ties broken by lower latency);
    /// the `max(R(m))` selection of `MaxAreaPartitions()`.
    pub fn max_area_point(&self) -> &DesignPoint {
        self.design_points
            .iter()
            .max_by(|a, b| a.area().cmp(&b.area()).then(b.latency().total_cmp(&a.latency())))
            .unwrap_or_else(|| Self::empty_fallback())
    }

    /// The design point with minimum latency (ties broken by smaller area);
    /// used by the paper's `MinLatency(N)` lower bound.
    pub fn min_latency_point(&self) -> &DesignPoint {
        self.design_points
            .iter()
            .min_by(|a, b| a.latency().total_cmp(&b.latency()).then(a.area().cmp(&b.area())))
            .unwrap_or_else(|| Self::empty_fallback())
    }

    /// The design point with maximum latency (ties broken by smaller area);
    /// used by the paper's `MaxLatency(N)` upper bound.
    pub fn max_latency_point(&self) -> &DesignPoint {
        self.design_points
            .iter()
            .max_by(|a, b| a.latency().total_cmp(&b.latency()).then(b.area().cmp(&a.area())))
            .unwrap_or_else(|| Self::empty_fallback())
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} design points]", self.name, self.design_points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp(name: &str, area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new(name, Area::new(area), Latency::from_ns(lat))
    }

    #[test]
    fn secondary_resources_default_empty() {
        let p = dp("a", 100, 800.0);
        assert!(p.secondary().is_empty());
        assert_eq!(p.secondary_usage(0), 0);
        assert_eq!(p.secondary_usage(7), 0);
        let q = dp("b", 100, 800.0).with_secondary(vec![2, 0, 1]);
        assert_eq!(q.secondary_usage(0), 2);
        assert_eq!(q.secondary_usage(2), 1);
        assert_eq!(q.secondary_usage(3), 0);
    }

    #[test]
    fn dominance_considers_secondary_classes() {
        let cheap_dsp = dp("a", 100, 800.0).with_secondary(vec![1]);
        let many_dsp = dp("b", 100, 800.0).with_secondary(vec![4]);
        // Same area and latency, fewer DSPs: `a` dominates `b`.
        assert!(many_dsp.is_dominated_by(&cheap_dsp));
        assert!(!cheap_dsp.is_dominated_by(&many_dsp));
        // Smaller area but more DSPs: incomparable.
        let small_hungry = dp("c", 50, 800.0).with_secondary(vec![4]);
        assert!(!small_hungry.is_dominated_by(&cheap_dsp));
        assert!(!cheap_dsp.is_dominated_by(&small_hungry));
    }

    #[test]
    fn dominance() {
        let small_slow = dp("a", 100, 800.0);
        let big_fast = dp("b", 200, 400.0);
        let big_slow = dp("c", 200, 800.0);
        assert!(!small_slow.is_dominated_by(&big_fast));
        assert!(!big_fast.is_dominated_by(&small_slow));
        assert!(big_slow.is_dominated_by(&small_slow));
        assert!(big_slow.is_dominated_by(&big_fast));
        assert!(!big_slow.is_dominated_by(&big_slow), "a point never dominates itself");
    }

    #[test]
    fn extreme_point_selectors() {
        let t = Task::new(
            "t".into(),
            vec![dp("mid", 155, 580.0), dp("small", 130, 790.0), dp("big", 180, 430.0)],
            0,
            0,
        );
        assert_eq!(t.min_area_point().name(), "small");
        assert_eq!(t.max_area_point().name(), "big");
        assert_eq!(t.min_latency_point().name(), "big");
        assert_eq!(t.max_latency_point().name(), "small");
    }

    #[test]
    fn tie_breaking_prefers_pareto_points() {
        // Same area, different latency: min_area should pick the faster one.
        let t = Task::new("t".into(), vec![dp("slow", 100, 900.0), dp("fast", 100, 300.0)], 0, 0);
        assert_eq!(t.min_area_point().name(), "fast");
        assert_eq!(t.max_area_point().name(), "fast");
        // Same latency, different area: min_latency should pick the smaller one.
        let t = Task::new("t".into(), vec![dp("big", 300, 500.0), dp("small", 120, 500.0)], 0, 0);
        assert_eq!(t.min_latency_point().name(), "small");
        assert_eq!(t.max_latency_point().name(), "small");
    }

    #[test]
    fn display_formats() {
        assert_eq!(dp("m1", 130, 790.0).to_string(), "m1 (area 130, 790 ns)");
        let t = Task::new("vp0".into(), vec![dp("m1", 130, 790.0)], 4, 0);
        assert_eq!(t.to_string(), "vp0 [1 design points]");
    }
}
