//! `rtr-bench-diff` — the bench-regression gate.
//!
//! ```text
//! rtr-bench-diff [--counters-only] [--metric-tol <frac>] <baseline.json> <new.json>
//! ```
//!
//! Compares two `BENCH_<name>.json` summaries (see `rtr_bench::diff` for
//! the per-kind noise policies) and exits `0` when clean, `1` on any
//! regression, `2` on usage or I/O errors — so CI can gate on it
//! directly.

use rtr_bench::diff::{diff_runs, parse_bench_json, DiffPolicy};

const USAGE: &str = "usage: rtr-bench-diff [--counters-only] [--metric-tol <frac>] \
                     <baseline.json> <new.json>";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut policy = DiffPolicy::default();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--counters-only" => policy.counters_only = true,
            "--metric-tol" => {
                let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--metric-tol needs a fraction (e.g. 0.25)\n{USAGE}");
                    return 2;
                };
                if !v.is_finite() || v < 0.0 {
                    eprintln!("--metric-tol must be a non-negative finite fraction\n{USAGE}");
                    return 2;
                }
                policy.metric_rel_tol = v;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return 2;
            }
            path => paths.push(path.to_owned()),
        }
    }
    let [baseline_path, new_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return 2;
    };

    let mut runs = Vec::new();
    for path in [baseline_path, new_path] {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("rtr-bench-diff: cannot read {path}: {e}");
                return 2;
            }
        };
        match parse_bench_json(&text) {
            Ok(run) => runs.push(run),
            Err(e) => {
                eprintln!("rtr-bench-diff: {path}: {e}");
                return 2;
            }
        }
    }
    let (old, new) = (&runs[0], &runs[1]);
    if old.name != new.name {
        eprintln!(
            "rtr-bench-diff: comparing different benches: \"{}\" vs \"{}\"",
            old.name, new.name
        );
        return 2;
    }

    let report = diff_runs(old, new, &policy);
    if report.is_clean() {
        println!(
            "rtr-bench-diff: {} clean ({} values compared, {} skipped by noise policy)",
            new.name, report.compared, report.skipped
        );
        0
    } else {
        eprintln!(
            "rtr-bench-diff: {} REGRESSED — {} of {} compared values ({} skipped):",
            new.name,
            report.regressions.len(),
            report.compared,
            report.skipped
        );
        for r in &report.regressions {
            eprintln!("  {}: {}", r.key, r.detail);
        }
        1
    }
}
