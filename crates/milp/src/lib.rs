//! Mixed-integer linear programming, built from scratch.
//!
//! This crate is the workspace's substitute for the CPLEX solver used by
//! Kaul & Vemuri (DATE 1999). It provides:
//!
//! * a model-builder API ([`Model`], [`Variable`], [`Constraint`],
//!   [`LinExpr`]) for linear programs over bounded continuous, integer, and
//!   binary variables;
//! * a sparse revised bounded-variable simplex ([`solve_lp`]) — CSC
//!   constraint matrix, eta-file basis factorization with periodic
//!   refactorization — with a composite phase 1 (no artificial variables);
//! * warm-started re-solves ([`resolve_lp`], [`solve_mip_warm`]): an
//!   optimal solve returns its [`Basis`], and a re-solve after a bound or
//!   right-hand-side change runs a dual simplex from that basis instead of
//!   a cold start — the access pattern of both branch and bound and the
//!   paper's binary-subdivision latency loop;
//! * a branch-and-bound driver for integer variables with two entry modes,
//!   matching the two ways the paper uses its solver: **feasibility** (return
//!   the first constraint-satisfying integer solution, the paper's
//!   `SolveModel()`) and **optimization** (solve to proven optimality, the
//!   paper's `Result(Optimal)` column).
//!
//! # Examples
//!
//! ```
//! use rtr_milp::{Model, Variable, Constraint, Rel, LinExpr, SolveOptions, Status};
//!
//! # fn main() -> Result<(), rtr_milp::MilpError> {
//! // maximize x + 2y  s.t.  x + y <= 4, x,y in {0..3} integer
//! let mut m = Model::new();
//! let x = m.add_var(Variable::integer(0.0, 3.0).with_name("x"));
//! let y = m.add_var(Variable::integer(0.0, 3.0).with_name("y"));
//! m.add_constraint(Constraint::new(
//!     LinExpr::new() + (1.0, x) + (1.0, y),
//!     Rel::Le,
//!     4.0,
//! ));
//! m.maximize(LinExpr::new() + (1.0, x) + (2.0, y));
//! let outcome = m.solve(&SolveOptions::optimal())?;
//! assert_eq!(outcome.status, Status::Optimal);
//! let sol = outcome.solution.unwrap();
//! assert_eq!(sol.objective, 7.0); // x = 1, y = 3
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never panic on inputs; the CI
// clippy gate denies these two lints for lib targets.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod branch;
mod cuts;
mod error;
mod lpformat;
mod model;
mod presolve;
mod simplex;
mod solution;

pub use branch::{solve_mip, solve_mip_warm};
pub use error::MilpError;
pub use model::{Constraint, LinExpr, Model, Rel, Sense, VarId, VarKind, Variable};
pub use presolve::{presolve, PresolveOutcome, PresolveStats};
pub use simplex::{
    resolve_lp, resolve_lp_priced, resolve_lp_with_deadline, solve_lp, solve_lp_priced,
    solve_lp_with_deadline, Basis, LpOutcome, LpStatus, Pricing, VarStatus,
};
pub use solution::{Outcome, Solution, SolveOptions, SolveStats, Status};
