//! The small-window optimality proof behind `runtime_comparison`, as a CI
//! gate: the 2×2 DCT window on both table devices must be proved to
//! optimality by the exact engine, warm-started and `--cold-start` runs
//! must agree, and (because every assertion is on solver *outcomes*) the
//! whole battery must also hold under ambient `RTR_FAILPOINTS` fault
//! injection on the `milp` sites — the CI `milp-proof` job runs it both
//! ways.

use rtr_bench::DctExperiment;
use rtr_core::model::{IlpModel, ModelOptions};
use rtr_graph::Latency;
use rtr_milp::{solve_mip, SolveOptions, Status};
use rtr_workloads::dct::dct_nxn;

#[test]
fn small_window_proved_optimal_warm_and_cold() {
    let graph = dct_nxn(2).expect("2x2 DCT builds");
    let n = 2;
    let options =
        ModelOptions { minimize_latency: true, include_dmin_cut: false, ..Default::default() };
    for exp in [DctExperiment::table3(), DctExperiment::table5()] {
        let arch = exp.architecture();
        let d_max = rtr_core::max_latency(&graph, &arch, n);
        let ilp = IlpModel::build(&graph, &arch, n, d_max, Latency::ZERO, &options)
            .expect("model builds");

        let warm = solve_mip(ilp.model(), &SolveOptions::optimal()).expect("warm solve runs");
        assert_eq!(warm.status, Status::Optimal, "rmax {}: no optimality proof", exp.r_max);
        assert_eq!(warm.stats.gap_ppm, 0, "rmax {}: proved optimum must close the gap", exp.r_max);

        // `--cold-start` (warm starts disabled) must reach the same proof;
        // only the pivot path may differ.
        let cold_opts = SolveOptions { warm_start: false, ..SolveOptions::optimal() };
        let cold = solve_mip(ilp.model(), &cold_opts).expect("cold solve runs");
        assert_eq!(cold.status, Status::Optimal, "rmax {}", exp.r_max);
        let (w, c) = (warm.solution.expect("optimal"), cold.solution.expect("optimal"));
        assert!(
            (w.objective - c.objective).abs() < 1e-6,
            "rmax {}: warm {} vs cold {}",
            exp.r_max,
            w.objective,
            c.objective
        );
    }
}
