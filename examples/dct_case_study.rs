//! The paper's 4×4 DCT case study end to end: build the 32-task graph,
//! explore at both device sizes, print paper-style refinement logs, and
//! simulate the winner.
//!
//! Run with `cargo run --release --example dct_case_study`.

use rtrpart::graph::{Area, Latency};
use rtrpart::workloads::dct::dct_4x4;
use rtrpart::{
    max_area_partitions, min_area_partitions, Architecture, ExploreParams, SearchLimits,
    TemporalPartitioner,
};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = dct_4x4();
    println!(
        "DCT task graph: {} tasks, {} edges, {} root→leaf paths",
        graph.task_count(),
        graph.edge_count(),
        graph.enumerate_paths(Default::default()).total_path_count().expect("countable")
    );

    for r_max in [576u64, 1024] {
        // C_T = 1 µs: the "reconfiguration comparable to task latency"
        // regime where extra partitions can pay off.
        let arch = Architecture::new(Area::new(r_max), 512, Latency::from_us(1.0));
        println!(
            "\n== R_max = {r_max}: N_min^l = {}, N_min^u = {} ==",
            min_area_partitions(&graph, &arch),
            max_area_partitions(&graph, &arch)
        );
        let params = ExploreParams {
            delta: Latency::from_ns(200.0),
            alpha: 0,
            gamma: 1,
            limits: SearchLimits {
                node_limit: 20_000_000,
                time_limit: Some(Duration::from_secs(4)),
            },
            ..Default::default()
        };
        let partitioner = TemporalPartitioner::new(&graph, &arch, params)?;
        let exploration = partitioner.explore()?;
        println!("{:>3} {:>3} {:>12} {:>12} {:>12}", "N", "I", "Dmin(ns)", "Dmax(ns)", "Da(ns)");
        for r in &exploration.records {
            let result = match &r.result {
                rtrpart::IterationResult::Feasible { latency, eta } => {
                    format!("{:.0}", latency.as_ns() - (arch.reconfig_time() * *eta).as_ns())
                }
                rtrpart::IterationResult::Infeasible => "Inf.".to_owned(),
                rtrpart::IterationResult::LimitReached => "Inf.*".to_owned(),
            };
            println!(
                "{:>3} {:>3} {:>12.0} {:>12.0} {:>12}",
                r.n,
                r.iteration,
                r.d_min_execution(&arch).as_ns(),
                r.d_max_execution(&arch).as_ns(),
                result
            );
        }

        let best = exploration.best.expect("the DCT is feasible at these sizes");
        println!("\nbest: {}", best.summary(&graph, &arch));
        let report = rtrpart::sim::simulate(&graph, &arch, &best)?;
        println!(
            "simulator confirms: total {} across {} configurations, peak memory {} words",
            report.total_latency,
            report.partitions_used(),
            report.peak_memory
        );
        assert_eq!(report.total_latency, exploration.best_latency.unwrap());
    }
    Ok(())
}
