//! Sparse revised bounded-variable simplex with warm-started re-solves.
//!
//! The solver keeps the classic bounded-variable method of the original
//! dense-tableau implementation — slack columns encode the row relations,
//! infeasible basics are driven home by a *composite phase 1* (piecewise
//! infeasibility costs in `{-1, 0, +1}`, no artificial columns), nonbasic
//! variables may *bound-flip* without a basis change, and Dantzig pricing
//! switches to Bland's rule after a run of degenerate pivots — but replaces
//! the `m × (n + m)` tableau with a *revised* formulation:
//!
//! * the constraint matrix `[A | I]` is stored once in compressed sparse
//!   column (CSC) form and never modified;
//! * the basis inverse is represented as a product-form *eta file*: every
//!   pivot appends one elementary eta matrix, and `B⁻¹v` / `yᵀB⁻¹` are
//!   computed by [`ftran`] / [`btran`] sweeps over the file;
//! * the file is rebuilt from the basis columns (with partial pivoting)
//!   every [`REFACTOR_INTERVAL`] pivots, which bounds both fill-in and
//!   numerical drift; basic values are recomputed from scratch at each
//!   refactorization.
//!
//! On top of this sits the warm-start API used by branch and bound and by
//! the paper's binary-subdivision loop, whose successive solves differ only
//! in variable bounds or a single latency RHS:
//!
//! * [`solve_lp`] returns the optimal [`Basis`] (column statuses plus the
//!   row → column assignment);
//! * [`resolve_lp`] re-solves from a parent basis: bound/RHS changes leave
//!   the parent basis *dual feasible*, so a **dual simplex** drives the few
//!   newly infeasible basics out — typically one pivot per branching
//!   decision instead of a full cold solve;
//! * any trouble (stale basis, singular refactorization, dual stall or
//!   budget overrun) falls back to a cold primal solve, so a warm entry can
//!   never produce a different status or objective than a cold one.

use crate::error::MilpError;
use crate::model::{effective_bounds, Model, Rel, Sense};
use std::time::Instant;

/// Ratio-test pivots smaller than this are skipped as numerically unsafe.
const PIV_EPS: f64 = 1e-9;
/// Refactorization declares the basis singular below this pivot magnitude.
const SING_EPS: f64 = 1e-10;
/// Degenerate-pivot run length that triggers Bland's anti-cycling rule.
const BLAND_AFTER: usize = 60;
/// Pivots between basis refactorizations.
const REFACTOR_INTERVAL: usize = 64;
/// Dual pivots without primal-infeasibility progress before the warm solve
/// gives up and falls back to a cold primal.
const DUAL_STALL_LIMIT: usize = 1000;
/// Devex/steepest-edge reference weights above this trigger a framework
/// reset (all weights back to 1, counted in `LpOutcome::devex_resets`).
const DEVEX_RESET_LIMIT: f64 = 1e7;
/// Row count below which eta factors always stay sparse: the dense kernel
/// only pays off when a contiguous sweep amortizes its setup.
const DENSE_ETA_MIN_M: usize = 64;
/// An eta factor whose off-pivot fill reaches `m / DENSE_ETA_FRAC` is stored
/// as a dense block.
const DENSE_ETA_FRAC: usize = 4;

/// Primal pricing rule for selecting the entering column.
///
/// All three rules reach the same optimal objective (the simplex is exact
/// regardless of pricing); they differ only in pivot counts. Selection is
/// deterministic under every rule: scores are compared exactly and ties
/// keep the lowest column index, and the devex/steepest-edge reference
/// frameworks are seeded only by pivot history, so repeated runs are
/// bit-identical. Bland's anti-cycling rule overrides all of them after a
/// long degenerate run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pricing {
    /// Classic most-negative reduced cost. Cheapest per iteration, worst
    /// pivot counts on degenerate models; kept for differential testing.
    Dantzig,
    /// Devex reference-framework pricing (Forrest–Goldfarb): approximate
    /// steepest-edge weights maintained from the pivot row, reset to the
    /// unit framework when they overflow. The default.
    #[default]
    Devex,
    /// Exact-initialization steepest edge with Goldfarb–Reid updates. One
    /// extra BTRAN per pivot over devex; best pivot counts, highest cost
    /// per iteration.
    SteepestEdge,
}

/// Status of an LP relaxation solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A wall-clock deadline fired mid-solve; no conclusion was reached.
    Interrupted,
}

/// Position of a column (structural variable or row slack) relative to the
/// current basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarStatus {
    /// In the basis; its value is determined by the constraint system.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable parked at zero.
    Free,
}

/// A simplex basis snapshot: enough to warm-start a re-solve after bound or
/// right-hand-side changes.
///
/// Columns are indexed structurals-first: `0..n` are the model's variables,
/// `n..n+m` the row slacks. The row → column assignment in `order` is
/// advisory — [`resolve_lp`] refactorizes on entry and may re-pair rows —
/// but the *set* of basic columns is what carries the warm-start value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Status of every column (`n` structurals followed by `m` slacks).
    pub statuses: Vec<VarStatus>,
    /// `order[i]` is the column basic in row `i`.
    pub order: Vec<usize>,
}

/// Result of an LP relaxation solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpOutcome {
    /// Why the solve stopped.
    pub status: LpStatus,
    /// Values of the structural variables (empty unless `Optimal`).
    pub values: Vec<f64>,
    /// Objective value in the model's original sense (0 unless `Optimal`).
    pub objective: f64,
    /// Simplex iterations performed (including any warm attempt that fell
    /// back to a cold solve).
    pub iterations: usize,
    /// The optimal basis, present iff `status` is [`LpStatus::Optimal`].
    pub basis: Option<Basis>,
    /// Basis refactorizations performed.
    pub refactorizations: usize,
    /// Devex / steepest-edge reference-framework resets performed.
    pub devex_resets: usize,
    /// `true` if the solve ran from a supplied warm basis without falling
    /// back to a cold start.
    pub warm: bool,
}

/// Header of one elementary (eta) factor: pivot position plus where its
/// off-pivot entries live in the [`EtaFile`] arenas.
#[derive(Debug, Clone, Copy)]
struct EtaHead {
    r: u32,
    pivot: f64,
    start: u32,
    len: u32,
    dense: bool,
}

/// The product-form basis inverse as a flat arena of eta factors.
///
/// Instead of one `Vec<(usize, f64)>` allocation per factor, all sparse
/// entries share two contiguous arenas (`sp_rows`/`sp_vals`) and factors
/// whose fill crosses a sparsity threshold (`len ≥ m / DENSE_ETA_FRAC`,
/// `m ≥ DENSE_ETA_MIN_M`) are stored as full dense `m`-blocks in `dn_vals`.
/// The FTRAN/BTRAN hot loops over a dense block are straight-line sweeps
/// over contiguous `f64` slices — exactly the shape the autovectorizer
/// handles without any explicit SIMD — while near-empty factors keep the
/// cheap sparse path. The representation of each factor is a pure function
/// of its contents, so runs remain bit-identical.
#[derive(Debug, Clone, Default)]
struct EtaFile {
    m: usize,
    heads: Vec<EtaHead>,
    sp_rows: Vec<u32>,
    sp_vals: Vec<f64>,
    dn_vals: Vec<f64>,
}

impl EtaFile {
    fn new(m: usize) -> Self {
        EtaFile {
            m,
            heads: Vec::new(),
            sp_rows: Vec::new(),
            sp_vals: Vec::new(),
            dn_vals: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.heads.len()
    }

    fn clear(&mut self) {
        self.heads.clear();
        self.sp_rows.clear();
        self.sp_vals.clear();
        self.dn_vals.clear();
    }

    /// Appends the eta for a pivot on row `r` of the ftran'd column `w`,
    /// skipping exact identity factors (slack self-pivots).
    fn push(&mut self, r: usize, w: &[f64]) {
        let nnz = w.iter().enumerate().filter(|&(i, &v)| i != r && v != 0.0).count();
        if nnz == 0 && w[r] == 1.0 {
            return;
        }
        let dense = self.m >= DENSE_ETA_MIN_M && nnz * DENSE_ETA_FRAC >= self.m;
        if dense {
            let start = self.dn_vals.len();
            self.dn_vals.extend_from_slice(w);
            self.dn_vals[start + r] = 0.0;
            self.heads.push(EtaHead {
                r: r as u32,
                pivot: w[r],
                start: start as u32,
                len: self.m as u32,
                dense: true,
            });
        } else {
            let start = self.sp_rows.len();
            for (i, &v) in w.iter().enumerate() {
                if i != r && v != 0.0 {
                    self.sp_rows.push(i as u32);
                    self.sp_vals.push(v);
                }
            }
            self.heads.push(EtaHead {
                r: r as u32,
                pivot: w[r],
                start: start as u32,
                len: nnz as u32,
                dense: false,
            });
        }
    }

    /// Applies the eta file forward: `v ← B⁻¹ v`.
    fn ftran(&self, v: &mut [f64]) {
        for h in &self.heads {
            let r = h.r as usize;
            let t = v[r];
            if t == 0.0 {
                continue;
            }
            let t = t / h.pivot;
            if h.dense {
                let blk = &self.dn_vals[h.start as usize..h.start as usize + self.m];
                for (vi, wi) in v.iter_mut().zip(blk) {
                    *vi -= wi * t;
                }
            } else {
                let s = h.start as usize;
                let e = s + h.len as usize;
                for (&i, &w) in self.sp_rows[s..e].iter().zip(&self.sp_vals[s..e]) {
                    v[i as usize] -= w * t;
                }
            }
            v[r] = t;
        }
    }

    /// Applies the eta file in reverse: `vᵀ ← vᵀ B⁻¹`.
    fn btran(&self, v: &mut [f64]) {
        for h in self.heads.iter().rev() {
            let r = h.r as usize;
            let mut t = v[r];
            if h.dense {
                let blk = &self.dn_vals[h.start as usize..h.start as usize + self.m];
                let mut acc = 0.0f64;
                for (vi, wi) in v.iter().zip(blk) {
                    acc += vi * wi;
                }
                t -= acc;
            } else {
                let s = h.start as usize;
                let e = s + h.len as usize;
                for (&i, &w) in self.sp_rows[s..e].iter().zip(&self.sp_vals[s..e]) {
                    t -= v[i as usize] * w;
                }
            }
            v[r] = t / h.pivot;
        }
    }
}

/// Outcome of a dual-simplex warm attempt.
enum DualRun {
    /// The dual loop reached a conclusion.
    Finished(LpOutcome),
    /// Numerical trouble, stall, or budget overrun: restart cold.
    Fallback,
}

enum Built<'a> {
    Ready(Box<Solver<'a>>),
    /// Bound tightening crossed a variable's bounds: trivially infeasible.
    Crossed,
}

/// Revised-simplex working state over the CSC matrix `[A | I]`.
struct Solver<'a> {
    model: &'a Model,
    n: usize,
    m: usize,
    total: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    col_val: Vec<f64>,
    b: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    x: Vec<f64>,
    at_upper: Vec<bool>,
    is_basic: Vec<bool>,
    order: Vec<usize>,
    etas: EtaFile,
    pivots_since_refactor: usize,
    refactorizations: usize,
    iterations: usize,
    devex_resets: usize,
    tol: f64,
}

/// Pricing weights for the devex / steepest-edge reference frameworks.
/// Empty (and unused) under Dantzig.
struct PriceState {
    rule: Pricing,
    weights: Vec<f64>,
}

impl<'a> Solver<'a> {
    fn build(model: &'a Model, bounds_override: Option<&[(f64, f64)]>, tol: f64) -> Built<'a> {
        let n = model.vars.len();
        let m = model.constraints.len();
        let total = n + m;

        let mut lb = vec![0.0f64; total];
        let mut ub = vec![0.0f64; total];
        for (j, v) in model.vars.iter().enumerate() {
            let (lo, hi) = match bounds_override {
                Some(b) => b[j],
                None => effective_bounds(v),
            };
            lb[j] = lo;
            ub[j] = hi;
            if lo > hi {
                return Built::Crossed;
            }
        }
        for (i, c) in model.constraints.iter().enumerate() {
            let (lo, hi) = match c.rel {
                Rel::Le => (0.0, f64::INFINITY),
                Rel::Ge => (f64::NEG_INFINITY, 0.0),
                Rel::Eq => (0.0, 0.0),
            };
            lb[n + i] = lo;
            ub[n + i] = hi;
        }

        let sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cost = vec![0.0f64; total];
        for (v, c) in model.objective.normalized() {
            cost[v.index()] = sign * c;
        }

        // CSC of [A | I]: structural entries gathered per column, then one
        // unit entry per slack.
        let mut entries: Vec<(usize, usize, f64)> = Vec::new();
        let mut b = vec![0.0f64; m];
        for (i, c) in model.constraints.iter().enumerate() {
            for (v, coeff) in c.expr.normalized() {
                entries.push((v.index(), i, coeff));
            }
            b[i] = c.rhs;
        }
        entries.sort_by_key(|e| (e.0, e.1));
        let mut col_ptr = vec![0usize; total + 1];
        let mut row_idx = Vec::with_capacity(entries.len() + m);
        let mut col_val = Vec::with_capacity(entries.len() + m);
        let mut cursor = 0usize;
        for (j, ptr) in col_ptr.iter_mut().enumerate().take(total) {
            *ptr = row_idx.len();
            if j < n {
                while cursor < entries.len() && entries[cursor].0 == j {
                    row_idx.push(entries[cursor].1);
                    col_val.push(entries[cursor].2);
                    cursor += 1;
                }
            } else {
                row_idx.push(j - n);
                col_val.push(1.0);
            }
        }
        col_ptr[total] = row_idx.len();

        Built::Ready(Box::new(Solver {
            model,
            n,
            m,
            total,
            col_ptr,
            row_idx,
            col_val,
            b,
            lb,
            ub,
            cost,
            x: vec![0.0; total],
            at_upper: vec![false; total],
            is_basic: vec![false; total],
            order: (n..total).collect(),
            etas: EtaFile::new(m),
            pivots_since_refactor: 0,
            refactorizations: 0,
            iterations: 0,
            devex_resets: 0,
            tol,
        }))
    }

    fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.col_val[s..e])
    }

    fn scatter(&self, j: usize, out: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&i, &v) in rows.iter().zip(vals) {
            out[i] += v;
        }
    }

    fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&i, &v)| y[i] * v).sum()
    }

    fn is_fixed(&self, j: usize) -> bool {
        self.lb[j].is_finite() && self.ub[j].is_finite() && self.ub[j] - self.lb[j] <= self.tol
    }

    /// Parks every nonbasic column at a finite bound (free columns at 0),
    /// mirroring the cold-start rule of the dense implementation.
    fn reset_nonbasic_x(&mut self) {
        for j in 0..self.total {
            if self.is_basic[j] {
                continue;
            }
            if self.lb[j].is_finite() {
                self.x[j] = self.lb[j];
                self.at_upper[j] = false;
            } else if self.ub[j].is_finite() {
                self.x[j] = self.ub[j];
                self.at_upper[j] = true;
            } else {
                self.x[j] = 0.0;
                self.at_upper[j] = false;
            }
        }
    }

    /// Solves `B x_B = b - N x_N` through the eta file and stores the basic
    /// values.
    fn compute_basic_values(&mut self) {
        let mut r = self.b.clone();
        for j in 0..self.total {
            if !self.is_basic[j] && self.x[j] != 0.0 {
                let (rows, vals) = (
                    &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]],
                    &self.col_val[self.col_ptr[j]..self.col_ptr[j + 1]],
                );
                for (&i, &v) in rows.iter().zip(vals.iter()) {
                    r[i] -= v * self.x[j];
                }
            }
        }
        self.etas.ftran(&mut r);
        for (&k, &value) in self.order.iter().zip(r.iter()) {
            self.x[k] = value;
        }
    }

    /// Installs the all-slack identity basis (the cold start).
    fn install_slack_basis(&mut self) {
        self.etas.clear();
        self.is_basic = vec![false; self.total];
        self.order = (self.n..self.total).collect();
        for i in 0..self.m {
            self.is_basic[self.n + i] = true;
        }
        self.reset_nonbasic_x();
        self.compute_basic_values();
        self.pivots_since_refactor = 0;
    }

    /// Installs a caller-supplied basis: validates it, refactorizes, and
    /// recomputes the basic values. Returns `false` (leaving the solver in
    /// an unspecified state) if the basis is stale or singular.
    fn install_basis(&mut self, basis: &Basis) -> bool {
        // Fault-injection site: a rejected warm basis falls back to the cold
        // start, so forcing `false` here must never change the solution.
        if rtr_trace::failpoint::failpoint("milp.warm_basis", basis.order.len() as u64) {
            return false;
        }
        if basis.statuses.len() != self.total || basis.order.len() != self.m {
            return false;
        }
        let mut seen = vec![false; self.total];
        for &c in &basis.order {
            if c >= self.total || basis.statuses[c] != VarStatus::Basic || seen[c] {
                return false;
            }
            seen[c] = true;
        }
        if basis.statuses.iter().filter(|&&s| s == VarStatus::Basic).count() != self.m {
            return false;
        }
        for j in 0..self.total {
            self.is_basic[j] = basis.statuses[j] == VarStatus::Basic;
        }
        self.order.clone_from(&basis.order);
        for j in 0..self.total {
            if self.is_basic[j] {
                continue;
            }
            match basis.statuses[j] {
                VarStatus::AtUpper if self.ub[j].is_finite() => {
                    self.x[j] = self.ub[j];
                    self.at_upper[j] = true;
                }
                VarStatus::AtLower | VarStatus::AtUpper if self.lb[j].is_finite() => {
                    self.x[j] = self.lb[j];
                    self.at_upper[j] = false;
                }
                VarStatus::AtLower if self.ub[j].is_finite() => {
                    self.x[j] = self.ub[j];
                    self.at_upper[j] = true;
                }
                _ => {
                    self.x[j] = 0.0;
                    self.at_upper[j] = false;
                }
            }
        }
        if !self.refactorize() {
            return false;
        }
        self.compute_basic_values();
        true
    }

    /// Rebuilds the eta file from the basis columns with partial pivoting
    /// (sparsest column first, largest available pivot per column). May
    /// re-pair rows and columns; `order` is updated accordingly. Returns
    /// `false` on a (numerically) singular basis.
    fn refactorize(&mut self) -> bool {
        // Fault-injection site: callers treat a failed refactorization as a
        // numerically singular basis and recover (cold restart or retry at
        // the next pivot), so forcing `false` must never change the solution.
        if rtr_trace::failpoint::failpoint(
            "milp.refactorize",
            (self.refactorizations as u64).wrapping_mul(31).wrapping_add(self.etas.len() as u64),
        ) {
            return false;
        }
        self.etas.clear();
        let m = self.m;
        let mut row_used = vec![false; m];
        let mut new_order = vec![usize::MAX; m];
        let mut cols = self.order.clone();
        cols.sort_by_key(|&c| (self.col_ptr[c + 1] - self.col_ptr[c], c));
        for &c in &cols {
            let mut w = vec![0.0f64; m];
            self.scatter(c, &mut w);
            self.etas.ftran(&mut w);
            let mut best_row = usize::MAX;
            let mut best_abs = SING_EPS;
            for (i, used) in row_used.iter().enumerate() {
                if !used {
                    let a = w[i].abs();
                    if a > best_abs {
                        best_abs = a;
                        best_row = i;
                    }
                }
            }
            if best_row == usize::MAX {
                return false;
            }
            row_used[best_row] = true;
            new_order[best_row] = c;
            self.etas.push(best_row, &w);
        }
        self.order = new_order;
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
        true
    }

    /// Appends the pivot eta and refactorizes on cadence.
    fn after_pivot(&mut self, r: usize, w: &[f64]) {
        self.etas.push(r, w);
        rtr_trace::status::board().add_lp_pivots(1);
        self.pivots_since_refactor += 1;
        if self.pivots_since_refactor >= REFACTOR_INTERVAL {
            // A refactorization failure here would be purely numerical (every
            // appended pivot was >= PIV_EPS); keep the eta file and retry at
            // the next pivot rather than aborting the solve.
            if self.refactorize() {
                self.compute_basic_values();
            }
        }
    }

    fn snapshot_basis(&self) -> Basis {
        let statuses = (0..self.total)
            .map(|j| {
                if self.is_basic[j] {
                    VarStatus::Basic
                } else if self.at_upper[j] {
                    VarStatus::AtUpper
                } else if self.lb[j].is_finite() {
                    VarStatus::AtLower
                } else if self.ub[j].is_finite() {
                    VarStatus::AtUpper
                } else {
                    VarStatus::Free
                }
            })
            .collect();
        Basis { statuses, order: self.order.clone() }
    }

    fn finished(&self, status: LpStatus, warm: bool) -> LpOutcome {
        let (values, objective, basis) = if status == LpStatus::Optimal {
            let values: Vec<f64> = self.x[..self.n].to_vec();
            let objective = self.model.objective.eval(&values);
            (values, objective, Some(self.snapshot_basis()))
        } else {
            (Vec::new(), 0.0, None)
        };
        LpOutcome {
            status,
            values,
            objective,
            iterations: self.iterations,
            basis,
            refactorizations: self.refactorizations,
            devex_resets: self.devex_resets,
            warm,
        }
    }

    /// `true` if the current basis prices out dual feasible (no primal
    /// entering candidate exists under the phase-2 costs) — the
    /// precondition for running the dual simplex.
    fn dual_feasible(&self) -> bool {
        let mut y: Vec<f64> = self.order.iter().map(|&k| self.cost[k]).collect();
        self.etas.btran(&mut y);
        for j in 0..self.total {
            if self.is_basic[j] || self.is_fixed(j) {
                continue;
            }
            let d = self.cost[j] - self.dot_col(j, &y);
            let free = !self.lb[j].is_finite() && !self.ub[j].is_finite();
            if free {
                if d.abs() > self.tol {
                    return false;
                }
            } else if self.at_upper[j] {
                if d > self.tol {
                    return false;
                }
            } else if d < -self.tol {
                return false;
            }
        }
        true
    }

    /// Initializes the pricing weights: the unit reference framework for
    /// devex, exact column norms (`1 + ‖a_j‖²`, the steepest-edge gammas at
    /// the slack basis) for steepest edge, nothing for Dantzig.
    fn init_price_state(&self, rule: Pricing) -> PriceState {
        let weights = match rule {
            Pricing::Dantzig => Vec::new(),
            Pricing::Devex => vec![1.0; self.total],
            Pricing::SteepestEdge => (0..self.total)
                .map(|j| {
                    let (_, vals) = self.col(j);
                    1.0 + vals.iter().map(|v| v * v).sum::<f64>()
                })
                .collect(),
        };
        PriceState { rule, weights }
    }

    /// Updates the devex / steepest-edge reference weights for the pivot
    /// (entering column `q` on row `r`, ftran'd column `w`). Must run
    /// *before* the basis is mutated: it needs the pre-pivot eta file and
    /// nonbasic set. Weight overflow resets the framework and is counted.
    fn update_price_weights(&mut self, price: &mut PriceState, q: usize, r: usize, w: &[f64]) {
        if price.rule == Pricing::Dantzig {
            return;
        }
        let alpha_q = w[r];
        if alpha_q.abs() <= PIV_EPS {
            return;
        }
        let mut rho = vec![0.0f64; self.m];
        rho[r] = 1.0;
        self.etas.btran(&mut rho);
        // Steepest edge also needs v = B⁻ᵀ(B⁻¹ a_q) for the Goldfarb–Reid
        // cross term.
        let v_se = if price.rule == Pricing::SteepestEdge {
            let mut v = w.to_vec();
            self.etas.btran(&mut v);
            Some(v)
        } else {
            None
        };
        let gamma_q = price.weights[q].max(1.0);
        let mut max_w = 0.0f64;
        for j in 0..self.total {
            if j == q || self.is_basic[j] || self.is_fixed(j) {
                continue;
            }
            let alpha_j = self.dot_col(j, &rho);
            if alpha_j == 0.0 {
                continue;
            }
            let ratio = alpha_j / alpha_q;
            let wj = &mut price.weights[j];
            match price.rule {
                Pricing::Devex => {
                    let cand = ratio * ratio * gamma_q;
                    if cand > *wj {
                        *wj = cand;
                    }
                }
                Pricing::SteepestEdge => {
                    if let Some(v) = &v_se {
                        let aj_v = self.dot_col(j, v);
                        let next = *wj - 2.0 * ratio * aj_v + ratio * ratio * gamma_q;
                        *wj = next.max(1.0 + ratio * ratio);
                    }
                }
                Pricing::Dantzig => {}
            }
            if *wj > max_w {
                max_w = *wj;
            }
        }
        // The leaving variable re-enters the nonbasic set with the reference
        // weight induced by the pivot; the entering column's slot resets.
        let leaving = self.order[r];
        price.weights[leaving] = (gamma_q / (alpha_q * alpha_q)).max(1.0);
        price.weights[q] = 1.0;
        if max_w > DEVEX_RESET_LIMIT {
            for wj in &mut price.weights {
                *wj = 1.0;
            }
            self.devex_resets += 1;
            rtr_trace::status::board().add_lp_devex_resets(1);
        }
    }

    /// The bounded-variable primal simplex with composite phase 1, run from
    /// whatever basis is currently installed.
    fn primal(
        &mut self,
        limit: usize,
        deadline: Option<Instant>,
        warm: bool,
        pricing: Pricing,
    ) -> Result<LpOutcome, MilpError> {
        let tol = self.tol;
        let mut price = self.init_price_state(pricing);
        let mut degenerate_run = 0usize;
        loop {
            if self.iterations >= limit {
                return Err(MilpError::IterationLimit { limit });
            }
            if let Some(deadline) = deadline {
                if self.iterations.is_multiple_of(16) && Instant::now() >= deadline {
                    return Ok(self.finished(LpStatus::Interrupted, warm));
                }
            }
            self.iterations += 1;

            // Phase detection and composite phase-1 costs on the basis.
            let mut phase1 = false;
            let mut c_b = vec![0.0f64; self.m];
            for (ci, &k) in c_b.iter_mut().zip(&self.order) {
                if self.x[k] < self.lb[k] - tol {
                    *ci = -1.0;
                    phase1 = true;
                } else if self.x[k] > self.ub[k] + tol {
                    *ci = 1.0;
                    phase1 = true;
                }
            }
            if !phase1 {
                for (ci, &k) in c_b.iter_mut().zip(&self.order) {
                    *ci = self.cost[k];
                }
            }

            // Simplex multipliers y = c_B B⁻¹, then reduced costs per column.
            let mut y = c_b;
            self.etas.btran(&mut y);

            let use_bland = degenerate_run > BLAND_AFTER;
            let mut entering: Option<(usize, f64, f64)> = None; // (col, score, direction)
            for j in 0..self.total {
                if self.is_basic[j] {
                    continue;
                }
                let cj = if phase1 { 0.0 } else { self.cost[j] };
                let d = cj - self.dot_col(j, &y);
                let lower_finite = self.lb[j].is_finite();
                let upper_finite = self.ub[j].is_finite();
                if lower_finite && upper_finite && self.ub[j] - self.lb[j] <= tol {
                    continue; // fixed variable
                }
                let dir = if !lower_finite && !upper_finite {
                    // Free variable: move against the gradient.
                    if d < -tol {
                        1.0
                    } else if d > tol {
                        -1.0
                    } else {
                        continue;
                    }
                } else if self.at_upper[j] {
                    if d > tol {
                        -1.0
                    } else {
                        continue;
                    }
                } else if d < -tol {
                    1.0
                } else {
                    continue;
                };
                if use_bland {
                    entering = Some((j, d.abs(), dir));
                    break;
                }
                // Dantzig scores by |d|; devex / steepest edge by d²/γ_j.
                // Exact comparison with first-lowest-index ties keeps the
                // selection deterministic under every rule.
                let score = match price.rule {
                    Pricing::Dantzig => d.abs(),
                    Pricing::Devex | Pricing::SteepestEdge => d * d / price.weights[j],
                };
                match entering {
                    Some((_, best, _)) if best >= score => {}
                    _ => entering = Some((j, score, dir)),
                }
            }

            let Some((q, _, dir)) = entering else {
                if phase1 {
                    return Ok(self.finished(LpStatus::Infeasible, warm));
                }
                return Ok(self.finished(LpStatus::Optimal, warm));
            };

            // Transformed entering column w = B⁻¹ a_q.
            let mut w = vec![0.0f64; self.m];
            self.scatter(q, &mut w);
            self.etas.ftran(&mut w);

            // Ratio test: entering q moves by step >= 0 in direction `dir`;
            // basic i changes at rate -dir * w[i].
            let own_range = self.ub[q] - self.lb[q]; // may be infinite
            let mut best_step = if own_range.is_finite() { own_range } else { f64::INFINITY };
            let mut blocking: Option<(usize, f64)> = None; // (row, bound the leaving var hits)
            for (i, &alpha) in w.iter().enumerate() {
                if alpha.abs() <= PIV_EPS {
                    continue;
                }
                let rate = -dir * alpha;
                let k = self.order[i];
                let v = self.x[k];
                let (limit_bound, dist) = if rate > 0.0 {
                    // Basic increases: infeasible-low basics block when they
                    // reach their lower bound; infeasible-high basics move
                    // further out and never block (phase 1 pricing guarantees
                    // a net infeasibility decrease); feasible basics block at
                    // their upper bound.
                    if v < self.lb[k] - tol {
                        (self.lb[k], self.lb[k] - v)
                    } else if v > self.ub[k] + tol {
                        continue;
                    } else if self.ub[k].is_finite() {
                        (self.ub[k], (self.ub[k] - v).max(0.0))
                    } else {
                        continue;
                    }
                } else {
                    // Basic decreases: mirror image of the above.
                    if v > self.ub[k] + tol {
                        (self.ub[k], v - self.ub[k])
                    } else if v < self.lb[k] - tol {
                        continue;
                    } else if self.lb[k].is_finite() {
                        (self.lb[k], (v - self.lb[k]).max(0.0))
                    } else {
                        continue;
                    }
                };
                let step = dist / rate.abs();
                if step < best_step - 1e-12 {
                    best_step = step;
                    blocking = Some((i, limit_bound));
                } else if step <= best_step + 1e-12 && use_bland {
                    // Bland tie-break: prefer the lowest leaving index.
                    if let Some((bi, _)) = blocking {
                        if self.order[i] < self.order[bi] {
                            blocking = Some((i, limit_bound));
                        }
                    }
                }
            }

            if best_step.is_infinite() {
                debug_assert!(!phase1, "phase 1 must always have a blocking bound");
                return Ok(self.finished(LpStatus::Unbounded, warm));
            }

            if best_step <= tol {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            match blocking {
                None => {
                    // Bound flip of the entering variable.
                    let step = best_step;
                    for (i, &alpha) in w.iter().enumerate() {
                        if alpha != 0.0 {
                            self.x[self.order[i]] -= dir * step * alpha;
                        }
                    }
                    self.x[q] += dir * step;
                    self.at_upper[q] = !self.at_upper[q];
                }
                Some((r, leave_bound)) => {
                    self.update_price_weights(&mut price, q, r, &w);
                    let step = best_step;
                    for (i, &alpha) in w.iter().enumerate() {
                        if i == r {
                            continue;
                        }
                        if alpha != 0.0 {
                            self.x[self.order[i]] -= dir * step * alpha;
                        }
                    }
                    let leaving = self.order[r];
                    self.x[q] += dir * step;
                    self.x[leaving] = leave_bound;
                    self.at_upper[leaving] = (leave_bound - self.ub[leaving]).abs() <= tol
                        && self.ub[leaving].is_finite();
                    self.is_basic[leaving] = false;
                    self.is_basic[q] = true;
                    self.order[r] = q;
                    self.after_pivot(r, &w);
                }
            }
        }
    }

    /// Bounded-variable dual simplex from a dual-feasible basis: repeatedly
    /// kicks the most infeasible basic out at its violated bound, choosing
    /// the entering column by the dual ratio test so dual feasibility is
    /// preserved. This is the warm-start workhorse — after a branching bound
    /// change or a latency-RHS move the parent basis is dual feasible and
    /// typically one or two pivots from the child optimum.
    fn dual(&mut self, limit: usize, deadline: Option<Instant>) -> DualRun {
        let tol = self.tol;
        let mut degenerate_run = 0usize;
        let mut stall = 0usize;
        let mut best_inf = f64::INFINITY;
        let mut retried_refactor = false;
        loop {
            if self.iterations >= limit {
                return DualRun::Fallback;
            }
            if let Some(deadline) = deadline {
                if self.iterations.is_multiple_of(16) && Instant::now() >= deadline {
                    return DualRun::Finished(self.finished(LpStatus::Interrupted, true));
                }
            }

            // Leaving row: the most bound-violating basic (smallest variable
            // index once Bland's rule kicks in).
            let use_bland = degenerate_run > BLAND_AFTER;
            let mut r = usize::MAX;
            let mut best_viol = tol;
            let mut total_viol = 0.0f64;
            for i in 0..self.m {
                let k = self.order[i];
                let v = self.x[k];
                let viol = if v < self.lb[k] - tol {
                    self.lb[k] - v
                } else if v > self.ub[k] + tol {
                    v - self.ub[k]
                } else {
                    continue;
                };
                total_viol += viol;
                if use_bland {
                    if r == usize::MAX || k < self.order[r] {
                        r = i;
                    }
                } else if viol > best_viol {
                    best_viol = viol;
                    r = i;
                }
            }
            if r == usize::MAX {
                // Primal feasible and dual feasibility was maintained by the
                // ratio test: optimal.
                return DualRun::Finished(self.finished(LpStatus::Optimal, true));
            }
            if total_viol < best_inf - 1e-12 {
                best_inf = total_viol;
                stall = 0;
            } else {
                stall += 1;
                if stall > DUAL_STALL_LIMIT {
                    return DualRun::Fallback;
                }
            }
            self.iterations += 1;

            let k_leave = self.order[r];
            let to_lower = self.x[k_leave] < self.lb[k_leave];
            let target = if to_lower { self.lb[k_leave] } else { self.ub[k_leave] };

            // Row r of B⁻¹A via ρ = B⁻ᵀ e_r, and phase-2 multipliers for the
            // dual ratio test.
            let mut rho = vec![0.0f64; self.m];
            rho[r] = 1.0;
            self.etas.btran(&mut rho);
            let mut y: Vec<f64> = self.order.iter().map(|&k| self.cost[k]).collect();
            self.etas.btran(&mut y);

            // Entering column: eligible sign, minimal dual ratio |d|/|α|;
            // ties prefer the larger pivot (smallest index under Bland).
            let mut q = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            let mut best_alpha = 0.0f64;
            for j in 0..self.total {
                if self.is_basic[j] || self.is_fixed(j) {
                    continue;
                }
                let alpha = self.dot_col(j, &rho);
                if alpha.abs() <= PIV_EPS {
                    continue;
                }
                let free = !self.lb[j].is_finite() && !self.ub[j].is_finite();
                // x_B[r] changes by -α_j per unit of x_j: pick the movement
                // direction of x_j that drives x_B[r] toward its violated
                // bound, and check that direction is allowed by j's status.
                let dxj_sign = if free {
                    if (to_lower && alpha < 0.0) || (!to_lower && alpha > 0.0) {
                        1.0
                    } else {
                        -1.0
                    }
                } else if self.at_upper[j] {
                    -1.0
                } else {
                    1.0
                };
                let movement = -alpha * dxj_sign;
                let helps = if to_lower { movement > 0.0 } else { movement < 0.0 };
                if !helps {
                    continue;
                }
                let d = self.cost[j] - self.dot_col(j, &y);
                let ratio = (d * dxj_sign).max(0.0) / alpha.abs();
                let better = if q == usize::MAX || ratio < best_ratio - 1e-12 {
                    true
                } else if ratio <= best_ratio + 1e-12 {
                    if use_bland {
                        j < q
                    } else {
                        alpha.abs() > best_alpha
                    }
                } else {
                    false
                };
                if better {
                    q = j;
                    best_ratio = best_ratio.min(ratio);
                    best_alpha = alpha.abs();
                }
            }
            if q == usize::MAX {
                // Dual unbounded: no entering column can repair row r, so the
                // primal is infeasible.
                return DualRun::Finished(self.finished(LpStatus::Infeasible, true));
            }

            let mut w = vec![0.0f64; self.m];
            self.scatter(q, &mut w);
            self.etas.ftran(&mut w);
            if w[r].abs() <= PIV_EPS {
                // ρ disagreed with the ftran'd column: numerical drift.
                // Refactorize once and retry; give up to the cold path if it
                // happens again.
                if retried_refactor || !self.refactorize() {
                    return DualRun::Fallback;
                }
                self.compute_basic_values();
                retried_refactor = true;
                continue;
            }
            retried_refactor = false;

            // The leaving basic moves exactly to its violated bound.
            let t = (self.x[k_leave] - target) / w[r];
            for (i, &alpha) in w.iter().enumerate() {
                if i != r && alpha != 0.0 {
                    self.x[self.order[i]] -= alpha * t;
                }
            }
            self.x[q] += t;
            self.x[k_leave] = target;
            self.at_upper[k_leave] = !to_lower;
            self.is_basic[k_leave] = false;
            self.is_basic[q] = true;
            self.order[r] = q;
            if best_ratio <= tol {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }
            self.after_pivot(r, &w);
        }
    }
}

fn auto_limit(model: &Model, iteration_limit: usize) -> usize {
    if iteration_limit == 0 {
        400 * (model.constraints.len() + model.vars.len()) + 2000
    } else {
        iteration_limit
    }
}

fn trivially_infeasible(warm: bool) -> LpOutcome {
    LpOutcome {
        status: LpStatus::Infeasible,
        values: Vec::new(),
        objective: 0.0,
        iterations: 0,
        basis: None,
        refactorizations: 0,
        devex_resets: 0,
        warm,
    }
}

/// Solves the LP relaxation of `model` (integrality dropped), optionally
/// overriding the structural variable bounds (used by branch and bound).
///
/// `tol` is the feasibility/optimality tolerance; `iteration_limit` of 0
/// selects an automatic limit. On [`LpStatus::Optimal`] the outcome carries
/// the optimal [`Basis`] for warm-started re-solves via [`resolve_lp`].
///
/// # Errors
///
/// Returns [`MilpError::IterationLimit`] if the simplex fails to converge
/// within the iteration limit (typically a symptom of cycling on a badly
/// scaled model).
pub fn solve_lp(
    model: &Model,
    bounds_override: Option<&[(f64, f64)]>,
    tol: f64,
    iteration_limit: usize,
) -> Result<LpOutcome, MilpError> {
    solve_lp_with_deadline(model, bounds_override, tol, iteration_limit, None)
}

/// [`solve_lp`] with a wall-clock deadline, checked every few iterations;
/// an expired deadline yields [`LpStatus::Interrupted`].
///
/// # Errors
///
/// Returns [`MilpError::IterationLimit`] like [`solve_lp`].
pub fn solve_lp_with_deadline(
    model: &Model,
    bounds_override: Option<&[(f64, f64)]>,
    tol: f64,
    iteration_limit: usize,
    deadline: Option<Instant>,
) -> Result<LpOutcome, MilpError> {
    solve_lp_priced(model, bounds_override, tol, iteration_limit, deadline, Pricing::default())
}

/// [`solve_lp_with_deadline`] under an explicit [`Pricing`] rule.
///
/// # Errors
///
/// Returns [`MilpError::IterationLimit`] like [`solve_lp`].
pub fn solve_lp_priced(
    model: &Model,
    bounds_override: Option<&[(f64, f64)]>,
    tol: f64,
    iteration_limit: usize,
    deadline: Option<Instant>,
    pricing: Pricing,
) -> Result<LpOutcome, MilpError> {
    let limit = auto_limit(model, iteration_limit);
    let mut s = match Solver::build(model, bounds_override, tol) {
        Built::Crossed => return Ok(trivially_infeasible(false)),
        Built::Ready(s) => s,
    };
    s.install_slack_basis();
    s.primal(limit, deadline, false, pricing)
}

/// Re-solves `model` starting from a parent [`Basis`], intended for the two
/// mutations the callers actually issue: tightened variable bounds (branch
/// and bound) and a moved right-hand side (the binary-subdivision latency
/// window). Both leave the parent basis dual feasible, so the solve runs a
/// **dual simplex** that is typically a handful of pivots; a basis that
/// prices out dual *infeasible* (e.g. after an objective change) is still
/// used as a primal warm start.
///
/// Falls back to a cold [`solve_lp`] — same status, objective, and values
/// as if the basis had never been supplied — when the basis is stale
/// (dimensions changed), its refactorization is singular, or the dual loop
/// stalls or exhausts its budget. `LpOutcome::warm` reports which path ran.
///
/// # Errors
///
/// Returns [`MilpError::IterationLimit`] like [`solve_lp`] if the cold
/// fallback itself fails to converge.
pub fn resolve_lp(
    model: &Model,
    bounds_override: Option<&[(f64, f64)]>,
    basis: &Basis,
    tol: f64,
    iteration_limit: usize,
) -> Result<LpOutcome, MilpError> {
    resolve_lp_with_deadline(model, bounds_override, basis, tol, iteration_limit, None)
}

/// [`resolve_lp`] with a wall-clock deadline (see
/// [`solve_lp_with_deadline`]).
///
/// # Errors
///
/// Returns [`MilpError::IterationLimit`] like [`resolve_lp`].
pub fn resolve_lp_with_deadline(
    model: &Model,
    bounds_override: Option<&[(f64, f64)]>,
    basis: &Basis,
    tol: f64,
    iteration_limit: usize,
    deadline: Option<Instant>,
) -> Result<LpOutcome, MilpError> {
    resolve_lp_priced(
        model,
        bounds_override,
        basis,
        tol,
        iteration_limit,
        deadline,
        Pricing::default(),
    )
}

/// [`resolve_lp_with_deadline`] under an explicit [`Pricing`] rule (the
/// pricing applies to the primal phases; the dual warm path is unchanged).
///
/// # Errors
///
/// Returns [`MilpError::IterationLimit`] like [`resolve_lp`].
#[allow(clippy::too_many_arguments)]
pub fn resolve_lp_priced(
    model: &Model,
    bounds_override: Option<&[(f64, f64)]>,
    basis: &Basis,
    tol: f64,
    iteration_limit: usize,
    deadline: Option<Instant>,
    pricing: Pricing,
) -> Result<LpOutcome, MilpError> {
    let limit = auto_limit(model, iteration_limit);
    let (spent, refacts, resets) = match Solver::build(model, bounds_override, tol) {
        Built::Crossed => return Ok(trivially_infeasible(true)),
        Built::Ready(mut s) => {
            if s.install_basis(basis) {
                if s.dual_feasible() {
                    match s.dual(limit, deadline) {
                        DualRun::Finished(out) => return Ok(out),
                        DualRun::Fallback => {}
                    }
                } else {
                    // Dual-infeasible parent (stale costs): still a better
                    // starting vertex than the slack identity.
                    match s.primal(limit, deadline, true, pricing) {
                        Ok(out) => return Ok(out),
                        Err(MilpError::IterationLimit { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
            (s.iterations, s.refactorizations, s.devex_resets)
        }
    };
    // Cold fallback with a fresh budget: a warm entry must never fail where
    // a cold solve would have succeeded.
    let mut out = solve_lp_priced(model, bounds_override, tol, iteration_limit, deadline, pricing)?;
    out.iterations += spent;
    out.refactorizations += refacts;
    out.devex_resets += resets;
    out.warm = false;
    Ok(out)
}

/// One simplex tableau row `x_B[i] + Σ ā_j x_j = b̄_i` extracted at an
/// optimal basis, in column space (structurals `0..n`, slacks `n..n+m`).
#[derive(Debug, Clone)]
pub(crate) struct TableauRow {
    /// `b̄_i`: the current value of the basic variable.
    pub rhs: f64,
    /// `(nonbasic column, ā_j)` pairs with `|ā_j| > 1e-9`, ascending.
    pub coeffs: Vec<(usize, f64)>,
}

/// Snapshot of the tableau state needed to derive Gomory cuts: the rows of
/// fractional integer basics plus the column statuses and working bounds.
#[derive(Debug, Clone)]
pub(crate) struct TableauSnapshot {
    /// Structural variable count.
    pub n: usize,
    /// Working lower bounds over all `n + m` columns (slacks included).
    pub lb: Vec<f64>,
    /// Working upper bounds over all `n + m` columns.
    pub ub: Vec<f64>,
    /// `true` for nonbasic columns parked at their upper bound.
    pub at_upper: Vec<bool>,
    /// Extracted fractional rows, most fractional first.
    pub rows: Vec<TableauRow>,
}

/// Extracts the tableau rows of fractional integer basics at `basis`
/// (re-installed and refactorized), most fractional first, up to
/// `max_rows`. Returns `None` when the basis fails to install (stale,
/// singular, or vetoed by the `milp.warm_basis` failpoint) — callers skip
/// cut separation for that round.
pub(crate) fn fractional_rows(
    model: &Model,
    bounds_override: Option<&[(f64, f64)]>,
    basis: &Basis,
    tol: f64,
    is_int: &[bool],
    max_rows: usize,
) -> Option<TableauSnapshot> {
    let mut s = match Solver::build(model, bounds_override, tol) {
        Built::Crossed => return None,
        Built::Ready(s) => s,
    };
    if !s.install_basis(basis) {
        return None;
    }
    s.compute_basic_values();
    let mut cand: Vec<(f64, usize, usize)> = Vec::new(); // (centrality, col, row)
    for (i, &k) in s.order.iter().enumerate() {
        if k >= s.n || !is_int[k] {
            continue;
        }
        let v = s.x[k];
        let frac = v - v.floor();
        if !(0.01..=0.99).contains(&frac) {
            continue;
        }
        // Sort key: distance of the fraction from 1/2 (most fractional
        // first), then column index — fixed, deterministic order.
        cand.push((((frac - 0.5).abs() * 1e9) as u64 as f64, k, i));
    }
    cand.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap_or(std::cmp::Ordering::Equal));
    cand.truncate(max_rows);
    let mut rows = Vec::with_capacity(cand.len());
    for &(_, k, i) in &cand {
        let mut rho = vec![0.0f64; s.m];
        rho[i] = 1.0;
        s.etas.btran(&mut rho);
        let mut coeffs = Vec::new();
        for j in 0..s.total {
            if s.is_basic[j] || s.is_fixed(j) {
                continue;
            }
            let a = s.dot_col(j, &rho);
            if a.abs() > 1e-9 {
                coeffs.push((j, a));
            }
        }
        rows.push(TableauRow { rhs: s.x[k], coeffs });
    }
    Some(TableauSnapshot {
        n: s.n,
        lb: s.lb.clone(),
        ub: s.ub.clone(),
        at_upper: s.at_upper.clone(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, LinExpr, Model, Rel, Variable};

    const TOL: f64 = 1e-7;

    fn lp(model: &Model) -> LpOutcome {
        solve_lp(model, None, TOL, 0).expect("no iteration limit expected")
    }

    #[test]
    fn simple_maximize() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig)
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 4.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (2.0, y), Rel::Le, 12.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (3.0, x) + (2.0, y), Rel::Le, 18.0));
        m.maximize(LinExpr::new() + (3.0, x) + (5.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 36.0).abs() < 1e-6);
        assert!((out.values[0] - 2.0).abs() < 1e-6);
        assert!((out.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_with_ge_rows_needs_phase1() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0 -> (1.6, 1.2), obj 2.8
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (2.0, y), Rel::Ge, 4.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (3.0, x) + (1.0, y), Rel::Ge, 6.0));
        m.minimize(LinExpr::new() + (1.0, x) + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 2.8).abs() < 1e-6, "objective {}", out.objective);
        assert!((out.values[0] - 1.6).abs() < 1e-6);
        assert!((out.values[1] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2 -> x=6, y=4, obj 24
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Eq, 10.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (-1.0, y), Rel::Eq, 2.0));
        m.minimize(LinExpr::new() + (2.0, x) + (3.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 6.0).abs() < 1e-6);
        assert!((out.values[1] - 4.0).abs() < 1e-6);
        assert!((out.objective - 24.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Ge, 2.0));
        assert_eq!(lp(&m).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_conflicting_rows() {
        let mut m = Model::new();
        let x = m.add_var(Variable::free());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Ge, 5.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 3.0));
        assert_eq!(lp(&m).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        m.maximize(LinExpr::new() + (1.0, x));
        assert_eq!(lp(&m).status, LpStatus::Unbounded);
    }

    #[test]
    fn bounded_by_variable_bounds_only() {
        // No constraints at all: optimum sits on a variable bound.
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(-3.0, 7.0));
        m.maximize(LinExpr::new() + (2.0, x));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 7.0).abs() < 1e-9);
        assert!((out.objective - 14.0).abs() < 1e-9);
    }

    #[test]
    fn free_variable_enters() {
        // min y s.t. y >= x - 2, y >= -x  with x free -> x = 1, y = -1.
        let mut m = Model::new();
        let x = m.add_var(Variable::free());
        let y = m.add_var(Variable::free());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y) + (-1.0, x), Rel::Ge, -2.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y) + (1.0, x), Rel::Ge, 0.0));
        m.minimize(LinExpr::new() + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective + 1.0).abs() < 1e-6, "objective {}", out.objective);
    }

    #[test]
    fn upper_bounded_vars_flip() {
        // max x + y with x,y in [0,1], x + y <= 1.5 -> 1.5
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 1.0));
        let y = m.add_var(Variable::continuous(0.0, 1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 1.5));
        m.maximize(LinExpr::new() + (1.0, x) + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_le_needs_phase1() {
        // x + y <= -1 with x,y >= -5: feasible, e.g. (-5, 4). min x+y -> -10.
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(-5.0, 5.0));
        let y = m.add_var(Variable::continuous(-5.0, 5.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, -1.0));
        m.minimize(LinExpr::new() + (1.0, x) + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective + 10.0).abs() < 1e-6);
    }

    #[test]
    fn bounds_override_is_respected() {
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 10.0));
        m.maximize(LinExpr::new() + (1.0, x));
        let out = solve_lp(&m, Some(&[(0.0, 3.0)]), TOL, 0).unwrap();
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn crossed_override_bounds_are_infeasible() {
        let mut m = Model::new();
        let _ = m.add_var(Variable::continuous(0.0, 10.0));
        let out = solve_lp(&m, Some(&[(4.0, 3.0)]), TOL, 0).unwrap();
        assert_eq!(out.status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Beale's classic cycling example (under Dantzig pricing without
        // safeguards); our Bland fallback must terminate it.
        let mut m = Model::new();
        let x1 = m.add_var(Variable::non_negative());
        let x2 = m.add_var(Variable::non_negative());
        let x3 = m.add_var(Variable::non_negative());
        let x4 = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(
            LinExpr::new() + (0.25, x1) + (-8.0, x2) + (-1.0, x3) + (9.0, x4),
            Rel::Le,
            0.0,
        ));
        m.add_constraint(Constraint::new(
            LinExpr::new() + (0.5, x1) + (-12.0, x2) + (-0.5, x3) + (3.0, x4),
            Rel::Le,
            0.0,
        ));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x3), Rel::Le, 1.0));
        m.minimize(LinExpr::new() + (-0.75, x1) + (150.0, x2) + (-0.02, x3) + (6.0, x4));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        // Optimum: x1 = 1, x3 = 1, x2 = x4 = 0 -> -0.75 - 0.02 = -0.77.
        assert!((out.objective + 0.77).abs() < 1e-6, "objective {}", out.objective);
    }

    #[test]
    fn fixed_variables_are_skipped() {
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(2.0, 2.0));
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 5.0));
        m.maximize(LinExpr::new() + (1.0, x) + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 2.0).abs() < 1e-9);
        assert!((out.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn expired_deadline_interrupts() {
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 4.0));
        m.maximize(LinExpr::new() + (1.0, x) + (2.0, y));
        let past = std::time::Instant::now() - std::time::Duration::from_secs(1);
        let out = crate::simplex::solve_lp_with_deadline(&m, None, TOL, 0, Some(past)).unwrap();
        assert_eq!(out.status, LpStatus::Interrupted);
        assert!(out.values.is_empty());
    }

    #[test]
    fn larger_random_feasible_lp_agrees_with_known_optimum() {
        // Transportation-style LP with a known optimum: two suppliers (10, 15),
        // three consumers (8, 7, 10); costs minimize to 8*1+2*3+5*2+10*1 = 34
        // for cost matrix [[1,3,4],[4,2,1]] — verified by hand.
        let mut m = Model::new();
        let mut ship = Vec::new();
        for _ in 0..6 {
            ship.push(m.add_var(Variable::non_negative()));
        }
        let cost = [1.0, 3.0, 4.0, 4.0, 2.0, 1.0];
        // Supply rows.
        m.add_constraint(Constraint::new(
            LinExpr::new() + (1.0, ship[0]) + (1.0, ship[1]) + (1.0, ship[2]),
            Rel::Le,
            10.0,
        ));
        m.add_constraint(Constraint::new(
            LinExpr::new() + (1.0, ship[3]) + (1.0, ship[4]) + (1.0, ship[5]),
            Rel::Le,
            15.0,
        ));
        // Demand columns.
        for (j, d) in [8.0, 7.0, 10.0].iter().enumerate() {
            m.add_constraint(Constraint::new(
                LinExpr::new() + (1.0, ship[j]) + (1.0, ship[3 + j]),
                Rel::Ge,
                *d,
            ));
        }
        m.minimize(ship.iter().zip(cost).map(|(&v, c)| (c, v)).collect());
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 34.0).abs() < 1e-6, "objective {}", out.objective);
    }

    #[test]
    fn optimal_outcome_carries_a_valid_basis() {
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 4.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (3.0, y), Rel::Le, 6.0));
        m.maximize(LinExpr::new() + (3.0, x) + (5.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        let basis = out.basis.expect("optimal solve returns its basis");
        assert_eq!(basis.statuses.len(), 4);
        assert_eq!(basis.order.len(), 2);
        let basics = basis.statuses.iter().filter(|&&s| s == VarStatus::Basic).count();
        assert_eq!(basics, 2);
        for &c in &basis.order {
            assert_eq!(basis.statuses[c], VarStatus::Basic);
        }
    }

    #[test]
    fn warm_resolve_after_bound_tighten_matches_cold() {
        // The branch-and-bound mutation: solve, tighten one variable's
        // bounds, re-solve warm; outcome must match a cold solve.
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 4.0));
        let y = m.add_var(Variable::continuous(0.0, 4.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (2.0, x) + (1.0, y), Rel::Le, 7.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (3.0, y), Rel::Le, 9.0));
        m.maximize(LinExpr::new() + (4.0, x) + (5.0, y));
        let root = lp(&m);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = root.basis.clone().unwrap();
        for tightened in [(0.0, 1.0), (2.0, 4.0), (0.0, 0.0)] {
            let bounds = [tightened, (0.0, 4.0)];
            let warm = resolve_lp(&m, Some(&bounds), &basis, TOL, 0).unwrap();
            let cold = solve_lp(&m, Some(&bounds), TOL, 0).unwrap();
            assert_eq!(warm.status, cold.status, "bounds {tightened:?}");
            assert!((warm.objective - cold.objective).abs() < 1e-6, "bounds {tightened:?}");
            assert!(warm.warm, "warm path should not have fallen back for {tightened:?}");
            assert!(
                warm.iterations <= cold.iterations,
                "warm {} > cold {} pivots for {tightened:?}",
                warm.iterations,
                cold.iterations
            );
        }
    }

    #[test]
    fn warm_resolve_detects_infeasible_child() {
        // Tightening x to an unreachable range must come back Infeasible on
        // the warm path, exactly like a cold solve.
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 10.0));
        let y = m.add_var(Variable::continuous(0.0, 10.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 4.0));
        m.maximize(LinExpr::new() + (1.0, x) + (1.0, y));
        let root = lp(&m);
        let basis = root.basis.clone().unwrap();
        let bounds = [(6.0, 10.0), (0.0, 10.0)];
        let warm = resolve_lp(&m, Some(&bounds), &basis, TOL, 0).unwrap();
        let cold = solve_lp(&m, Some(&bounds), TOL, 0).unwrap();
        assert_eq!(warm.status, LpStatus::Infeasible);
        assert_eq!(cold.status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_resolve_after_rhs_change_matches_cold() {
        // The binary-subdivision mutation: only a right-hand side moves.
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 8.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (2.0, y), Rel::Le, 10.0));
        m.maximize(LinExpr::new() + (2.0, x) + (3.0, y));
        let root = lp(&m);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = root.basis.clone().unwrap();
        for rhs in [6.0, 4.0, 2.0, 0.5] {
            let mut tightened = m.clone();
            tightened.set_rhs(0, rhs);
            let warm = resolve_lp(&tightened, None, &basis, TOL, 0).unwrap();
            let cold = solve_lp(&tightened, None, TOL, 0).unwrap();
            assert_eq!(warm.status, cold.status, "rhs {rhs}");
            assert!((warm.objective - cold.objective).abs() < 1e-6, "rhs {rhs}");
            assert!(warm.warm, "rhs {rhs} should stay on the warm path");
        }
    }

    #[test]
    fn stale_basis_falls_back_to_cold() {
        // A basis from a different model (wrong dimensions) must be
        // rejected, with the cold fallback still producing the optimum.
        let mut small = Model::new();
        let s = small.add_var(Variable::continuous(0.0, 1.0));
        small.maximize(LinExpr::new() + (1.0, s));
        let stale = lp(&small).basis.unwrap();

        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 4.0));
        m.maximize(LinExpr::new() + (1.0, x) + (2.0, y));
        let out = resolve_lp(&m, None, &stale, TOL, 0).unwrap();
        assert_eq!(out.status, LpStatus::Optimal);
        assert!(!out.warm, "stale basis must fall back to a cold solve");
        assert!((out.objective - 8.0).abs() < 1e-6);
    }

    #[test]
    fn warm_resolve_survives_degenerate_feasibility_model() {
        // Zero-objective (pure feasibility) LPs are maximally dual
        // degenerate — every dual ratio is 0. The anti-cycling guards must
        // still terminate the warm path with the right status.
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|_| m.add_var(Variable::continuous(0.0, 1.0))).collect();
        let sum: LinExpr = vars.iter().map(|&v| (1.0, v)).collect();
        m.add_constraint(Constraint::new(sum.clone(), Rel::Ge, 2.0));
        m.add_constraint(Constraint::new(sum, Rel::Le, 4.0));
        let root = lp(&m);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = root.basis.clone().unwrap();
        for rhs in [3.0, 5.0, 1.0] {
            let mut moved = m.clone();
            moved.set_rhs(0, rhs);
            let warm = resolve_lp(&moved, None, &basis, TOL, 0).unwrap();
            let cold = solve_lp(&moved, None, TOL, 0).unwrap();
            assert_eq!(warm.status, cold.status, "rhs {rhs}");
        }
        // An unsatisfiable window must be proven infeasible warm, too.
        let mut bad = m.clone();
        bad.set_rhs(0, 7.0);
        let warm = resolve_lp(&bad, None, &basis, TOL, 0).unwrap();
        assert_eq!(warm.status, LpStatus::Infeasible);
    }

    #[test]
    fn beale_resolve_terminates_after_rhs_move() {
        // Cycling regression for the sparse + dual path: re-solve Beale's
        // example from its optimal basis after a bound move.
        let mut m = Model::new();
        let x1 = m.add_var(Variable::non_negative());
        let x2 = m.add_var(Variable::non_negative());
        let x3 = m.add_var(Variable::non_negative());
        let x4 = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(
            LinExpr::new() + (0.25, x1) + (-8.0, x2) + (-1.0, x3) + (9.0, x4),
            Rel::Le,
            0.0,
        ));
        m.add_constraint(Constraint::new(
            LinExpr::new() + (0.5, x1) + (-12.0, x2) + (-0.5, x3) + (3.0, x4),
            Rel::Le,
            0.0,
        ));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x3), Rel::Le, 1.0));
        m.minimize(LinExpr::new() + (-0.75, x1) + (150.0, x2) + (-0.02, x3) + (6.0, x4));
        let root = lp(&m);
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = root.basis.clone().unwrap();
        let mut moved = m.clone();
        moved.set_rhs(2, 0.5); // x3 <= 0.5
        let warm = resolve_lp(&moved, None, &basis, TOL, 0).unwrap();
        let cold = solve_lp(&moved, None, TOL, 0).unwrap();
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn long_pivot_chains_refactorize() {
        // A chained LP that forces more pivots than the refactorization
        // interval; the counter must tick and the optimum stay exact.
        // min Σ x_i  s.t.  x_0 >= 1, x_i - x_{i-1} >= 1.
        let k = 80;
        let mut m = Model::new();
        let vars: Vec<_> = (0..k).map(|_| m.add_var(Variable::non_negative())).collect();
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, vars[0]), Rel::Ge, 1.0));
        for i in 1..k {
            m.add_constraint(Constraint::new(
                LinExpr::new() + (1.0, vars[i]) + (-1.0, vars[i - 1]),
                Rel::Ge,
                1.0,
            ));
        }
        m.minimize(vars.iter().map(|&v| (1.0, v)).collect());
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        // x_i = i + 1  ->  Σ = k(k+1)/2.
        let expect = (k * (k + 1)) as f64 / 2.0;
        assert!((out.objective - expect).abs() < 1e-5, "objective {}", out.objective);
        assert!(out.iterations > REFACTOR_INTERVAL, "iterations {}", out.iterations);
        assert!(out.refactorizations > 0, "expected at least one refactorization");
    }
}
