//! Randomized tests over the whole stack, driven by seeded random task
//! graphs. The cases are deterministic (SplitMix64 streams), so failures
//! reproduce exactly; to widen coverage, raise `CASES`.

use rtrpart::graph::{Area, Latency};
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::workloads::rng::Rng;
use rtrpart::{
    validate_solution, Architecture, EnvMemoryPolicy, ExploreParams, SearchLimits,
    TemporalPartitioner,
};
use std::time::Duration;

const CASES: u64 = 48;

struct Instance {
    seed: u64,
    gp: RandomGraphParams,
    cap: u64,
    mem: u64,
    ct: f64,
}

/// One deterministic random instance per case index (`salt` decorrelates
/// the streams between tests).
fn instance(salt: u64, case: u64) -> Instance {
    let mut r = Rng::new(salt.wrapping_mul(0x9e37_79b9).wrapping_add(case));
    Instance {
        seed: r.next_u64(),
        gp: RandomGraphParams {
            tasks: r.range_usize(2, 9),
            max_layer_width: r.range_usize(1, 3),
            design_points: (1, 3),
            area_range: (20, 60),
            latency_range: (50.0, 600.0),
            data_range: (1, 3),
            ..Default::default()
        },
        cap: r.range_u64(60, 239),
        mem: r.range_u64(8, 63),
        ct: r.range_f64(10.0, 100_000.0),
    }
}

/// Every solution the exploration produces satisfies every constraint,
/// and the simulator realizes exactly the analytic latency.
#[test]
fn explored_solutions_are_always_valid() {
    for case in 0..CASES {
        let inst = instance(1, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let params = ExploreParams {
            delta: Latency::from_ns(100.0),
            gamma: 1,
            limits: SearchLimits {
                node_limit: 300_000,
                time_limit: Some(Duration::from_millis(300)),
            },
            time_budget: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else {
            // Some task cannot fit the device at all: a legal outcome.
            continue;
        };
        let ex = part.explore().unwrap();
        if let Some(best) = &ex.best {
            assert!(validate_solution(&g, &arch, best).is_empty(), "case {case}");
            let lat = best.total_latency(&g, &arch);
            assert_eq!(ex.best_latency.unwrap(), lat, "case {case}");
            let report = rtrpart::sim::simulate(&g, &arch, best).unwrap();
            assert!(
                (report.total_latency.as_ns() - lat.as_ns()).abs() < 1e-6,
                "case {case}: simulator disagrees: {} vs {}",
                report.total_latency,
                lat
            );
            // Latency decomposition is consistent.
            let eta = best.partitions_used();
            assert!(eta >= 1 && eta <= best.n_bound(), "case {case}");
            let decomposed =
                best.execution_latency(&g).as_ns() + (arch.reconfig_time() * eta).as_ns();
            assert!(
                (lat.as_ns() - decomposed).abs() < 1e-6,
                "case {case}: decomposition drifted: {} vs {}",
                lat.as_ns(),
                decomposed
            );
        }
    }
}

/// Feasible iterations never report a latency above their window, and
/// windows only shrink within one partition bound.
#[test]
fn iteration_records_are_well_formed() {
    for case in 0..CASES {
        let inst = instance(2, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let params = ExploreParams {
            delta: Latency::from_ns(50.0),
            limits: SearchLimits {
                node_limit: 300_000,
                time_limit: Some(Duration::from_millis(300)),
            },
            time_budget: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else { continue };
        let ex = part.explore().unwrap();
        for r in &ex.records {
            assert!(r.d_min <= r.d_max, "case {case}");
            if let rtrpart::IterationResult::Feasible { latency, .. } = r.result {
                assert!(latency.as_ns() <= r.d_max.as_ns() + 1e-6, "case {case}");
            }
        }
        let mut last_n = 0;
        for r in &ex.records {
            assert!(r.n >= last_n, "case {case}: partition bounds never shrink");
            last_n = r.n;
        }
    }
}

/// Regression ported from the proptest era (seed
/// `3ec69589e8cb215be1bba0b84aee33c1dde9bf013a862b0da1effc49ebbb9e5e`,
/// removed with proptest in PR 1): a 6-task chain on a 68-unit device with
/// only 8 memory units and a tiny `C_T`. The shrunken case exercised the
/// boundary-memory accounting on deep chains; keep it green forever, on the
/// sequential and the parallel path alike.
#[test]
fn proptest_regression_deep_chain_with_tight_memory() {
    let gp = RandomGraphParams {
        tasks: 6,
        max_layer_width: 1,
        edge_probability: 0.5,
        design_points: (1, 3),
        area_range: (20, 60),
        latency_range: (50.0, 600.0),
        data_range: (1, 3),
    };
    let g = random_layered(4083985647177036957, &gp);
    let arch = Architecture::new(Area::new(68), 8, Latency::from_ns(10.0));
    // Node-limit-only limits: deterministic, so the sequential and the
    // parallel run below are comparable outcome-for-outcome.
    let params = ExploreParams {
        delta: Latency::from_ns(100.0),
        gamma: 1,
        limits: SearchLimits { node_limit: 300_000, time_limit: None },
        time_budget: None,
        ..Default::default()
    };
    let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else {
        panic!("the regression instance admits a partitioner");
    };
    let ex = part.explore().unwrap();
    if let Some(best) = &ex.best {
        assert!(validate_solution(&g, &arch, best).is_empty());
        assert_eq!(ex.best_latency.unwrap(), best.total_latency(&g, &arch));
    }
    for r in &ex.records {
        assert!(r.d_min <= r.d_max);
        if let rtrpart::IterationResult::Feasible { latency, .. } = r.result {
            assert!(latency.as_ns() <= r.d_max.as_ns() + 1e-6);
        }
    }
    // The parallel path must reach the same verdict on the regression.
    let par = part.explore_parallel(4).unwrap();
    assert_eq!(par.best_latency, ex.best_latency);
    if let Some(best) = &par.best {
        assert!(validate_solution(&g, &arch, best).is_empty());
    }
}

/// The greedy baseline, when it succeeds, always produces valid
/// solutions.
#[test]
fn greedy_baseline_is_valid() {
    use rtrpart::core::baseline::{greedy_partition, DesignPointPicker};
    for case in 0..CASES {
        let inst = instance(3, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let n_cap = g.task_count() as u32;
        for picker in
            [DesignPointPicker::MinArea, DesignPointPicker::MaxArea, DesignPointPicker::MinLatency]
        {
            if let Some(sol) = greedy_partition(&g, &arch, picker, n_cap) {
                assert!(validate_solution(&g, &arch, &sol).is_empty(), "case {case}");
            }
        }
    }
}

/// Boundary memory is monotone under the Resident policy relative to
/// Streamed: the resident accounting can only add occupancy.
#[test]
fn resident_memory_dominates_streamed() {
    use rtrpart::core::baseline::{greedy_partition, DesignPointPicker};
    for case in 0..CASES {
        let inst = instance(4, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch =
            Architecture::new(Area::new(inst.cap), inst.mem.max(1024), Latency::from_ns(inst.ct));
        if let Some(sol) =
            greedy_partition(&g, &arch, DesignPointPicker::MinArea, g.task_count() as u32)
        {
            let resident = sol.boundary_memory(&g, EnvMemoryPolicy::Resident);
            let streamed = sol.boundary_memory(&g, EnvMemoryPolicy::Streamed);
            for (r, s) in resident.iter().zip(&streamed) {
                assert!(r >= s, "case {case}");
            }
        }
    }
}

/// The paper's bounds really bound: MinLatency(N) ≤ any achieved
/// latency ≤ MaxLatency(N) for solutions under partition bound N.
#[test]
fn latency_bounds_bracket_solutions() {
    for case in 0..CASES {
        let inst = instance(5, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let params = ExploreParams {
            limits: SearchLimits {
                node_limit: 300_000,
                time_limit: Some(Duration::from_millis(300)),
            },
            time_budget: Some(Duration::from_secs(5)),
            ..Default::default()
        };
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else { continue };
        let ex = part.explore().unwrap();
        if let Some(best) = &ex.best {
            let n = best.partitions_used();
            let lo = rtrpart::min_latency(&g, &arch, n);
            let hi = rtrpart::max_latency(&g, &arch, n);
            let lat = best.total_latency(&g, &arch);
            assert!(lat >= lo, "case {case}: latency {lat} below MinLatency {lo}");
            assert!(lat <= hi, "case {case}: latency {lat} above MaxLatency {hi}");
        }
    }
}
