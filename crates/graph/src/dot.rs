//! Graphviz DOT export.

use crate::graph::TaskGraph;
use std::fmt::Write as _;

impl TaskGraph {
    /// Renders the task graph in Graphviz DOT syntax.
    ///
    /// Each node is labeled with the task name and its design-point count;
    /// each edge with its data volume `B(t_i, t_j)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtr_graph::{TaskGraphBuilder, DesignPoint, Area, Latency};
    /// # fn main() -> Result<(), rtr_graph::GraphError> {
    /// let mut b = TaskGraphBuilder::new();
    /// let a = b.add_task("a")
    ///     .design_point(DesignPoint::new("m", Area::new(1), Latency::from_ns(1.0)))
    ///     .finish();
    /// let c = b.add_task("c")
    ///     .design_point(DesignPoint::new("m", Area::new(1), Latency::from_ns(1.0)))
    ///     .finish();
    /// b.add_edge(a, c, 4)?;
    /// let dot = b.build()?.to_dot();
    /// assert!(dot.contains("digraph task_graph"));
    /// assert!(dot.contains("label=\"4\""));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph task_graph {\n  rankdir=TB;\n  node [shape=box];\n");
        for (i, t) in self.tasks().iter().enumerate() {
            let _ = writeln!(
                out,
                "  t{i} [label=\"{}\\n|M_t| = {}\"];",
                escape(t.name()),
                t.design_points().len()
            );
        }
        for e in self.edges() {
            let _ = writeln!(
                out,
                "  t{} -> t{} [label=\"{}\"];",
                e.src().index(),
                e.dst().index(),
                e.data()
            );
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::builder::TaskGraphBuilder;
    use crate::quantity::{Area, Latency};
    use crate::task::DesignPoint;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = TaskGraphBuilder::new();
        let dp = DesignPoint::new("m", Area::new(1), Latency::from_ns(1.0));
        let a = b.add_task("alpha").design_point(dp.clone()).finish();
        let c = b.add_task("beta \"q\"").design_point(dp.clone()).finish();
        b.add_edge(a, c, 7).unwrap();
        let dot = b.build().unwrap().to_dot();
        assert!(dot.contains("t0 [label=\"alpha"));
        assert!(dot.contains("beta \\\"q\\\""));
        assert!(dot.contains("t0 -> t1 [label=\"7\"]"));
        assert!(dot.ends_with("}\n"));
    }
}
