//! Solving to optimality — the paper's `Result(Optimal)` comparison runs.

use crate::arch::Architecture;
use crate::error::PartitionError;
use crate::model::{IlpModel, ModelOptions};
use crate::search::Backend;
use crate::solution::Solution;
use crate::structured::{SearchGoal, SearchLimits, SearchOutcome, StructuredSolver};
use rtr_graph::{Latency, TaskGraph};
use rtr_milp::SolveOptions;
use rtr_trace::Instrument as _;

/// Result of an optimality run.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimalOutcome {
    /// Proven-optimal solution and its latency.
    Optimal(Solution, Latency),
    /// A limit fired; the incumbent (if any) is returned unproven.
    Interrupted(Option<(Solution, Latency)>),
    /// Proven infeasible under the partition bound.
    Infeasible,
}

impl OptimalOutcome {
    /// The solution, if one was found (proven optimal or incumbent).
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            OptimalOutcome::Optimal(s, _) => Some(s),
            OptimalOutcome::Interrupted(Some((s, _))) => Some(s),
            _ => None,
        }
    }

    /// The latency of the returned solution, if any.
    pub fn latency(&self) -> Option<Latency> {
        match self {
            OptimalOutcome::Optimal(_, l) => Some(*l),
            OptimalOutcome::Interrupted(Some((_, l))) => Some(*l),
            _ => None,
        }
    }
}

/// Minimizes the total latency `Σ_p d_p + η·C_T` under partition bound `n`,
/// the way the paper solves small instances "to optimality using the ILP
/// solver" for comparison against the iterative procedure.
///
/// # Errors
///
/// Propagates model-building and MILP failures.
pub fn solve_optimal(
    graph: &TaskGraph,
    arch: &Architecture,
    n: u32,
    backend: Backend,
    limits: SearchLimits,
) -> Result<OptimalOutcome, PartitionError> {
    let span = rtr_trace::span("optimal.solve").with("n", n).with("backend", backend.to_string());
    let outcome = solve_optimal_inner(graph, arch, n, backend, limits)?;
    if span.armed() {
        let label = match &outcome {
            OptimalOutcome::Optimal(..) => "optimal",
            OptimalOutcome::Interrupted(Some(_)) => "interrupted-incumbent",
            OptimalOutcome::Interrupted(None) => "interrupted",
            OptimalOutcome::Infeasible => "infeasible",
        };
        span.with("outcome", label).finish();
    }
    Ok(outcome)
}

fn solve_optimal_inner(
    graph: &TaskGraph,
    arch: &Architecture,
    n: u32,
    backend: Backend,
    limits: SearchLimits,
) -> Result<OptimalOutcome, PartitionError> {
    match backend {
        Backend::Structured => {
            let d_max = crate::bounds::max_latency(graph, arch, n);
            let solver =
                StructuredSolver::new(graph, arch, n, d_max.as_ns(), SearchGoal::Optimal, limits);
            let (outcome, stats) = solver.run();
            stats.emit_metrics("optimal.structured");
            Ok(match outcome {
                SearchOutcome::Feasible(sol) => {
                    let latency = sol.total_latency(graph, arch);
                    if stats.exhausted {
                        OptimalOutcome::Optimal(sol, latency)
                    } else {
                        OptimalOutcome::Interrupted(Some((sol, latency)))
                    }
                }
                SearchOutcome::Infeasible => OptimalOutcome::Infeasible,
                SearchOutcome::LimitReached => OptimalOutcome::Interrupted(None),
            })
        }
        Backend::Milp => {
            let d_max = crate::bounds::max_latency(graph, arch, n);
            let options = ModelOptions {
                minimize_latency: true,
                include_dmin_cut: false,
                ..Default::default()
            };
            let ilp = IlpModel::build(graph, arch, n, d_max, Latency::ZERO, &options)?;
            let mut solve = SolveOptions::optimal();
            if let Some(t) = limits.time_limit {
                solve = solve.with_time_limit(t);
            }
            let outcome = ilp.model().solve(&solve)?;
            // `milp.*` counters were already emitted inside the solve; this
            // re-emission scopes the same stats to the optimality run.
            outcome.stats.emit_metrics("optimal.milp");
            // An optimal/feasible status always carries an incumbent;
            // treat a missing one as an interrupted run rather than
            // panicking on a solver invariant.
            Ok(match (outcome.status, outcome.solution.as_ref()) {
                (rtr_milp::Status::Optimal, Some(assignment)) => {
                    let sol = ilp.decode(assignment).compacted(n);
                    let latency = sol.total_latency(graph, arch);
                    OptimalOutcome::Optimal(sol, latency)
                }
                (rtr_milp::Status::Feasible, Some(assignment)) => {
                    let sol = ilp.decode(assignment).compacted(n);
                    let latency = sol.total_latency(graph, arch);
                    OptimalOutcome::Interrupted(Some((sol, latency)))
                }
                (rtr_milp::Status::Infeasible, _) => OptimalOutcome::Infeasible,
                _ => OptimalOutcome::Interrupted(None),
            })
        }
    }
}

/// Sweeps partition bounds `1..=n_cap` and returns the best optimal solution
/// across all of them — the true global optimum of the instance.
///
/// # Errors
///
/// Propagates backend failures.
pub fn solve_optimal_over_bounds(
    graph: &TaskGraph,
    arch: &Architecture,
    n_cap: u32,
    backend: Backend,
    limits: SearchLimits,
) -> Result<OptimalOutcome, PartitionError> {
    let mut best: Option<(Solution, Latency)> = None;
    let mut any_interrupted = false;
    for n in 1..=n_cap {
        match solve_optimal(graph, arch, n, backend, limits)? {
            OptimalOutcome::Optimal(sol, lat) => {
                if best.as_ref().map(|(_, b)| lat < *b).unwrap_or(true) {
                    best = Some((sol, lat));
                }
            }
            OptimalOutcome::Interrupted(inc) => {
                any_interrupted = true;
                if let Some((sol, lat)) = inc {
                    if best.as_ref().map(|(_, b)| lat < *b).unwrap_or(true) {
                        best = Some((sol, lat));
                    }
                }
            }
            OptimalOutcome::Infeasible => {}
        }
    }
    Ok(match (best, any_interrupted) {
        (Some((sol, lat)), false) => OptimalOutcome::Optimal(sol, lat),
        (best, true) => OptimalOutcome::Interrupted(best),
        (None, false) => OptimalOutcome::Infeasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::{Area, DesignPoint, TaskGraphBuilder};

    fn dp(name: &str, area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new(name, Area::new(area), Latency::from_ns(lat))
    }

    fn graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b
            .add_task("a")
            .design_point(dp("s", 50, 300.0))
            .design_point(dp("f", 90, 150.0))
            .finish();
        let c = b
            .add_task("c")
            .design_point(dp("s", 60, 250.0))
            .design_point(dp("f", 95, 120.0))
            .finish();
        b.add_edge(a, c, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn both_backends_prove_the_same_optimum() {
        let g = graph();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(50.0));
        // Optimum at N=2: 150 + 120 + 100 = 370.
        for backend in [Backend::Structured, Backend::Milp] {
            match solve_optimal(&g, &arch, 2, backend, SearchLimits::default()).unwrap() {
                OptimalOutcome::Optimal(_, lat) => {
                    assert_eq!(lat.as_ns(), 370.0, "backend {backend}")
                }
                other => panic!("{backend}: expected optimal, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_partition_forces_slow_or_infeasible() {
        let g = graph();
        // Both fast points: 90 + 95 = 185 > 100. Slow+slow = 110 > 100. The
        // only single-partition options mix: 50+60=110 > 100 too -> infeasible.
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(50.0));
        assert_eq!(
            solve_optimal(&g, &arch, 1, Backend::Structured, SearchLimits::default()).unwrap(),
            OptimalOutcome::Infeasible
        );
    }

    #[test]
    fn sweep_picks_best_bound() {
        let g = graph();
        let arch = Architecture::new(Area::new(200), 64, Latency::from_ms(1.0));
        // Huge C_T: best is a single partition with both fast points:
        // 150 + 120 serialized? They're chained: 270 + 1 ms.
        let out =
            solve_optimal_over_bounds(&g, &arch, 3, Backend::Structured, SearchLimits::default())
                .unwrap();
        match out {
            OptimalOutcome::Optimal(sol, lat) => {
                assert_eq!(sol.partitions_used(), 1);
                assert_eq!(lat.as_ns(), 270.0 + 1e6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
