//! Functional-unit libraries: area/delay estimates per operation kind and
//! bit width.

use crate::op::OpKind;
use rtr_graph::{Area, Latency};

/// Area and delay of one functional unit instance.
#[derive(Debug, Clone, PartialEq)]
pub struct FuSpec {
    /// FPGA area of the unit.
    pub area: Area,
    /// Combinational delay of one operation on the unit.
    pub delay: Latency,
    /// Secondary resource consumption per class (e.g. dedicated multiplier
    /// blocks); empty for pure-fabric units.
    pub secondary: Vec<u64>,
}

/// A parameterized functional-unit library.
///
/// The default [`xc4000_style`](Self::xc4000_style) library models a mid-90s
/// LUT-based FPGA of the kind targeted by the paper's SPARCS environment
/// (Wildforce boards carry XC4000-class parts): ripple-carry adders cost
/// about half a CLB per bit, array multipliers grow quadratically with
/// width, and combinational delays grow linearly with the carry/array
/// chains.
#[derive(Debug, Clone, PartialEq)]
pub struct FuLibrary {
    name: String,
    /// (area per unit, area per bit, area per bit², delay ns per bit, base delay ns)
    coeffs: Vec<(OpKind, FuCoeffs)>,
}

/// Cost-model coefficients for one operation kind.
#[derive(Debug, Clone, PartialEq)]
struct FuCoeffs {
    area_base: f64,
    area_per_bit: f64,
    area_per_bit2: f64,
    delay_base_ns: f64,
    delay_per_bit_ns: f64,
    /// Dedicated blocks of each secondary class consumed per unit.
    secondary: &'static [u64],
}

impl FuLibrary {
    /// A library styled after XC4000-era LUT FPGAs (see type-level docs).
    pub fn xc4000_style() -> Self {
        let c =
            |area_base, area_per_bit, area_per_bit2, delay_base_ns, delay_per_bit_ns| FuCoeffs {
                area_base,
                area_per_bit,
                area_per_bit2,
                delay_base_ns,
                delay_per_bit_ns,
                secondary: &[],
            };
        FuLibrary {
            name: "xc4000-style".into(),
            coeffs: vec![
                (OpKind::Add, c(2.0, 0.5, 0.0, 4.0, 0.9)),
                (OpKind::Sub, c(2.0, 0.5, 0.0, 4.0, 0.9)),
                (OpKind::Mul, c(4.0, 0.0, 0.5, 10.0, 2.2)),
                (OpKind::Mac, c(6.0, 0.5, 0.5, 12.0, 2.6)),
                (OpKind::Shift, c(1.0, 0.75, 0.0, 3.0, 0.3)),
                (OpKind::Cmp, c(1.0, 0.5, 0.0, 3.0, 0.5)),
            ],
        }
    }

    /// A library styled after early-2000s FPGAs with *dedicated multiplier
    /// blocks* (Virtex-II class): multipliers and MACs consume one block of
    /// secondary resource class 0 and very little fabric, trading the
    /// quadratic soft-multiplier area for a scarce hard resource. Pair with
    /// [`Architecture::with_secondary_capacities`] on the partitioner side.
    ///
    /// [`Architecture::with_secondary_capacities`]:
    ///     https://docs.rs/rtr-core (rtr_core::Architecture)
    pub fn virtex_style() -> Self {
        let c =
            |area_base, area_per_bit, area_per_bit2, delay_base_ns, delay_per_bit_ns, secondary| {
                FuCoeffs {
                    area_base,
                    area_per_bit,
                    area_per_bit2,
                    delay_base_ns,
                    delay_per_bit_ns,
                    secondary,
                }
            };
        const ONE_DSP: &[u64] = &[1];
        FuLibrary {
            name: "virtex-style".into(),
            coeffs: vec![
                (OpKind::Add, c(2.0, 0.5, 0.0, 3.0, 0.5, &[])),
                (OpKind::Sub, c(2.0, 0.5, 0.0, 3.0, 0.5, &[])),
                (OpKind::Mul, c(6.0, 0.25, 0.0, 8.0, 0.3, ONE_DSP)),
                (OpKind::Mac, c(8.0, 0.5, 0.0, 9.0, 0.4, ONE_DSP)),
                (OpKind::Shift, c(1.0, 0.75, 0.0, 2.0, 0.2, &[])),
                (OpKind::Cmp, c(1.0, 0.5, 0.0, 2.0, 0.3, &[])),
            ],
        }
    }

    /// A uniform unit-cost library, useful in tests: every functional unit
    /// has area `width` and delay `width` ns regardless of kind.
    pub fn unit() -> Self {
        let c = FuCoeffs {
            area_base: 0.0,
            area_per_bit: 1.0,
            area_per_bit2: 0.0,
            delay_base_ns: 0.0,
            delay_per_bit_ns: 1.0,
            secondary: &[],
        };
        FuLibrary { name: "unit".into(), coeffs: OpKind::ALL.map(|k| (k, c.clone())).to_vec() }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Area and delay of a `kind` functional unit sized for `width`-bit
    /// operands.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero (validated tasks never ask for it).
    pub fn spec(&self, kind: OpKind, width: u32) -> FuSpec {
        assert!(width > 0, "functional units have positive width");
        let c = self
            .coeffs
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| c.clone())
            .expect("library covers all operation kinds");
        let w = f64::from(width);
        let area = (c.area_base + c.area_per_bit * w + c.area_per_bit2 * w * w).ceil() as u64;
        let delay = c.delay_base_ns + c.delay_per_bit_ns * w;
        FuSpec {
            area: Area::new(area.max(1)),
            delay: Latency::from_ns(delay),
            secondary: c.secondary.to_vec(),
        }
    }
}

impl Default for FuLibrary {
    fn default() -> Self {
        FuLibrary::xc4000_style()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_scales_linearly() {
        let lib = FuLibrary::xc4000_style();
        let a8 = lib.spec(OpKind::Add, 8);
        let a16 = lib.spec(OpKind::Add, 16);
        assert!(a16.area > a8.area);
        assert!(a16.delay > a8.delay);
        // Linear area: delta per 8 bits is constant.
        let a24 = lib.spec(OpKind::Add, 24);
        assert_eq!(a24.area.units() - a16.area.units(), a16.area.units() - a8.area.units());
    }

    #[test]
    fn multiplier_scales_quadratically() {
        let lib = FuLibrary::xc4000_style();
        let m8 = lib.spec(OpKind::Mul, 8);
        let m16 = lib.spec(OpKind::Mul, 16);
        // Quadratic: doubling width should much more than double area.
        assert!(m16.area.units() > 3 * m8.area.units());
    }

    #[test]
    fn multiplier_dominates_adder() {
        let lib = FuLibrary::xc4000_style();
        for w in [4u32, 8, 16, 24, 32] {
            assert!(lib.spec(OpKind::Mul, w).area > lib.spec(OpKind::Add, w).area);
            assert!(lib.spec(OpKind::Mul, w).delay > lib.spec(OpKind::Add, w).delay);
        }
    }

    #[test]
    fn unit_library_is_uniform() {
        let lib = FuLibrary::unit();
        for k in OpKind::ALL {
            let s = lib.spec(k, 12);
            assert_eq!(s.area, Area::new(12));
            assert_eq!(s.delay, Latency::from_ns(12.0));
        }
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_width_panics() {
        FuLibrary::unit().spec(OpKind::Add, 0);
    }

    #[test]
    fn virtex_multipliers_consume_dsp_blocks() {
        let lib = FuLibrary::virtex_style();
        assert_eq!(lib.spec(OpKind::Mul, 16).secondary, vec![1]);
        assert_eq!(lib.spec(OpKind::Mac, 16).secondary, vec![1]);
        assert!(lib.spec(OpKind::Add, 16).secondary.is_empty());
        // Hard multipliers trade quadratic fabric for a dedicated block.
        let soft = FuLibrary::xc4000_style().spec(OpKind::Mul, 16);
        let hard = lib.spec(OpKind::Mul, 16);
        assert!(hard.area < soft.area);
        assert!(hard.delay < soft.delay);
    }
}
