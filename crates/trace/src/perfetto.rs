//! Chrome / Perfetto trace-event export.
//!
//! Turns a captured event stream into the JSON trace-event format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: `{"traceEvents": [...]}` with complete-duration (`"X"`),
//! counter (`"C"`), instant (`"i"`), and thread-metadata (`"M"`) records.
//!
//! The solver stack is logically concurrent in two places, and both carry
//! their identity as event fields rather than OS thread ids (the capture /
//! replay machinery deliberately erases physical threads to keep traces
//! deterministic — see `DESIGN.md`, "Parallel exploration"). The exporter
//! reconstructs timeline *tracks* from those fields:
//!
//! * spans with an `n` field (phase-2 candidate explorations,
//!   `search.reduce_latency`) map to one track per partition bound;
//! * spans with a `job` field (intra-window subtree jobs,
//!   `structured.subtree`) map to one track per job slot;
//! * everything else lands on the main track.
//!
//! Counters accumulate into running totals so the timeline shows growth
//! curves rather than per-emission deltas; gauges pass through as sampled
//! values. All output records are sorted by start timestamp, so each
//! track's timestamps are monotone — the property the round-trip test
//! pins down.

use crate::event::{Event, EventKind, Value};
use std::collections::BTreeMap;

/// The synthetic process id every track lives under.
const PID: u64 = 1;
/// Track id of the main (un-attributed) stream.
const MAIN_TID: u64 = 0;
/// Track ids `CANDIDATE_BASE + n` hold candidate explorations.
const CANDIDATE_BASE: u64 = 1_000;
/// Track ids `SUBTREE_BASE + job` hold intra-window subtree jobs.
const SUBTREE_BASE: u64 = 1_000_000;

/// One output record, pre-serialization, keyed for deterministic order.
struct Record {
    ts_us: u64,
    tid: u64,
    body: String,
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_value(out: &mut String, value: &Value) {
    match value {
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) if v.is_finite() => {
            let s = format!("{v}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(v) => json_string(out, v),
    }
}

fn args_object(fields: &[(String, Value)], skip: &[&str]) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (key, value) in fields {
        if skip.contains(&key.as_str()) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        json_string(&mut out, key);
        out.push(':');
        json_value(&mut out, value);
    }
    out.push('}');
    out
}

/// The track an event belongs to, from its identity fields.
fn track_of(event: &Event) -> u64 {
    if let Some(job) = event.u64_field("job") {
        return SUBTREE_BASE + job;
    }
    if event.kind == EventKind::Span {
        if let Some(n) = event.u64_field("n") {
            return CANDIDATE_BASE + n;
        }
    }
    MAIN_TID
}

fn track_name(tid: u64) -> String {
    if tid >= SUBTREE_BASE {
        format!("subtree job {}", tid - SUBTREE_BASE)
    } else if tid >= CANDIDATE_BASE {
        format!("candidate N={}", tid - CANDIDATE_BASE)
    } else {
        "explore".to_owned()
    }
}

/// Converts an event stream into a Chrome trace-event JSON document.
///
/// Every event kind maps to a trace-event phase: spans to `"X"` (complete
/// events, placed at their start time), counters to cumulative `"C"`
/// records, gauges to sampled `"C"` records, and point events to `"i"`
/// instants. Thread-name metadata (`"M"`) describes each reconstructed
/// track. The output is valid for an empty stream too
/// (`{"traceEvents": []}`).
pub fn to_chrome_trace<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a Event>,
{
    let mut records: Vec<Record> = Vec::new();
    let mut tracks: BTreeMap<u64, ()> = BTreeMap::new();
    let mut counter_totals: BTreeMap<&str, u64> = BTreeMap::new();
    for event in events {
        let tid = track_of(event);
        tracks.entry(tid).or_insert(());
        let mut body = String::with_capacity(128);
        let ts_us = match event.kind {
            EventKind::Span => {
                let dur = event.u64_field("dur_us").unwrap_or(0);
                let start = event.ts_us.saturating_sub(dur);
                body.push_str("\"ph\":\"X\",\"name\":");
                json_string(&mut body, &event.name);
                body.push_str(&format!(",\"dur\":{dur},\"args\":"));
                body.push_str(&args_object(&event.fields, &["dur_us"]));
                start
            }
            EventKind::Counter => {
                let total = counter_totals.entry(event.name.as_str()).or_insert(0);
                *total = total.saturating_add(event.u64_field("value").unwrap_or(0));
                body.push_str("\"ph\":\"C\",\"name\":");
                json_string(&mut body, &event.name);
                body.push_str(&format!(",\"args\":{{\"total\":{total}}}"));
                event.ts_us
            }
            EventKind::Gauge => {
                body.push_str("\"ph\":\"C\",\"name\":");
                json_string(&mut body, &event.name);
                body.push_str(",\"args\":{\"value\":");
                let value = event.f64_field("value").unwrap_or(f64::NAN);
                json_value(&mut body, &Value::F64(value));
                body.push('}');
                event.ts_us
            }
            EventKind::Event => {
                body.push_str("\"ph\":\"i\",\"s\":\"t\",\"name\":");
                json_string(&mut body, &event.name);
                body.push_str(",\"args\":");
                body.push_str(&args_object(&event.fields, &[]));
                event.ts_us
            }
        };
        records.push(Record { ts_us, tid, body });
    }
    // Start-time order makes every track's timestamps monotone; the stable
    // sort keeps equal-timestamp records in emission order.
    records.sort_by_key(|r| r.ts_us);

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push_record = |out: &mut String, line: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  ");
        out.push_str(&line);
    };
    for (&tid, ()) in &tracks {
        let mut line = format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{PID},\"tid\":{tid},\"args\":{{\"name\":"
        );
        json_string(&mut line, &track_name(tid));
        line.push_str("}}");
        push_record(&mut out, line);
    }
    for r in records {
        push_record(
            &mut out,
            format!("{{{},\"pid\":{PID},\"tid\":{},\"ts\":{}}}", r.body, r.tid, r.ts_us),
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_value, JsonValue};

    fn event(kind: EventKind, name: &str, ts: u64, fields: Vec<(String, Value)>) -> Event {
        Event { ts_us: ts, kind, name: name.into(), fields }
    }

    fn parse_trace(doc: &str) -> Vec<Vec<(String, JsonValue)>> {
        let JsonValue::Obj(top) = parse_value(doc).expect("export is valid JSON") else {
            panic!("not an object");
        };
        let (_, JsonValue::Arr(items)) =
            top.iter().find(|(k, _)| k == "traceEvents").expect("has traceEvents").clone()
        else {
            panic!("traceEvents is not an array");
        };
        items
            .into_iter()
            .map(|item| match item {
                JsonValue::Obj(fields) => fields,
                other => panic!("trace event is not an object: {other:?}"),
            })
            .collect()
    }

    fn num(fields: &[(String, JsonValue)], key: &str) -> Option<f64> {
        fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            JsonValue::Num(v, _) => Some(*v),
            _ => None,
        })
    }

    fn text(fields: &[(String, JsonValue)], key: &str) -> Option<String> {
        fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            JsonValue::Str(s) => Some(s.clone()),
            _ => None,
        })
    }

    #[test]
    fn empty_stream_exports_valid_json() {
        let doc = to_chrome_trace(std::iter::empty());
        assert!(parse_trace(&doc).is_empty());
    }

    #[test]
    fn tracks_phases_and_monotone_timestamps() {
        let events = vec![
            event(
                EventKind::Span,
                "search.reduce_latency",
                900,
                vec![("n".into(), Value::U64(3)), ("dur_us".into(), Value::U64(800))],
            ),
            event(
                EventKind::Span,
                "structured.subtree",
                500,
                vec![
                    ("job".into(), Value::U64(7)),
                    ("depth".into(), Value::U64(2)),
                    ("dur_us".into(), Value::U64(300)),
                ],
            ),
            event(
                EventKind::Counter,
                "structured.nodes",
                250,
                vec![("value".into(), Value::U64(10))],
            ),
            event(
                EventKind::Counter,
                "structured.nodes",
                600,
                vec![("value".into(), Value::U64(5))],
            ),
            event(EventKind::Gauge, "lp.objective", 700, vec![("value".into(), Value::F64(2.5))]),
            event(
                EventKind::Event,
                "search.iteration",
                650,
                vec![("n".into(), Value::U64(3)), ("result".into(), Value::Str("feasible".into()))],
            ),
        ];
        let doc = to_chrome_trace(&events);
        let items = parse_trace(&doc);

        // Three tracks (main, candidate N=3, subtree job 7), named via "M".
        let names: Vec<String> = items
            .iter()
            .filter(|f| text(f, "ph").as_deref() == Some("M"))
            .map(|f| {
                let Some((_, JsonValue::Obj(args))) = f.iter().find(|(k, _)| k == "args") else {
                    panic!("metadata without args");
                };
                text(args, "name").expect("thread name")
            })
            .collect();
        assert_eq!(names, vec!["explore", "candidate N=3", "subtree job 7"]);

        // Spans land at their start time with their duration.
        let span = items
            .iter()
            .find(|f| text(f, "name").as_deref() == Some("search.reduce_latency"))
            .expect("candidate span exported");
        assert_eq!(text(span, "ph").as_deref(), Some("X"));
        assert_eq!(num(span, "ts"), Some(100.0));
        assert_eq!(num(span, "dur"), Some(800.0));
        assert_eq!(num(span, "tid"), Some(1_003.0));
        let subtree = items
            .iter()
            .find(|f| text(f, "name").as_deref() == Some("structured.subtree"))
            .expect("subtree span exported");
        assert_eq!(num(subtree, "tid"), Some(1_000_007.0));

        // Counters accumulate; the second sample reports the running total.
        let totals: Vec<f64> = items
            .iter()
            .filter(|f| text(f, "name").as_deref() == Some("structured.nodes"))
            .map(|f| {
                let Some((_, JsonValue::Obj(args))) = f.iter().find(|(k, _)| k == "args") else {
                    panic!("counter without args");
                };
                num(args, "total").expect("counter total")
            })
            .collect();
        assert_eq!(totals, vec![10.0, 15.0]);

        // The instant survives with its fields.
        let instant =
            items.iter().find(|f| text(f, "ph").as_deref() == Some("i")).expect("instant exported");
        assert_eq!(text(instant, "name").as_deref(), Some("search.iteration"));

        // Per-track monotone timestamps (the round-trip guarantee).
        let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
        for f in items.iter().filter(|f| text(f, "ph").as_deref() != Some("M")) {
            let tid = num(f, "tid").expect("tid") as u64;
            let ts = num(f, "ts").expect("ts");
            if let Some(prev) = last_ts.insert(tid, ts) {
                assert!(ts >= prev, "track {tid} went backwards: {prev} -> {ts}\n{doc}");
            }
        }
    }

    #[test]
    fn string_fields_are_escaped() {
        let events = vec![event(
            EventKind::Event,
            "odd\"name",
            1,
            vec![("label".into(), Value::Str("tab\there".into()))],
        )];
        let doc = to_chrome_trace(&events);
        let items = parse_trace(&doc);
        let instant = items.last().expect("one event");
        assert_eq!(text(instant, "name").as_deref(), Some("odd\"name"));
    }
}
