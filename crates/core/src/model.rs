//! The ILP formulation of combined temporal partitioning and design-point
//! selection (paper §3.2.3, constraints (1)–(10)).
//!
//! Variables:
//!
//! * `Y_{p,t,m}` — binary; task `t` in partition `p` with module set `m`;
//! * `w_{p,e}` — boundary-crossing indicator for edge `e` at boundary `p`
//!   (continuous in `[0, 1]`; integral automatically given integral `Y`);
//! * `η` — number of partitions used;
//! * `d_p` — latency of partition `p`.
//!
//! Two formulation details differ from the paper's presentation and are
//! recorded in `DESIGN.md`: the temporal-order constraint (2) is expressed
//! through placement prefix sums `S(t,p) = Σ_{q≤p,m} Y_{q,t,m}` (an
//! equivalent linearization with `O(|E|·N)` rows instead of `O(|E|·N²)`),
//! and the products in (4)–(5) are linearized as bounds on `w` in terms of
//! the same prefix sums.

use crate::arch::{Architecture, EnvMemoryPolicy};
use crate::error::PartitionError;
use crate::solution::{Placement, Solution};
use rtr_graph::{Latency, PathLimits, TaskGraph};
use rtr_milp::{Constraint, LinExpr, Model, Rel, VarId, Variable};

/// Options controlling [`IlpModel::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelOptions {
    /// Add the upper-bound cuts `w ≤ S(t1,p-1)` and `w ≤ 1 - S(t2,p-1)` in
    /// addition to the (sufficient) lower-bound cut. Tightens the LP
    /// relaxation at the cost of `2·|E|·(N-1)` extra rows; the
    /// `ablation_formulation` bench measures the tradeoff.
    pub tight_linearization: bool,
    /// Include the latency lower-bound constraint (10). It only prunes the
    /// already-searched region and never excludes better solutions, so it is
    /// kept for fidelity with the paper but can be dropped.
    pub include_dmin_cut: bool,
    /// Cap on root→leaf path enumeration for the latency constraints (7).
    pub path_limits: PathLimits,
    /// Set `minimize Σ_p d_p + C_T·η` as the objective instead of building a
    /// pure feasibility model. Used for the paper's `Result(Optimal)` runs.
    pub minimize_latency: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            tight_linearization: false,
            include_dmin_cut: true,
            path_limits: PathLimits::default(),
            minimize_latency: false,
        }
    }
}

/// A built ILP instance together with its variable registry, so solver
/// output can be decoded back into a [`Solution`].
#[derive(Debug, Clone)]
pub struct IlpModel {
    model: Model,
    /// `y[t][p-1][m]`.
    y: Vec<Vec<Vec<VarId>>>,
    n: u32,
    /// All latency coefficients are divided by this scale (the model works
    /// in units of `D_max`) for numerical conditioning.
    latency_scale: f64,
    /// Row index of the latency upper-bound constraint (9).
    latency_ub_row: usize,
    /// Row index of the latency lower-bound constraint (10), when
    /// [`ModelOptions::include_dmin_cut`] kept it.
    latency_lb_row: Option<usize>,
}

impl IlpModel {
    /// The paper's `FormModel()`: builds the ILP for partition bound `n` and
    /// latency window `[d_min, d_max]` (absolute latencies, including
    /// reconfiguration overhead).
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::TooManyPaths`] if the latency constraints
    /// would need more root→leaf paths than `options.path_limits` allows,
    /// and [`PartitionError::ZeroPartitions`] for `n == 0`.
    pub fn build(
        graph: &TaskGraph,
        arch: &Architecture,
        n: u32,
        d_max: Latency,
        d_min: Latency,
        options: &ModelOptions,
    ) -> Result<Self, PartitionError> {
        if n == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        let paths = graph.enumerate_paths(options.path_limits);
        if paths.is_truncated() {
            return Err(PartitionError::TooManyPaths {
                total: paths.total_path_count(),
                cap: options.path_limits.max_paths,
            });
        }

        let scale = d_max.as_ns().max(1.0);
        let mut model = Model::new();
        let np = n as usize;

        // Y variables.
        let y: Vec<Vec<Vec<VarId>>> = graph
            .tasks()
            .iter()
            .enumerate()
            .map(|(t, task)| {
                (1..=np)
                    .map(|p| {
                        (0..task.design_points().len())
                            .map(|m| {
                                model.add_var(
                                    Variable::binary().with_name(format!("y_p{p}_t{t}_m{m}")),
                                )
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        // Prefix-sum expression S(t, p) = sum_{q <= p, m} Y_{q,t,m}.
        let prefix = |t: usize, p: usize| -> LinExpr {
            let mut e = LinExpr::new();
            for q in 1..=p {
                for &v in &y[t][q - 1] {
                    e.push(1.0, v);
                }
            }
            e
        };

        // (1) Uniqueness.
        for (t, _) in graph.tasks().iter().enumerate() {
            model.add_constraint(
                Constraint::new(prefix(t, np), Rel::Eq, 1.0).with_name(format!("unique_t{t}")),
            );
        }

        // (2) Temporal order: S(dst, p) <= S(src, p) for p < N.
        for (ei, e) in graph.edges().iter().enumerate() {
            for p in 1..np {
                let mut expr = prefix(e.dst().index(), p);
                for (v, c) in prefix(e.src().index(), p).normalized() {
                    expr.push(-c, v);
                }
                model.add_constraint(
                    Constraint::new(expr, Rel::Le, 0.0).with_name(format!("order_e{ei}_p{p}")),
                );
            }
        }

        // (4)/(5) boundary-crossing variables and their linearization, and
        // (3) memory constraints per boundary p in 2..=N.
        if n >= 2 {
            let w: Vec<Vec<VarId>> = graph
                .edges()
                .iter()
                .enumerate()
                .map(|(ei, _)| {
                    (2..=np)
                        .map(|p| {
                            model.add_var(
                                Variable::continuous(0.0, 1.0).with_name(format!("w_e{ei}_p{p}")),
                            )
                        })
                        .collect()
                })
                .collect();

            for (ei, e) in graph.edges().iter().enumerate() {
                for p in 2..=np {
                    let wv = w[ei][p - 2];
                    // w >= S(src, p-1) - S(dst, p-1).
                    let mut expr = prefix(e.src().index(), p - 1);
                    for (v, c) in prefix(e.dst().index(), p - 1).normalized() {
                        expr.push(-c, v);
                    }
                    expr.push(-1.0, wv);
                    model.add_constraint(
                        Constraint::new(expr, Rel::Le, 0.0).with_name(format!("wlb_e{ei}_p{p}")),
                    );
                    if options.tight_linearization {
                        // w <= S(src, p-1).
                        let mut hi = LinExpr::new().plus(1.0, wv);
                        for (v, c) in prefix(e.src().index(), p - 1).normalized() {
                            hi.push(-c, v);
                        }
                        model.add_constraint(
                            Constraint::new(hi, Rel::Le, 0.0).with_name(format!("wub1_e{ei}_p{p}")),
                        );
                        // w <= 1 - S(dst, p-1).
                        let mut hi2 = LinExpr::new().plus(1.0, wv);
                        for (v, c) in prefix(e.dst().index(), p - 1).normalized() {
                            hi2.push(c, v);
                        }
                        model.add_constraint(
                            Constraint::new(hi2, Rel::Le, 1.0)
                                .with_name(format!("wub2_e{ei}_p{p}")),
                        );
                    }
                }
            }

            for p in 2..=np {
                let mut expr = LinExpr::new();
                for (ei, e) in graph.edges().iter().enumerate() {
                    if e.data() > 0 {
                        expr.push(e.data() as f64, w[ei][p - 2]);
                    }
                }
                let mut rhs = arch.memory_capacity() as f64;
                if arch.env_policy() == EnvMemoryPolicy::Resident {
                    for (t, task) in graph.tasks().iter().enumerate() {
                        let delta = task.env_output() as f64 - task.env_input() as f64;
                        if delta != 0.0 {
                            for (v, c) in prefix(t, p - 1).normalized() {
                                expr.push(delta * c, v);
                            }
                        }
                        rhs -= task.env_input() as f64;
                    }
                }
                if !expr.is_empty() {
                    model.add_constraint(
                        Constraint::new(expr, Rel::Le, rhs).with_name(format!("mem_p{p}")),
                    );
                }
            }
        }

        // (6) Resource constraint per partition; one row per secondary
        // resource class as well ("Similar equations can be added if
        // multiple resource types exist in the FPGA").
        for p in 1..=np {
            let mut expr = LinExpr::new();
            for (t, task) in graph.tasks().iter().enumerate() {
                for (m, dp) in task.design_points().iter().enumerate() {
                    expr.push(dp.area().units() as f64, y[t][p - 1][m]);
                }
            }
            model.add_constraint(
                Constraint::new(expr, Rel::Le, arch.resource_capacity().units() as f64)
                    .with_name(format!("area_p{p}")),
            );
            for (class, &cap) in arch.secondary_capacities().iter().enumerate() {
                let mut expr = LinExpr::new();
                for (t, task) in graph.tasks().iter().enumerate() {
                    for (m, dp) in task.design_points().iter().enumerate() {
                        let usage = dp.secondary_usage(class);
                        if usage > 0 {
                            expr.push(usage as f64, y[t][p - 1][m]);
                        }
                    }
                }
                if !expr.is_empty() {
                    model.add_constraint(
                        Constraint::new(expr, Rel::Le, cap as f64)
                            .with_name(format!("sec{class}_p{p}")),
                    );
                }
            }
        }

        // d_p variables and (7) per-path latency constraints.
        let d: Vec<VarId> = (1..=np)
            .map(|p| model.add_var(Variable::continuous(0.0, 1.0).with_name(format!("d_p{p}"))))
            .collect();
        for (pi, path) in paths.paths().iter().enumerate() {
            for p in 1..=np {
                let mut expr = LinExpr::new();
                for &t in path {
                    for (m, dp) in graph.task(t).design_points().iter().enumerate() {
                        expr.push(dp.latency().as_ns() / scale, y[t.index()][p - 1][m]);
                    }
                }
                expr.push(-1.0, d[p - 1]);
                model.add_constraint(
                    Constraint::new(expr, Rel::Le, 0.0).with_name(format!("lat_path{pi}_p{p}")),
                );
            }
        }

        // (8) η >= highest partition used by any leaf.
        let eta = model.add_var(Variable::integer(1.0, f64::from(n)).with_name("eta"));
        for t in graph.leaves() {
            let mut expr = LinExpr::new();
            for p in 1..=np {
                for &v in &y[t.index()][p - 1] {
                    expr.push(p as f64, v);
                }
            }
            expr.push(-1.0, eta);
            model.add_constraint(
                Constraint::new(expr, Rel::Le, 0.0).with_name(format!("eta_t{}", t.index())),
            );
        }

        // (9)/(10) the latency window.
        let ct = arch.reconfig_time().as_ns() / scale;
        let window = |coeff_eta: f64| -> LinExpr {
            let mut expr = LinExpr::new();
            for &dv in &d {
                expr.push(1.0, dv);
            }
            expr.push(coeff_eta, eta);
            expr
        };
        let latency_ub_row = model.constraints().len();
        model.add_constraint(
            Constraint::new(window(ct), Rel::Le, d_max.as_ns() / scale).with_name("latency_ub"),
        );
        let latency_lb_row = if options.include_dmin_cut {
            let row = model.constraints().len();
            model.add_constraint(
                Constraint::new(window(ct), Rel::Ge, d_min.as_ns() / scale).with_name("latency_lb"),
            );
            Some(row)
        } else {
            None
        };
        if options.minimize_latency {
            model.minimize(window(ct));
        }

        Ok(IlpModel { model, y, n, latency_scale: scale, latency_ub_row, latency_lb_row })
    }

    /// Re-targets the latency window rows (9)/(10) to `[d_min, d_max]`
    /// without rebuilding the model — the mutation the paper's
    /// `Reduce_Latency` subdivision applies between solves. Coefficients
    /// keep the build-time scale, so this is an RHS-only change and a
    /// [`Basis`](rtr_milp::Basis) returned by a previous solve of this
    /// model stays valid for a warm re-solve
    /// ([`rtr_milp::solve_mip_warm`]).
    ///
    /// Intended for the shrinking windows of the subdivision loop: `d_max`
    /// must not exceed the build-time `D_max` (the `d_p` variables are
    /// capped at one build-time scale unit).
    pub fn set_latency_window(&mut self, d_max: Latency, d_min: Latency) {
        self.model.set_rhs(self.latency_ub_row, d_max.as_ns() / self.latency_scale);
        if let Some(row) = self.latency_lb_row {
            self.model.set_rhs(row, d_min.as_ns() / self.latency_scale);
        }
    }

    /// The underlying MILP model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The latency scale (ns per model latency unit).
    pub fn latency_scale(&self) -> f64 {
        self.latency_scale
    }

    /// Decodes an integral MILP solution back into task placements.
    ///
    /// # Panics
    ///
    /// Panics if the solution does not select exactly one `(p, m)` per task
    /// (cannot happen for solutions produced from this model).
    pub fn decode(&self, solution: &rtr_milp::Solution) -> Solution {
        let placements: Vec<Placement> = self
            .y
            .iter()
            .map(|per_task| {
                for (p_idx, per_p) in per_task.iter().enumerate() {
                    for (m, &v) in per_p.iter().enumerate() {
                        if solution.values[v.index()] > 0.5 {
                            return Placement { partition: p_idx as u32 + 1, design_point: m };
                        }
                    }
                }
                panic!("uniqueness constraint guarantees a selected placement")
            })
            .collect();
        Solution::new(placements, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_solution;
    use rtr_graph::{Area, DesignPoint, TaskGraphBuilder};
    use rtr_milp::SolveOptions;

    fn dp(name: &str, area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new(name, Area::new(area), Latency::from_ns(lat))
    }

    /// Two chained tasks, two design points each.
    fn small_graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b
            .add_task("a")
            .design_point(dp("s", 50, 300.0))
            .design_point(dp("f", 90, 150.0))
            .env_input(2)
            .finish();
        let c = b
            .add_task("c")
            .design_point(dp("s", 60, 250.0))
            .design_point(dp("f", 95, 120.0))
            .env_output(1)
            .finish();
        b.add_edge(a, c, 3).unwrap();
        b.build().unwrap()
    }

    fn solve(graph: &TaskGraph, arch: &Architecture, n: u32, d_max: f64) -> Option<Solution> {
        let ilp = IlpModel::build(
            graph,
            arch,
            n,
            Latency::from_ns(d_max),
            Latency::ZERO,
            &ModelOptions::default(),
        )
        .unwrap();
        let out = ilp.model().solve(&SolveOptions::feasibility()).unwrap();
        out.solution.map(|s| ilp.decode(&s))
    }

    #[test]
    fn feasible_window_yields_valid_solution() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        // Both tasks cannot share a partition (50+60 > 100): need 2 partitions.
        let sol = solve(&g, &arch, 2, 1_000.0).expect("feasible");
        assert!(validate_solution(&g, &arch, &sol).is_empty());
        assert_eq!(sol.partitions_used(), 2);
        assert!(sol.total_latency(&g, &arch).as_ns() <= 1_000.0);
    }

    #[test]
    fn too_tight_window_is_infeasible() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        // Fastest possible: 150 + 120 + 2*50 = 370. Ask for 300.
        assert!(solve(&g, &arch, 2, 300.0).is_none());
        // And 370 exactly is feasible.
        let sol = solve(&g, &arch, 2, 370.0).expect("feasible at the exact optimum");
        assert_eq!(sol.total_latency(&g, &arch).as_ns(), 370.0);
    }

    #[test]
    fn tight_latency_forces_fast_design_points() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(200), 16, Latency::from_ns(10.0));
        // One partition: serial chain. Slow points: 550 + 10. Fast: 270 + 10.
        let sol = solve(&g, &arch, 1, 280.0).expect("feasible with fast points");
        assert_eq!(sol.placement(rtr_graph::TaskId::from_index(0)).design_point, 1);
        assert_eq!(sol.placement(rtr_graph::TaskId::from_index(1)).design_point, 1);
    }

    #[test]
    fn memory_constraint_binds() {
        let g = small_graph();
        // Edge carries 3 units; memory 2 forbids splitting (and env-in 2 also
        // counts under Resident); area 100 forbids sharing -> infeasible.
        let arch = Architecture::new(Area::new(100), 2, Latency::from_ns(50.0));
        assert!(solve(&g, &arch, 2, 10_000.0).is_none());
        // Streamed policy with memory 3 allows the split.
        let arch2 = Architecture::new(Area::new(100), 3, Latency::from_ns(50.0))
            .with_env_policy(EnvMemoryPolicy::Streamed);
        assert!(solve(&g, &arch2, 2, 10_000.0).is_some());
    }

    #[test]
    fn temporal_order_is_enforced() {
        // Force dst earlier than src would be needed: single partition big
        // enough only for one task at a time and reversed-capacity trick is
        // hard; instead check order on every feasible solve.
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(5.0));
        for n in 2..=4 {
            if let Some(sol) = solve(&g, &arch, n, 100_000.0) {
                assert!(validate_solution(&g, &arch, &sol).is_empty(), "n = {n}");
            }
        }
    }

    #[test]
    fn zero_partitions_rejected() {
        let g = small_graph();
        let arch = Architecture::wildforce();
        assert!(matches!(
            IlpModel::build(
                &g,
                &arch,
                0,
                Latency::from_ns(1.0),
                Latency::ZERO,
                &Default::default()
            ),
            Err(PartitionError::ZeroPartitions)
        ));
    }

    #[test]
    fn path_cap_is_surfaced() {
        let g = small_graph();
        let arch = Architecture::wildforce();
        let opts = ModelOptions { path_limits: PathLimits { max_paths: 0 }, ..Default::default() };
        assert!(matches!(
            IlpModel::build(&g, &arch, 2, Latency::from_ns(1e6), Latency::ZERO, &opts),
            Err(PartitionError::TooManyPaths { .. })
        ));
    }

    #[test]
    fn set_latency_window_moves_only_the_rhs() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        let mut ilp = IlpModel::build(
            &g,
            &arch,
            2,
            Latency::from_ns(1_000.0),
            Latency::ZERO,
            &ModelOptions::default(),
        )
        .unwrap();
        let opts = SolveOptions::feasibility();
        assert!(ilp.model().solve(&opts).unwrap().solution.is_some());
        // Tighten below the instance optimum of 370: infeasible.
        ilp.set_latency_window(Latency::from_ns(300.0), Latency::ZERO);
        assert!(ilp.model().solve(&opts).unwrap().solution.is_none());
        // Exactly the optimum again: feasible, same answer as a fresh
        // build at that window.
        ilp.set_latency_window(Latency::from_ns(370.0), Latency::ZERO);
        let sol = ilp.model().solve(&opts).unwrap().solution.expect("feasible at optimum");
        let decoded = ilp.decode(&sol);
        assert_eq!(decoded.total_latency(&g, &arch).as_ns(), 370.0);
    }

    #[test]
    fn tight_linearization_gives_same_answers() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        for d_max in [300.0, 370.0, 1_000.0] {
            let loose = solve(&g, &arch, 2, d_max).is_some();
            let ilp = IlpModel::build(
                &g,
                &arch,
                2,
                Latency::from_ns(d_max),
                Latency::ZERO,
                &ModelOptions { tight_linearization: true, ..Default::default() },
            )
            .unwrap();
            let tight = ilp.model().solve(&SolveOptions::feasibility()).unwrap().solution.is_some();
            assert_eq!(loose, tight, "d_max = {d_max}");
        }
    }
}
