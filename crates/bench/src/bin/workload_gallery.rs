//! Gallery run: partition every built-in workload on both architecture
//! regimes (ms-scale Wildforce-class and ns-scale time-multiplexed) and
//! summarize — a quick integration check that the system handles graphs
//! beyond the paper's two case studies.
//!
//! `cargo run --release -p rtr-bench --bin workload_gallery`

use rtr_bench::BenchRun;
use rtr_core::{Architecture, ExploreParams, SearchLimits, TemporalPartitioner};
use rtr_graph::{Area, Latency, TaskGraph};
use std::time::Duration;

fn main() {
    let workloads: Vec<(&str, TaskGraph)> = vec![
        ("ar_filter", rtr_workloads::ar::ar_filter().expect("static")),
        ("dct_4x4", rtr_workloads::dct::dct_4x4()),
        ("fft_16", rtr_workloads::fft::fft_graph(16, 4).expect("valid shape")),
        ("jpeg", rtr_workloads::jpeg::jpeg_pipeline().expect("static")),
        ("matmul_3x3", rtr_workloads::matmul::matmul_graph(3, 2).expect("valid shape")),
        ("random_20", {
            rtr_workloads::random::random_layered(
                7,
                &rtr_workloads::random::RandomGraphParams { tasks: 20, ..Default::default() },
            )
        }),
    ];

    println!(
        "{:<12} {:>6} {:>6} {:>10} {:>5} {:>14} {:>14}",
        "workload", "tasks", "edges", "C_T", "η", "exec", "total"
    );
    let mut bench = BenchRun::new("workload_gallery");
    for (name, graph) in &workloads {
        // Device sized to half the min-area total, capped sensibly.
        let r_max = (graph.total_min_area().units() / 2).max(64);
        for (ct_slug, ct) in [("fast", Latency::from_ns(100.0)), ("slow", Latency::from_ms(5.0))] {
            let arch = Architecture::new(Area::new(r_max), 4096, ct);
            let params = ExploreParams {
                delta: Latency::from_ns(50.0),
                gamma: 2,
                limits: SearchLimits {
                    node_limit: 10_000_000,
                    time_limit: Some(Duration::from_secs(2)),
                },
                time_budget: Some(Duration::from_secs(30)),
                ..Default::default()
            };
            let Ok(partitioner) = TemporalPartitioner::new(graph, &arch, params) else {
                println!("{name:<12} task too large for R_max = {r_max}");
                continue;
            };
            let ex = partitioner.explore().expect("exploration runs");
            match (&ex.best, ex.best_latency) {
                (Some(best), Some(latency)) => {
                    let eta = best.partitions_used();
                    let exec = latency.saturating_sub(arch.reconfig_time() * eta);
                    println!(
                        "{:<12} {:>6} {:>6} {:>10} {:>5} {:>14} {:>14}",
                        name,
                        graph.task_count(),
                        graph.edge_count(),
                        ct.to_string(),
                        eta,
                        exec.to_string(),
                        latency.to_string()
                    );
                    let prefix = format!("{name}.{ct_slug}.");
                    bench.counter(format!("{prefix}eta"), u64::from(eta));
                    bench.metric(format!("{prefix}exec_ns"), exec.as_ns());
                    bench.metric(format!("{prefix}total_ns"), latency.as_ns());
                }
                _ => {
                    println!("{name:<12} no feasible solution at R_max = {r_max}");
                    bench.counter(format!("{name}.{ct_slug}.infeasible"), 1);
                }
            }
        }
    }
    println!("\nslow-reconfiguration devices (5 ms) pin η at the packing minimum; the");
    println!("fast regime trades extra configurations for faster design points.");
    bench.write_and_report();
}
