//! Solve options, solutions, and outcomes.

use crate::simplex::Pricing;
use std::fmt;
use std::time::Duration;

/// What the branch-and-bound driver should aim for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Goal {
    /// Stop at the first integer-feasible solution (the paper's
    /// `SolveModel()` constraint-satisfaction use of the ILP).
    Feasibility,
    /// Prove optimality of the objective.
    Optimal,
}

/// Options controlling a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Feasibility or optimality.
    pub goal: Goal,
    /// Maximum number of branch-and-bound nodes to explore.
    pub node_limit: usize,
    /// Total simplex-iteration (pivot) budget for the whole solve, summed
    /// across every LP it spawns — node LPs, cut-round re-solves, and
    /// strong-branch probes (0 means unlimited). Unlike `time_limit` this
    /// budget is deterministic: the same model and options stop at the
    /// same pivot on any machine, so pivot-budgeted outcomes can be
    /// recorded by bit-exact regression gates. On big models the LP work
    /// per node varies by orders of magnitude, which makes `node_limit`
    /// alone a poor proxy for effort; the pivot budget is the knob that
    /// actually bounds it. Exhaustion stops the solve like a node limit
    /// ([`Status::Feasible`] with an incumbent in hand,
    /// [`Status::LimitReached`] without); the LP in flight when the budget
    /// runs dry may overrun it by at most its own per-LP cap.
    pub pivot_limit: usize,
    /// Wall-clock deadline for the whole solve.
    pub time_limit: Option<Duration>,
    /// Tolerance within which a value counts as integral.
    pub int_tol: f64,
    /// Feasibility/optimality tolerance of the underlying simplex.
    pub lp_tol: f64,
    /// Simplex iteration limit per LP solve (0 means automatic).
    pub lp_iteration_limit: usize,
    /// Try rounding the root LP relaxation before branching.
    pub rounding_heuristic: bool,
    /// Run presolve (bound propagation, redundant-row removal) before
    /// branch and bound.
    pub presolve: bool,
    /// Warm-start each branch-and-bound node's LP from its parent's optimal
    /// basis (dual simplex); `false` forces the historical cold start at
    /// every node. Outcomes are identical either way — warm solves fall
    /// back to a cold start on any trouble — only the pivot counts differ.
    pub warm_start: bool,
    /// Simplex pricing rule for every LP solved during the search.
    pub pricing: Pricing,
    /// Run root cutting planes (cover/clique/Gomory rounds) before
    /// branching. Separation only runs for [`Goal::Optimal`] solves — the
    /// feasibility hot path of the paper's DSE loop stays cut-free.
    pub cuts: bool,
    /// Branch by reliability-initialized pseudo-costs ([`Goal::Optimal`]
    /// only; with no recorded pseudo-costs the score degrades to the
    /// historical most-fractional rule, which is what feasibility runs use).
    pub pseudo_cost_branching: bool,
}

impl SolveOptions {
    /// Options for a feasibility run.
    pub fn feasibility() -> Self {
        SolveOptions { goal: Goal::Feasibility, ..SolveOptions::default() }
    }

    /// Options for an optimality run.
    pub fn optimal() -> Self {
        SolveOptions { goal: Goal::Optimal, ..SolveOptions::default() }
    }

    /// Builder-style time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Builder-style node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Builder-style solve-wide pivot budget.
    pub fn with_pivot_limit(mut self, limit: usize) -> Self {
        self.pivot_limit = limit;
        self
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            goal: Goal::Feasibility,
            node_limit: 2_000_000,
            pivot_limit: 0,
            time_limit: None,
            int_tol: 1e-6,
            lp_tol: 1e-7,
            lp_iteration_limit: 0,
            rounding_heuristic: true,
            presolve: true,
            warm_start: true,
            pricing: Pricing::default(),
            cuts: true,
            pseudo_cost_branching: true,
        }
    }
}

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Optimality was proven (optimality goal only).
    Optimal,
    /// An integer-feasible solution was found (feasibility goal, or an
    /// optimality run interrupted by a limit with an incumbent in hand).
    Feasible,
    /// The model was proven infeasible.
    Infeasible,
    /// The LP relaxation is unbounded in the optimization direction.
    Unbounded,
    /// A node or time limit was hit with no incumbent.
    LimitReached,
}

impl Status {
    /// `true` for [`Status::Optimal`] and [`Status::Feasible`].
    pub fn has_solution(self) -> bool {
        matches!(self, Status::Optimal | Status::Feasible)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Optimal => "optimal",
            Status::Feasible => "feasible",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::LimitReached => "limit reached",
        })
    }
}

/// A (mixed-)integer solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value of every variable, indexed by [`VarId::index`](crate::VarId::index).
    pub values: Vec<f64>,
    /// Objective value at `values` (0 for pure feasibility models).
    pub objective: f64,
}

impl Solution {
    /// The value of `var` rounded to the nearest integer — convenient for
    /// binary/integer variables.
    pub fn int_value(&self, var: crate::VarId) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// The raw value of `var`.
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.index()]
    }
}

/// Statistics of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored (1 for a pure LP).
    pub nodes: usize,
    /// Total simplex iterations (pivots) across all LP solves.
    pub simplex_iterations: usize,
    /// Nodes pruned because their LP bound was dominated by the incumbent.
    pub nodes_pruned: usize,
    /// Nodes whose LP relaxation was infeasible.
    pub infeasible_nodes: usize,
    /// Wall-clock time spent inside per-node LP solves.
    pub lp_time: Duration,
    /// Variable bounds strengthened by presolve.
    pub presolve_tightened_bounds: usize,
    /// Constraints removed as redundant by presolve.
    pub presolve_removed_rows: usize,
    /// Node LPs solved warm (dual simplex from the parent basis).
    pub warm_starts: usize,
    /// Node LPs solved cold (slack-identity start), including warm attempts
    /// that fell back.
    pub cold_starts: usize,
    /// Basis refactorizations across all LP solves.
    pub refactorizations: usize,
    /// Estimated pivots avoided by warm starts: for every warm node LP, the
    /// most expensive LP solved earlier in the same tree (a lower bound on
    /// the cold-start price at this model size — exact when the tree is
    /// cold-rooted, conservative when even the root was warm) minus the
    /// pivots the warm solve actually took.
    pub pivots_saved: usize,
    /// Cutting planes generated across all root separation rounds
    /// (including ones later aged out of the pool).
    pub cuts_generated: usize,
    /// Cutting planes still active in the pool when the root loop ended.
    pub cuts_active: usize,
    /// Separation rounds that produced at least one Gomory cut.
    pub gomory_rounds: usize,
    /// Devex reference-framework resets across all LP solves.
    pub devex_resets: usize,
    /// Branchings decided by recorded pseudo-costs (both directions had
    /// history for the chosen variable).
    pub pseudo_cost_branches: usize,
    /// Child LPs solved for strong-branching reliability initialization.
    pub strong_branch_evals: usize,
    /// Final relative optimality gap in parts per million, capped at
    /// 1 000 000 (100%): 0 when optimality (or infeasibility) was proven,
    /// the incumbent-vs-best-open-bound gap when a limit stopped the
    /// search, 1 000 000 when a limit fired with no incumbent. Stored in
    /// ppm so statistics stay integer (hashable, exactly comparable).
    pub gap_ppm: usize,
}

impl SolveStats {
    /// Accumulates another run's statistics into this one (used when a
    /// caller sums stats across a sequence of solves).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.nodes += other.nodes;
        self.simplex_iterations += other.simplex_iterations;
        self.nodes_pruned += other.nodes_pruned;
        self.infeasible_nodes += other.infeasible_nodes;
        self.lp_time += other.lp_time;
        self.presolve_tightened_bounds += other.presolve_tightened_bounds;
        self.presolve_removed_rows += other.presolve_removed_rows;
        self.warm_starts += other.warm_starts;
        self.cold_starts += other.cold_starts;
        self.refactorizations += other.refactorizations;
        self.pivots_saved += other.pivots_saved;
        self.cuts_generated += other.cuts_generated;
        self.cuts_active += other.cuts_active;
        self.gomory_rounds += other.gomory_rounds;
        self.devex_resets += other.devex_resets;
        self.pseudo_cost_branches += other.pseudo_cost_branches;
        self.strong_branch_evals += other.strong_branch_evals;
        // Gaps do not sum: keep the worst gap seen across the sequence.
        self.gap_ppm = self.gap_ppm.max(other.gap_ppm);
    }
}

impl rtr_trace::Instrument for SolveStats {
    /// Emits the branch-and-bound counters under `scope` (e.g. scope
    /// `milp` yields `milp.nodes`, `milp.pivots`, ...). This is the single
    /// emission path for MILP statistics — the driver and the optimality
    /// runner both report through it rather than hand-copying counters.
    fn emit_metrics(&self, scope: &str) {
        if !rtr_trace::enabled() {
            return;
        }
        rtr_trace::counter(&format!("{scope}.nodes"), self.nodes as u64);
        rtr_trace::counter(&format!("{scope}.pivots"), self.simplex_iterations as u64);
        rtr_trace::counter(&format!("{scope}.nodes_pruned"), self.nodes_pruned as u64);
        rtr_trace::counter(&format!("{scope}.infeasible_nodes"), self.infeasible_nodes as u64);
        rtr_trace::counter(&format!("{scope}.lp_time_us"), self.lp_time.as_micros() as u64);
        rtr_trace::counter(
            &format!("{scope}.presolve_tightened_bounds"),
            self.presolve_tightened_bounds as u64,
        );
        rtr_trace::counter(
            &format!("{scope}.presolve_removed_rows"),
            self.presolve_removed_rows as u64,
        );
        rtr_trace::counter(&format!("{scope}.lp.warm_starts"), self.warm_starts as u64);
        rtr_trace::counter(&format!("{scope}.lp.cold_starts"), self.cold_starts as u64);
        rtr_trace::counter(&format!("{scope}.lp.refactorizations"), self.refactorizations as u64);
        rtr_trace::counter(&format!("{scope}.lp.pivots_saved"), self.pivots_saved as u64);
        rtr_trace::counter(&format!("{scope}.cuts_generated"), self.cuts_generated as u64);
        rtr_trace::counter(&format!("{scope}.cuts_active"), self.cuts_active as u64);
        rtr_trace::counter(&format!("{scope}.gomory_rounds"), self.gomory_rounds as u64);
        rtr_trace::counter(&format!("{scope}.lp.devex_resets"), self.devex_resets as u64);
        rtr_trace::counter(
            &format!("{scope}.pseudo_cost_branches"),
            self.pseudo_cost_branches as u64,
        );
        rtr_trace::counter(
            &format!("{scope}.strong_branch_evals"),
            self.strong_branch_evals as u64,
        );
        rtr_trace::counter(&format!("{scope}.gap_ppm"), self.gap_ppm as u64);
    }
}

/// Result of [`Model::solve`](crate::Model::solve).
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Why the solve stopped.
    pub status: Status,
    /// The incumbent solution, present iff `status.has_solution()`.
    pub solution: Option<Solution>,
    /// Search statistics.
    pub stats: SolveStats,
    /// The root LP relaxation's optimal basis, when it was solved to
    /// optimality on the *unreduced* model (presolve off or no-op). Feed it
    /// to [`solve_mip_warm`](crate::solve_mip_warm) after a bounds/RHS-only
    /// mutation — the paper's binary-subdivision loop — to warm-start the
    /// next solve in the chain.
    pub root_basis: Option<crate::Basis>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_has_solution() {
        assert!(Status::Optimal.has_solution());
        assert!(Status::Feasible.has_solution());
        assert!(!Status::Infeasible.has_solution());
        assert!(!Status::Unbounded.has_solution());
        assert!(!Status::LimitReached.has_solution());
    }

    #[test]
    fn options_builders() {
        let o = SolveOptions::optimal()
            .with_node_limit(5)
            .with_pivot_limit(1000)
            .with_time_limit(Duration::from_millis(10));
        assert_eq!(o.goal, Goal::Optimal);
        assert_eq!(o.node_limit, 5);
        assert_eq!(o.pivot_limit, 1000);
        assert_eq!(o.time_limit, Some(Duration::from_millis(10)));
    }

    #[test]
    fn status_display() {
        assert_eq!(Status::Infeasible.to_string(), "infeasible");
        assert_eq!(Status::LimitReached.to_string(), "limit reached");
    }
}
