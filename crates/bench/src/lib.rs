//! Shared experiment harness for the table-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table of the paper's
//! evaluation section; the configuration and printing logic lives here so
//! the binaries stay declarative. See `DESIGN.md` (per-experiment index)
//! and `EXPERIMENTS.md` (paper-vs-measured record) at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rtr_core::{
    Architecture, Exploration, ExploreParams, IterationResult, SearchLimits, TemporalPartitioner,
};
use rtr_graph::{Area, Latency, TaskGraph};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

pub mod diff;

/// Configuration of one DCT experiment (one paper table).
#[derive(Debug, Clone, Copy)]
pub struct DctExperiment {
    /// Table number in the paper.
    pub table: u32,
    /// Device capacity `R_max`.
    pub r_max: u64,
    /// Reconfiguration time `C_T`.
    pub ct: Latency,
    /// Latency tolerance `δ` in ns.
    pub delta_ns: f64,
    /// Starting partition relaxation `α`.
    pub alpha: u32,
    /// Ending partition relaxation `γ`.
    pub gamma: u32,
}

impl DctExperiment {
    /// Table 3: `R_max = 576`, small reconfiguration overhead, δ = 200.
    pub fn table3() -> Self {
        DctExperiment {
            table: 3,
            r_max: 576,
            ct: Latency::from_us(1.0),
            delta_ns: 200.0,
            alpha: 0,
            gamma: 1,
        }
    }

    /// Table 4: `R_max = 576`, `C_T = 10 ms`, δ = 200.
    pub fn table4() -> Self {
        DctExperiment { ct: Latency::from_ms(10.0), table: 4, ..DctExperiment::table3() }
    }

    /// Table 5: `R_max = 1024`, δ = 800, small overhead, α = 1.
    pub fn table5() -> Self {
        DctExperiment {
            table: 5,
            r_max: 1024,
            ct: Latency::from_us(1.0),
            delta_ns: 800.0,
            alpha: 1,
            gamma: 1,
        }
    }

    /// Table 6: `R_max = 1024`, δ = 800, `C_T = 10 ms`, α = 0.
    pub fn table6() -> Self {
        DctExperiment { table: 6, ct: Latency::from_ms(10.0), alpha: 0, ..DctExperiment::table5() }
    }

    /// Table 7: `R_max = 1024`, δ = 100, small overhead.
    pub fn table7() -> Self {
        DctExperiment { table: 7, delta_ns: 100.0, ..DctExperiment::table5() }
    }

    /// Table 8: `R_max = 1024`, δ = 100, `C_T = 10 ms`.
    pub fn table8() -> Self {
        DctExperiment { table: 8, delta_ns: 100.0, ..DctExperiment::table6() }
    }

    /// The architecture of this experiment (`M_max` = 512 words throughout,
    /// comfortably above the DCT's peak demand so the memory constraint is
    /// present but non-binding, as in the paper).
    pub fn architecture(&self) -> Architecture {
        Architecture::new(Area::new(self.r_max), 512, self.ct)
    }

    /// The exploration parameters of this experiment: pure node budgets
    /// and no wall-clock cut-offs, so a committed table reproduces the
    /// same solve trace on any machine.
    pub fn params(&self) -> ExploreParams {
        ExploreParams {
            delta: Latency::from_ns(self.delta_ns),
            alpha: self.alpha,
            gamma: self.gamma,
            limits: per_solve_limits(),
            ..Default::default()
        }
    }

    /// [`params`](Self::params) under the historical wall-clock deadlines
    /// (5 s per solve, 120 s per exploration). Faster on slow hosts but
    /// machine-dependent; selected by `runtime_comparison --deadline`.
    pub fn params_deadline(&self) -> ExploreParams {
        ExploreParams {
            limits: per_solve_limits_deadline(),
            time_budget: Some(Duration::from_secs(120)),
            ..self.params()
        }
    }
}

/// Per-`SolveModel()` limits used by all table binaries: a pure node
/// budget — enough to decide the paper-scale windows, deterministic on any
/// host. (40 M nodes corresponds to roughly the historical 5 s deadline at
/// the ~10 M nodes/s the structured solver sustains on one core.)
pub fn per_solve_limits() -> SearchLimits {
    SearchLimits { node_limit: 40_000_000, time_limit: None }
}

/// The wall-clock variant of [`per_solve_limits`]: the same node budget
/// plus the historical 5 s per-solve deadline. Opt-in (`--deadline`) for
/// hosts where 40 M nodes takes too long; the resulting tables depend on
/// machine speed.
pub fn per_solve_limits_deadline() -> SearchLimits {
    SearchLimits { node_limit: 40_000_000, time_limit: Some(Duration::from_secs(5)) }
}

/// Worker threads the table binaries use: the `RTR_THREADS` environment
/// variable if it parses to a positive integer, else 1. The sequential
/// default keeps unadorned table regeneration deterministic on any machine;
/// CI sets `RTR_THREADS=8` to exercise the parallel schedule.
pub fn thread_count() -> usize {
    std::env::var("RTR_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Runs a DCT experiment on [`thread_count`] worker threads and returns the
/// exploration.
///
/// # Panics
///
/// Panics if the partitioner rejects the instance (cannot happen for the
/// DCT at the paper's device sizes).
pub fn run_dct_experiment(exp: &DctExperiment, graph: &TaskGraph) -> Exploration {
    run_dct_experiment_threaded(exp, graph, thread_count())
}

/// [`run_dct_experiment`] with an explicit worker-thread count (`0` = auto,
/// `1` = sequential; see `TemporalPartitioner::explore_parallel`).
///
/// # Panics
///
/// Panics if the partitioner rejects the instance.
pub fn run_dct_experiment_threaded(
    exp: &DctExperiment,
    graph: &TaskGraph,
    threads: usize,
) -> Exploration {
    let arch = exp.architecture();
    let partitioner =
        TemporalPartitioner::new(graph, &arch, exp.params()).expect("DCT tasks fit the device");
    partitioner.explore_parallel(threads).expect("structured backend cannot fail")
}

/// Prints an exploration in the layout of the paper's tables: one row per
/// `SolveModel()` call with the bounds shown *without* the `N·C_T`
/// reconfiguration overhead, exactly like the paper's "Bound (without
/// N×C_T)" columns.
pub fn print_paper_table(title: &str, arch: &Architecture, exploration: &Exploration) {
    println!("{title}");
    println!(
        "{:>4} {:>4} {:>14} {:>14} {:>14} {:>4} {:>12}",
        "N", "I", "Dmin(ns)", "Dmax(ns)", "Da(ns)", "η", "time"
    );
    for r in &exploration.records {
        // Da is shown with the same N·C_T normalization as the bound
        // columns, so Da ≤ Dmax holds row-wise; η shows how many
        // partitions the solution actually used.
        let (result, eta) = match &r.result {
            IterationResult::Feasible { latency, eta } => (
                format!("{:.0}", latency.as_ns() - (arch.reconfig_time() * r.n).as_ns()),
                eta.to_string(),
            ),
            IterationResult::Infeasible => ("Inf.".to_owned(), "-".to_owned()),
            IterationResult::LimitReached => ("Inf.*".to_owned(), "-".to_owned()),
        };
        println!(
            "{:>4} {:>4} {:>14.0} {:>14.0} {:>14} {:>4} {:>12}",
            r.n,
            r.iteration,
            r.d_min_execution(arch).as_ns(),
            r.d_max_execution(arch).as_ns(),
            result,
            eta,
            format!("{:.1?}", r.elapsed),
        );
    }
    match (&exploration.best, exploration.best_latency) {
        (Some(best), Some(latency)) => {
            println!(
                "best: D_a = {:.0} ns total ({:.0} ns execution over η = {} partitions)",
                latency.as_ns(),
                latency.as_ns() - (arch.reconfig_time() * best.partitions_used()).as_ns(),
                best.partitions_used()
            );
        }
        _ => println!("no feasible solution found"),
    }
    println!(
        "(N_min^l = {}, N_min^u = {}; `Inf.*` = search budget exhausted, treated as infeasible)",
        exploration.n_min_lower, exploration.n_min_upper
    );
}

/// A machine-readable summary of one bench binary's run, written as
/// `BENCH_<name>.json` next to where the binary was invoked. Keys are kept
/// in sorted order so re-runs diff cleanly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchRun {
    name: String,
    metrics: BTreeMap<String, f64>,
    counters: BTreeMap<String, u64>,
}

impl BenchRun {
    /// An empty run summary named `name` (the `<name>` of
    /// `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchRun { name: name.into(), ..BenchRun::default() }
    }

    /// Records a real-valued measurement. Non-finite values are dropped
    /// (JSON has no representation for them).
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        if value.is_finite() {
            self.metrics.insert(key.into(), value);
        }
    }

    /// Records an integer-valued measurement.
    pub fn counter(&mut self, key: impl Into<String>, value: u64) {
        self.counters.insert(key.into(), value);
    }

    /// Records the standard summary of an exploration under `prefix`
    /// (e.g. `prefix = "table3."`): solve counts by outcome, the best
    /// latency, and the backend solver totals.
    pub fn record_exploration(&mut self, prefix: &str, ex: &Exploration) {
        self.record_exploration_tagged(prefix, ex, "");
    }

    /// [`record_exploration`](Self::record_exploration) for explorations
    /// run under wall-clock deadlines: every key is tagged with the
    /// `_deadline_dependent` suffix so the regression gate
    /// ([`diff`]) knows these values depend on machine speed and skips
    /// them. Selected by `runtime_comparison --deadline`.
    pub fn record_exploration_deadline(&mut self, prefix: &str, ex: &Exploration) {
        self.record_exploration_tagged(prefix, ex, "_deadline_dependent");
    }

    /// Records only the schedule-independent window summary of an
    /// exploration — solve counts by outcome and the best latency — for
    /// runs whose *node* counters are legitimately scheduling-dependent
    /// (parallel incumbent sharing) and must stay out of the counter gate.
    pub fn record_windows(&mut self, prefix: &str, ex: &Exploration) {
        let mut feasible = 0u64;
        let mut infeasible = 0u64;
        let mut limit = 0u64;
        for r in &ex.records {
            match r.result {
                IterationResult::Feasible { .. } => feasible += 1,
                IterationResult::Infeasible => infeasible += 1,
                IterationResult::LimitReached => limit += 1,
            }
        }
        self.counter(format!("{prefix}solves"), ex.records.len() as u64);
        self.counter(format!("{prefix}feasible_windows"), feasible);
        self.counter(format!("{prefix}infeasible_windows"), infeasible);
        self.counter(format!("{prefix}limit_windows"), limit);
        if let Some(latency) = ex.best_latency {
            self.metric(format!("{prefix}best_latency_ns"), latency.as_ns());
        }
    }

    fn record_exploration_tagged(&mut self, prefix: &str, ex: &Exploration, tag: &str) {
        let mut feasible = 0u64;
        let mut infeasible = 0u64;
        let mut limit = 0u64;
        for r in &ex.records {
            match r.result {
                IterationResult::Feasible { .. } => feasible += 1,
                IterationResult::Infeasible => infeasible += 1,
                IterationResult::LimitReached => limit += 1,
            }
        }
        self.counter(format!("{prefix}solves{tag}"), ex.records.len() as u64);
        self.counter(format!("{prefix}feasible_windows{tag}"), feasible);
        self.counter(format!("{prefix}infeasible_windows{tag}"), infeasible);
        self.counter(format!("{prefix}limit_windows{tag}"), limit);
        if let Some(latency) = ex.best_latency {
            self.metric(format!("{prefix}best_latency_ns{tag}"), latency.as_ns());
        }
        let st = ex.structured_totals();
        if st.nodes > 0 {
            self.counter(format!("{prefix}structured.nodes{tag}"), st.nodes);
            self.counter(format!("{prefix}structured.latency_prunes{tag}"), st.latency_prunes);
            self.counter(format!("{prefix}structured.area_prunes{tag}"), st.area_prunes);
            self.counter(format!("{prefix}structured.memory_rejects{tag}"), st.memory_rejects);
            self.counter(format!("{prefix}structured.dominance_prunes{tag}"), st.dominance_prunes);
            self.counter(
                format!("{prefix}structured.incumbent_updates{tag}"),
                st.incumbent_updates,
            );
            // Depth-bucketed node/prune attribution: which fraction of the
            // assignment tree each depth band accounts for, and where the
            // pruning actually bites.
            for (i, (&n, &p)) in st.nodes_by_depth.iter().zip(&st.prunes_by_depth).enumerate() {
                if n > 0 {
                    self.counter(format!("{prefix}structured.depth{i}.nodes{tag}"), n);
                }
                if p > 0 {
                    self.counter(format!("{prefix}structured.depth{i}.prunes{tag}"), p);
                }
            }
            // Search throughput: nodes over the wall-clock of the windows
            // that actually ran the structured solver.
            let solve_secs: f64 = ex
                .records
                .iter()
                .filter(|r| r.stats.structured.is_some())
                .map(|r| r.elapsed.as_secs_f64())
                .sum();
            if solve_secs > 0.0 {
                self.metric(
                    format!("{prefix}structured.nodes_per_sec{tag}"),
                    st.nodes as f64 / solve_secs,
                );
            }
        }
        let mt = ex.milp_totals();
        if mt.nodes > 0 {
            self.counter(format!("{prefix}milp.nodes{tag}"), mt.nodes as u64);
            self.counter(format!("{prefix}milp.pivots{tag}"), mt.simplex_iterations as u64);
            self.counter(format!("{prefix}milp.nodes_pruned{tag}"), mt.nodes_pruned as u64);
            self.counter(format!("{prefix}milp.lp_time_us{tag}"), mt.lp_time.as_micros() as u64);
            self.counter(format!("{prefix}milp.lp.warm_starts{tag}"), mt.warm_starts as u64);
            self.counter(format!("{prefix}milp.lp.cold_starts{tag}"), mt.cold_starts as u64);
            self.counter(
                format!("{prefix}milp.lp.refactorizations{tag}"),
                mt.refactorizations as u64,
            );
            self.counter(format!("{prefix}milp.lp.pivots_saved{tag}"), mt.pivots_saved as u64);
        }
    }

    /// The JSON document: `{"name": ..., "counters": {...}, "metrics": {...}}`.
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", escape(k)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Integral floats keep a trailing .0 so the value round-trips
            // as a float.
            let rendered =
                if v.fract() == 0.0 && v.abs() < 1e15 { format!("{v:.1}") } else { format!("{v}") };
            out.push_str(&format!("\n    \"{}\": {rendered}", escape(k)));
        }
        out.push_str(if self.metrics.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into the current directory and returns
    /// its path.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// [`write`](Self::write), reporting the outcome on standard output /
    /// error instead of returning it — the convenience every bench binary
    /// tail-calls.
    pub fn write_and_report(&self) {
        match self.write() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\ncannot write BENCH_{}.json: {e}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_workloads::dct::dct_4x4;

    #[test]
    fn bench_run_json_shape() {
        let mut run = BenchRun::new("shape");
        run.counter("b.count", 3);
        run.counter("a.count", 1);
        run.metric("elapsed_ms", 12.5);
        run.metric("round", 7.0);
        run.metric("dropped", f64::NAN); // non-finite values are discarded
        let json = run.to_json();
        assert_eq!(
            json,
            "{\n  \"name\": \"shape\",\n  \"counters\": {\n    \"a.count\": 1,\n    \
             \"b.count\": 3\n  },\n  \"metrics\": {\n    \"elapsed_ms\": 12.5,\n    \
             \"round\": 7.0\n  }\n}\n"
        );
    }

    #[test]
    fn bench_run_json_escapes_and_empty_maps() {
        let run = BenchRun::new("quo\"te");
        let json = run.to_json();
        assert!(json.contains("\"quo\\\"te\""), "{json}");
        assert!(json.contains("\"counters\": {}"), "{json}");
        assert!(json.contains("\"metrics\": {}"), "{json}");
    }

    #[test]
    fn bench_run_records_exploration_counters() {
        let g = rtr_workloads::ar::ar_filter().expect("static construction");
        let arch =
            Architecture::new(Area::new(g.total_min_area().units() / 2), 64, Latency::from_us(1.0));
        let params = ExploreParams {
            delta: Latency::from_ns(50.0),
            gamma: 1,
            limits: per_solve_limits(),
            ..Default::default()
        };
        let part = TemporalPartitioner::new(&g, &arch, params).expect("tasks fit");
        let ex = part.explore().expect("exploration runs");
        let mut run = BenchRun::new("probe");
        run.record_exploration("x.", &ex);
        let json = run.to_json();
        assert!(json.contains("\"x.solves\""), "{json}");
        assert!(json.contains("\"x.structured.nodes\""), "{json}");
        assert!(json.contains("\"x.best_latency_ns\""), "{json}");
    }

    #[test]
    fn experiment_configs_match_paper_parameters() {
        assert_eq!(DctExperiment::table3().r_max, 576);
        assert_eq!(DctExperiment::table4().ct, Latency::from_ms(10.0));
        assert_eq!(DctExperiment::table5().alpha, 1);
        assert_eq!(DctExperiment::table7().delta_ns, 100.0);
        assert_eq!(DctExperiment::table8().r_max, 1024);
    }

    #[test]
    fn table_printer_does_not_panic() {
        let g = dct_4x4();
        let exp = DctExperiment {
            table: 0,
            r_max: 1024,
            ct: Latency::from_us(1.0),
            delta_ns: 2_000.0,
            alpha: 0,
            gamma: 0,
        };
        let ex = run_dct_experiment(&exp, &g);
        print_paper_table("smoke", &exp.architecture(), &ex);
        assert!(ex.best.is_some());
    }
}
