//! Random and deterministic synthetic task graphs for stress and property
//! tests.

use crate::rng::Rng;
use rtr_graph::{Area, DesignPoint, Latency, TaskGraph, TaskGraphBuilder};

/// Parameters of the layered random DAG generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomGraphParams {
    /// Number of tasks.
    pub tasks: usize,
    /// Maximum tasks per layer (controls graph width).
    pub max_layer_width: usize,
    /// Probability of an edge between tasks in adjacent layers.
    pub edge_probability: f64,
    /// Design points per task, inclusive range.
    pub design_points: (usize, usize),
    /// Design-point area range (the generator keeps points Pareto).
    pub area_range: (u64, u64),
    /// Design-point latency range in ns.
    pub latency_range: (f64, f64),
    /// Edge data volume range.
    pub data_range: (u64, u64),
}

impl Default for RandomGraphParams {
    fn default() -> Self {
        RandomGraphParams {
            tasks: 16,
            max_layer_width: 4,
            edge_probability: 0.5,
            design_points: (1, 3),
            area_range: (40, 200),
            latency_range: (100.0, 900.0),
            data_range: (1, 4),
        }
    }
}

/// Generates a layered random DAG: tasks are split into layers of random
/// width, edges only go from one layer to the next, every non-first-layer
/// task gets at least one predecessor, and each task receives a random
/// Pareto-consistent design-point set.
///
/// The same seed always produces the same graph.
///
/// # Panics
///
/// Panics if `params.tasks == 0` or the ranges are inverted.
pub fn random_layered(seed: u64, params: &RandomGraphParams) -> TaskGraph {
    assert!(params.tasks > 0, "need at least one task");
    assert!(params.area_range.0 <= params.area_range.1, "area range inverted");
    assert!(params.latency_range.0 <= params.latency_range.1, "latency range inverted");
    let mut rng = Rng::new(seed);
    let mut b = TaskGraphBuilder::new();

    // Split into layers.
    let mut layers: Vec<Vec<rtr_graph::TaskId>> = Vec::new();
    let mut created = 0usize;
    while created < params.tasks {
        let width = rng.range_usize(1, params.max_layer_width).min(params.tasks - created);
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            let id = b
                .add_task(format!("t{created}"))
                .design_points(random_pareto_points(&mut rng, params))
                .env_input(rng.range_u64(0, 2))
                .env_output(rng.range_u64(0, 1))
                .finish();
            layer.push(id);
            created += 1;
        }
        layers.push(layer);
    }

    for li in 1..layers.len() {
        for &dst in &layers[li] {
            let mut got_pred = false;
            for &src in &layers[li - 1] {
                if rng.chance(params.edge_probability) {
                    let data = rng.range_u64(params.data_range.0, params.data_range.1);
                    b.add_edge(src, dst, data).expect("layered edges are unique and forward");
                    got_pred = true;
                }
            }
            if !got_pred {
                let src = layers[li - 1][rng.range_usize(0, layers[li - 1].len() - 1)];
                let data = rng.range_u64(params.data_range.0, params.data_range.1);
                b.add_edge(src, dst, data).expect("fresh edge");
            }
        }
    }
    b.build().expect("generator respects all graph invariants")
}

/// A random Pareto-consistent design-point set: sorted by area ascending and
/// latency descending, so no point dominates another.
fn random_pareto_points(rng: &mut Rng, params: &RandomGraphParams) -> Vec<DesignPoint> {
    let count = rng.range_usize(params.design_points.0.max(1), params.design_points.1.max(1));
    let mut areas: Vec<u64> = (0..count)
        .map(|_| rng.range_u64(params.area_range.0.max(1), params.area_range.1.max(1)))
        .collect();
    areas.sort_unstable();
    areas.dedup();
    let mut lats: Vec<f64> = (0..areas.len())
        .map(|_| rng.range_f64(params.latency_range.0, params.latency_range.1))
        .collect();
    lats.sort_by(f64::total_cmp);
    lats.reverse();
    areas
        .into_iter()
        .zip(lats)
        .enumerate()
        .map(|(i, (a, l))| DesignPoint::new(format!("dp{i}"), Area::new(a), Latency::from_ns(l)))
        .collect()
}

/// A chain of `n` single-design-point tasks (area `area`, latency
/// `latency_ns`, edge data 1).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: usize, area: u64, latency_ns: f64) -> TaskGraph {
    assert!(n > 0);
    let mut b = TaskGraphBuilder::new();
    let mut prev = None;
    for i in 0..n {
        let t = b
            .add_task(format!("t{i}"))
            .design_point(DesignPoint::new("m", Area::new(area), Latency::from_ns(latency_ns)))
            .finish();
        if let Some(p) = prev {
            b.add_edge(p, t, 1).expect("fresh edge");
        }
        prev = Some(t);
    }
    b.build().expect("chains are valid")
}

/// `n` independent single-design-point tasks (an embarrassingly parallel
/// workload).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn independent(n: usize, area: u64, latency_ns: f64) -> TaskGraph {
    assert!(n > 0);
    let mut b = TaskGraphBuilder::new();
    for i in 0..n {
        b.add_task(format!("t{i}"))
            .design_point(DesignPoint::new("m", Area::new(area), Latency::from_ns(latency_ns)))
            .finish();
    }
    b.build().expect("independent sets are valid")
}

/// `k` stacked diamonds (fork-join pairs); the number of root→leaf paths is
/// `2^k`, which stresses path enumeration.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn diamond_stack(k: usize, area: u64, latency_ns: f64) -> TaskGraph {
    assert!(k > 0);
    let dp = DesignPoint::new("m", Area::new(area), Latency::from_ns(latency_ns));
    let mut b = TaskGraphBuilder::new();
    let mut prev = b.add_task("s").design_point(dp.clone()).finish();
    for i in 0..k {
        let l = b.add_task(format!("l{i}")).design_point(dp.clone()).finish();
        let r = b.add_task(format!("r{i}")).design_point(dp.clone()).finish();
        let j = b.add_task(format!("j{i}")).design_point(dp.clone()).finish();
        b.add_edge(prev, l, 1).expect("fresh edge");
        b.add_edge(prev, r, 1).expect("fresh edge");
        b.add_edge(l, j, 1).expect("fresh edge");
        b.add_edge(r, j, 1).expect("fresh edge");
        prev = j;
    }
    b.build().expect("diamond stacks are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = RandomGraphParams::default();
        assert_eq!(random_layered(42, &p), random_layered(42, &p));
        assert_ne!(random_layered(42, &p), random_layered(43, &p));
    }

    #[test]
    fn requested_task_count() {
        for tasks in [1, 5, 16, 40] {
            let g = random_layered(7, &RandomGraphParams { tasks, ..Default::default() });
            assert_eq!(g.task_count(), tasks);
        }
    }

    #[test]
    fn non_root_tasks_have_predecessors() {
        let g = random_layered(3, &RandomGraphParams { tasks: 30, ..Default::default() });
        // Layer structure guarantees connectivity beyond the first layer:
        // the number of roots equals the first layer's width (≤ max width).
        assert!(g.roots().len() <= 4);
    }

    #[test]
    fn design_points_are_pareto() {
        let g = random_layered(11, &RandomGraphParams { tasks: 25, ..Default::default() });
        for t in g.tasks() {
            for a in t.design_points() {
                for b in t.design_points() {
                    assert!(!a.is_dominated_by(b));
                }
            }
        }
    }

    #[test]
    fn deterministic_shapes() {
        assert_eq!(chain(4, 10, 5.0).edge_count(), 3);
        assert_eq!(independent(6, 10, 5.0).edge_count(), 0);
        let d = diamond_stack(3, 10, 5.0);
        assert_eq!(d.task_count(), 10);
        assert_eq!(d.enumerate_paths(rtr_graph::PathLimits::default()).total_path_count(), Some(8));
    }
}
