//! End-to-end checkpoint/resume contract, exercised through the real
//! `rtrpart` binary: a run killed with SIGKILL mid-exploration and resumed
//! from its checkpoint must produce a final CSV byte-identical to an
//! uninterrupted run at the same thread count.
//!
//! Every run here uses `--solve-nodes` (a node budget instead of a
//! wall-clock one) so window outcomes do not depend on machine speed, and
//! `--threads 1`: the sequential path is bit-deterministic even when a
//! window exhausts its node budget, whereas the parallel intra-window
//! search documents limit-hit results as best-effort (which nodes a shared
//! budget covers depends on scheduling).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_rtrpart");

/// Per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("rtr_ckpt_{}_{label}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn write_dct(dir: &Scratch) -> PathBuf {
    let graph = dir.path("dct.tg");
    let text = rtrpart::workloads::dct::dct_4x4().to_text();
    fs::write(&graph, text).expect("write graph");
    graph
}

/// The shared deterministic argument set; `extra` appends run-specific flags.
fn run_args(graph: &Path, extra: &[&str]) -> Vec<String> {
    let mut args: Vec<String> = [
        "partition",
        "--graph",
        graph.to_str().unwrap(),
        "--rmax",
        "576",
        "--mmax",
        "512",
        "--ct",
        "1us",
        "--gamma",
        "2",
        "--solve-nodes",
        "150000",
        "--threads",
        "1",
        "--quiet",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    args.extend(extra.iter().map(|s| (*s).to_owned()));
    args
}

fn run_ok(graph: &Path, extra: &[&str]) {
    let out = Command::new(BIN).args(run_args(graph, extra)).output().expect("spawn rtrpart");
    assert!(out.status.success(), "rtrpart failed: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn kill_mid_run_then_resume_yields_byte_identical_csv() {
    let dir = Scratch::new("kill_resume");
    let graph = write_dct(&dir);
    let base_csv = dir.path("base.csv");
    let ck = dir.path("ck.json");
    let resumed_csv = dir.path("resumed.csv");

    // Reference: one uninterrupted run.
    run_ok(&graph, &["--csv", base_csv.to_str().unwrap()]);
    let baseline = fs::read(&base_csv).expect("baseline csv");

    // Victim: checkpoint after every window, killed as soon as the
    // checkpoint holds at least one completed window.
    let mut child = Command::new(BIN)
        .args(run_args(&graph, &["--checkpoint", ck.to_str().unwrap(), "--checkpoint-every", "0"]))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");
    let deadline = Instant::now() + Duration::from_secs(120);
    let killed = loop {
        if let Some(text) = fs::read_to_string(&ck).ok().filter(|t| t.contains("\"records\"")) {
            if text.contains("\"n\":") {
                break child.kill().is_ok();
            }
        }
        if child.try_wait().expect("poll victim").is_some() || Instant::now() > deadline {
            // The victim finished (or stalled) before we could kill it;
            // resuming from the complete checkpoint still must reproduce
            // the baseline, so the test stays meaningful.
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let _ = child.wait();
    assert!(ck.exists(), "victim never wrote a checkpoint");

    // Resume from whatever survived the kill.
    run_ok(&graph, &["--resume", ck.to_str().unwrap(), "--csv", resumed_csv.to_str().unwrap()]);
    let resumed = fs::read(&resumed_csv).expect("resumed csv");
    assert_eq!(
        baseline, resumed,
        "resumed CSV differs from the uninterrupted run (victim killed mid-run: {killed})"
    );
}

#[test]
fn checkpointed_run_without_interruption_matches_plain_run() {
    let dir = Scratch::new("plain_vs_ckpt");
    let graph = write_dct(&dir);
    let base_csv = dir.path("base.csv");
    let ck_csv = dir.path("ck.csv");
    let ck = dir.path("ck.json");

    run_ok(&graph, &["--csv", base_csv.to_str().unwrap()]);
    run_ok(&graph, &["--csv", ck_csv.to_str().unwrap(), "--checkpoint", ck.to_str().unwrap()]);
    assert_eq!(
        fs::read(&base_csv).unwrap(),
        fs::read(&ck_csv).unwrap(),
        "checkpoint writes changed the exploration output"
    );
    // Under ambient fault injection `checkpoint.write` may have been forced
    // to fail (including the final flush), so the file's presence and
    // content are not guaranteed — the CSV equality above is the contract
    // that must survive.
    if std::env::var_os("RTR_FAILPOINTS").is_some() {
        return;
    }
    let text = fs::read_to_string(&ck).expect("checkpoint written");
    assert!(text.contains("\"version\": 1"), "checkpoint is not version 1: {text}");
}

#[test]
fn resume_rejects_a_checkpoint_from_different_parameters() {
    let dir = Scratch::new("fingerprint");
    let graph = write_dct(&dir);
    let ck = dir.path("ck.json");

    run_ok(&graph, &["--checkpoint", ck.to_str().unwrap()]);

    // Same graph, different device area: the fingerprint must not match.
    let mut args = run_args(&graph, &["--resume", ck.to_str().unwrap()]);
    let rmax = args.iter().position(|a| a == "--rmax").unwrap();
    args[rmax + 1] = "600".to_owned();
    let out = Command::new(BIN).args(args).output().expect("spawn rtrpart");
    assert!(!out.status.success(), "mismatched resume was accepted");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checkpoint"), "error does not mention the checkpoint: {stderr}");
}

#[test]
fn checkpoint_every_without_checkpoint_is_rejected() {
    let dir = Scratch::new("orphan_every");
    let graph = write_dct(&dir);
    let out = Command::new(BIN)
        .args(run_args(&graph, &["--checkpoint-every", "5"]))
        .output()
        .expect("spawn rtrpart");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint"));
}

#[test]
fn zero_rmax_is_rejected_with_a_clear_error() {
    let dir = Scratch::new("zero_rmax");
    let graph = write_dct(&dir);
    let mut args = run_args(&graph, &[]);
    let rmax = args.iter().position(|a| a == "--rmax").unwrap();
    args[rmax + 1] = "0".to_owned();
    let out = Command::new(BIN).args(args).output().expect("spawn rtrpart");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--rmax"));
}
