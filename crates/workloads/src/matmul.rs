//! A blocked matrix-multiply task graph.
//!
//! `C = A·B` on `n×n` matrices tiled into `b×b` blocks: task `(i, j, k)`
//! computes the partial product `A[i][k]·B[k][j]` and accumulates into
//! `C[i][j]`. Accumulation serializes the `k` chain for each output block,
//! while different output blocks are independent — a workload with deep
//! chains *and* wide parallelism, complementing the shallow-wide DCT and
//! the log-depth FFT.

use rtr_graph::{GraphError, TaskGraph, TaskGraphBuilder};
use rtr_hls::{synthesize_task, BehavioralTask, EstimatorOptions, FuLibrary, HlsError, OpKind};

/// Error type for matrix-multiply construction.
#[derive(Debug)]
pub enum MatMulError {
    /// `blocks` must be at least 1.
    BadShape {
        /// Requested blocks per dimension.
        blocks: usize,
    },
    /// Design-point synthesis failed.
    Hls(HlsError),
    /// Graph assembly failed.
    Graph(GraphError),
}

impl std::fmt::Display for MatMulError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatMulError::BadShape { blocks } => {
                write!(f, "matmul needs at least 1 block per dimension, got {blocks}")
            }
            MatMulError::Hls(e) => write!(f, "hls: {e}"),
            MatMulError::Graph(e) => write!(f, "graph: {e}"),
        }
    }
}

impl std::error::Error for MatMulError {}

impl From<HlsError> for MatMulError {
    fn from(e: HlsError) -> Self {
        MatMulError::Hls(e)
    }
}

impl From<GraphError> for MatMulError {
    fn from(e: GraphError) -> Self {
        MatMulError::Graph(e)
    }
}

/// One block partial product: `tile × tile` MACs (modeled at reduced count
/// to keep op graphs small: `tile` MAC chains of `tile` ops each).
fn block_product(name: &str, tile: usize, width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new(name);
    for _ in 0..tile {
        let mut prev = None;
        for _ in 0..tile {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(t.add_op(OpKind::Mac, width, &deps));
        }
    }
    t
}

/// Builds the blocked matrix-multiply task graph: `blocks³` tasks, with the
/// `k`-accumulation chains as edges. `tile` controls per-task operation
/// count (and hence design-point sizes).
///
/// # Errors
///
/// Returns [`MatMulError::BadShape`] if `blocks == 0` or `tile == 0`.
///
/// # Examples
///
/// ```
/// let mm = rtr_workloads::matmul::matmul_graph(2, 4).expect("valid shape");
/// assert_eq!(mm.task_count(), 8); // 2^3 partial products
/// // Each C-block is a chain of `blocks` accumulations.
/// assert_eq!(mm.edge_count(), 4); // 2*2 output blocks x (2-1) chain edges
/// ```
// Indices (i, j, k) address three dimensions of `ids` in matrix order;
// iterator rewrites would obscure the tiling structure.
#[allow(clippy::needless_range_loop)]
pub fn matmul_graph(blocks: usize, tile: usize) -> Result<TaskGraph, MatMulError> {
    if blocks == 0 || tile == 0 {
        return Err(MatMulError::BadShape { blocks: blocks.min(tile) });
    }
    let lib = FuLibrary::xc4000_style();
    let opts = EstimatorOptions { max_points: 3, ..Default::default() };
    let mut b = TaskGraphBuilder::new();
    let mut ids = vec![vec![vec![None; blocks]; blocks]; blocks];
    let words = (tile * tile) as u64;
    for i in 0..blocks {
        for j in 0..blocks {
            for (k, plane) in ids.iter_mut().enumerate() {
                let name = format!("mm_i{i}_j{j}_k{k}");
                let template = block_product(&name, tile, 16);
                // Every partial product reads its A and B tiles from the
                // host; the last accumulation writes the C tile back.
                let env_out = if k + 1 == blocks { words } else { 0 };
                let task = synthesize_task(&template, &lib, &opts, 2 * words, env_out)?;
                plane[i][j] = Some(b.add_prepared_task(task));
            }
        }
    }
    for i in 0..blocks {
        for j in 0..blocks {
            for k in 1..blocks {
                b.add_edge(
                    ids[k - 1][i][j].expect("created above"),
                    ids[k][i][j].expect("created above"),
                    words,
                )?;
            }
        }
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_of_3_block_matmul() {
        let g = matmul_graph(3, 2).unwrap();
        assert_eq!(g.task_count(), 27);
        // 9 output blocks, chains of length 3 -> 2 edges each.
        assert_eq!(g.edge_count(), 18);
        assert_eq!(g.roots().len(), 9);
        assert_eq!(g.leaves().len(), 9);
        // Accumulation chains: depth 3.
        assert_eq!(g.stats().depth, 3);
        assert_eq!(g.stats().width, 9);
    }

    #[test]
    fn chains_are_per_output_block() {
        let g = matmul_graph(2, 2).unwrap();
        for e in g.edges() {
            let src = g.task(e.src()).name();
            let dst = g.task(e.dst()).name();
            // Same (i, j), consecutive k.
            let pre = |s: &str| s.rsplit_once("_k").map(|(a, _)| a.to_owned()).unwrap();
            assert_eq!(pre(src), pre(dst), "{src} -> {dst}");
        }
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(matches!(matmul_graph(0, 2), Err(MatMulError::BadShape { .. })));
        assert!(matches!(matmul_graph(2, 0), Err(MatMulError::BadShape { .. })));
    }

    #[test]
    fn single_block_is_one_task() {
        let g = matmul_graph(1, 3).unwrap();
        assert_eq!(g.task_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.tasks()[0].env_input(), 18);
        assert_eq!(g.tasks()[0].env_output(), 9);
    }

    #[test]
    fn partitions_and_simulates() {
        // Moved end-to-end coverage lives in tests/workload_suite.rs; here
        // just confirm the graph validates and is deterministic.
        assert_eq!(matmul_graph(2, 2).unwrap(), matmul_graph(2, 2).unwrap());
    }
}
