//! Criterion benches for the solver stack.
//!
//! `cargo bench -p rtr-bench`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::baseline::{greedy_partition, DesignPointPicker};
use rtr_core::model::{IlpModel, ModelOptions};
use rtr_core::structured::{SearchGoal, StructuredSolver};
use rtr_core::{Architecture, Backend, ExploreParams, SearchLimits, TemporalPartitioner};
use rtr_graph::{Area, Latency};
use rtr_hls::{enumerate_design_points, EstimatorOptions, FuLibrary};
use rtr_milp::SolveOptions;
use rtr_workloads::ar::{ar_filter, template_a};
use rtr_workloads::dct::{dct_4x4, dct_nxn};
use rtr_workloads::random::{random_layered, RandomGraphParams};
use std::time::Duration;

fn quick_limits() -> SearchLimits {
    SearchLimits { node_limit: 2_000_000, time_limit: Some(Duration::from_millis(500)) }
}

/// Full iterative exploration of the AR filter (Table 1 inner loop).
fn bench_ar_explore(c: &mut Criterion) {
    let graph = ar_filter().expect("static construction");
    let r_max = graph.total_min_area().units() / 2;
    let arch = Architecture::new(Area::new(r_max), 64, Latency::from_us(1.0));
    c.bench_function("ar_filter/explore", |b| {
        b.iter(|| {
            let params = ExploreParams {
                delta: Latency::from_ns(50.0),
                gamma: 1,
                limits: quick_limits(),
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
            part.explore().expect("explores")
        })
    });
}

/// One feasible window solve on the paper-scale DCT (structured backend).
fn bench_dct_window(c: &mut Criterion) {
    let graph = dct_4x4();
    let arch = Architecture::new(Area::new(1024), 512, Latency::from_us(1.0));
    let d_max = rtr_core::max_latency(&graph, &arch, 6);
    c.bench_function("dct/window_feasible_n6", |b| {
        b.iter(|| {
            let solver = StructuredSolver::new(
                &graph,
                &arch,
                6,
                d_max.as_ns(),
                SearchGoal::FirstFeasible,
                quick_limits(),
            );
            solver.run()
        })
    });
}

/// The iterative procedure vs. solving to optimality with the ILP on the
/// same instance — the paper's §4 runtime comparison, as a measured bench.
fn bench_iterative_vs_optimal(c: &mut Criterion) {
    let graph = random_layered(3, &RandomGraphParams { tasks: 6, ..Default::default() });
    let arch = Architecture::new(Area::new(300), 64, Latency::from_us(1.0));
    let mut group = c.benchmark_group("iterative_vs_optimal");
    group.sample_size(10);
    group.bench_function("iterative_structured", |b| {
        b.iter(|| {
            let params = ExploreParams {
                delta: Latency::from_ns(100.0),
                limits: quick_limits(),
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
            part.explore().expect("explores")
        })
    });
    group.bench_function("optimal_milp", |b| {
        b.iter(|| {
            let d_max = rtr_core::max_latency(&graph, &arch, 3);
            let options =
                ModelOptions { minimize_latency: true, include_dmin_cut: false, ..Default::default() };
            let ilp = IlpModel::build(&graph, &arch, 3, d_max, Latency::ZERO, &options)
                .expect("model builds");
            ilp.model().solve(&SolveOptions::optimal()).expect("solves")
        })
    });
    group.finish();
}

/// Loose vs. tight `w` linearization on the faithful ILP (feasibility).
fn bench_linearization(c: &mut Criterion) {
    let graph = random_layered(7, &RandomGraphParams { tasks: 6, ..Default::default() });
    let arch = Architecture::new(Area::new(300), 64, Latency::from_us(1.0));
    let d_max = rtr_core::max_latency(&graph, &arch, 3);
    let mut group = c.benchmark_group("linearization");
    for (name, tight) in [("loose", false), ("tight", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let options = ModelOptions { tight_linearization: tight, ..Default::default() };
                let ilp = IlpModel::build(&graph, &arch, 3, d_max, Latency::ZERO, &options)
                    .expect("model builds");
                ilp.model().solve(&SolveOptions::feasibility()).expect("solves")
            })
        });
    }
    group.finish();
}

/// Structured-solver scaling over DCT instance sizes.
fn bench_dct_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dct_scaling");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        let graph = dct_nxn(n).expect("valid size");
        let arch = Architecture::new(Area::new(1024), 512, Latency::from_us(1.0));
        let bound = rtr_core::min_area_partitions(&graph, &arch) + 1;
        let d_max = rtr_core::max_latency(&graph, &arch, bound);
        group.bench_with_input(BenchmarkId::from_parameter(graph.task_count()), &n, |b, _| {
            b.iter(|| {
                let solver = StructuredSolver::new(
                    &graph,
                    &arch,
                    bound,
                    d_max.as_ns(),
                    SearchGoal::FirstFeasible,
                    quick_limits(),
                );
                solver.run()
            })
        });
    }
    group.finish();
}

/// The greedy baseline against a single structured window solve.
fn bench_greedy_baseline(c: &mut Criterion) {
    let graph = dct_4x4();
    let arch = Architecture::new(Area::new(576), 512, Latency::from_us(1.0));
    c.bench_function("dct/greedy_min_area", |b| {
        b.iter(|| greedy_partition(&graph, &arch, DesignPointPicker::MinArea, 16))
    });
}

/// HLS design-point enumeration on the AR filter's template A.
fn bench_hls(c: &mut Criterion) {
    let task = template_a("bench", 16);
    let lib = FuLibrary::xc4000_style();
    c.bench_function("hls/enumerate_template_a", |b| {
        b.iter(|| enumerate_design_points(&task, &lib, &EstimatorOptions::default()))
    });
}

/// Simulating a DCT solution.
fn bench_simulate(c: &mut Criterion) {
    let graph = dct_4x4();
    let arch = Architecture::new(Area::new(1024), 512, Latency::from_us(1.0));
    let sol = greedy_partition(&graph, &arch, DesignPointPicker::MinArea, 16)
        .expect("greedy packs the DCT");
    c.bench_function("sim/dct_greedy_solution", |b| {
        b.iter(|| rtr_sim::simulate(&graph, &arch, &sol).expect("valid solution"))
    });
}

/// Presolve on vs. off for the faithful ILP (feasibility solves).
fn bench_presolve(c: &mut Criterion) {
    let graph = random_layered(5, &RandomGraphParams { tasks: 6, ..Default::default() });
    let arch = Architecture::new(Area::new(300), 64, Latency::from_us(1.0));
    let d_max = rtr_core::max_latency(&graph, &arch, 3);
    let ilp = IlpModel::build(&graph, &arch, 3, d_max, Latency::ZERO, &ModelOptions::default())
        .expect("model builds");
    let mut group = c.benchmark_group("presolve");
    for (name, presolve) in [("on", true), ("off", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut opts = SolveOptions::feasibility();
                opts.presolve = presolve;
                ilp.model().solve(&opts).expect("solves")
            })
        });
    }
    group.finish();
}

/// The MILP backend on one small feasibility window (CPLEX stand-in cost).
fn bench_milp_backend(c: &mut Criterion) {
    let graph = random_layered(11, &RandomGraphParams { tasks: 5, ..Default::default() });
    let arch = Architecture::new(Area::new(250), 64, Latency::from_us(1.0));
    c.bench_function("milp/feasibility_5tasks_n3", |b| {
        b.iter(|| {
            let params = ExploreParams { backend: Backend::Milp, ..Default::default() };
            let part = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
            part.solve_window(
                3,
                rtr_core::max_latency(&graph, &arch, 3),
                Latency::ZERO,
            )
            .expect("solves")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_ar_explore, bench_dct_window, bench_iterative_vs_optimal,
        bench_linearization, bench_dct_scaling, bench_greedy_baseline, bench_hls,
        bench_simulate, bench_presolve, bench_milp_backend
}
criterion_main!(benches);
