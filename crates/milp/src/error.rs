//! Error type for model construction and solving.

use std::error::Error;
use std::fmt;

/// An error raised while building or solving a MILP model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MilpError {
    /// A variable id from a different model (or out of range) was used.
    UnknownVariable {
        /// Raw index of the unknown variable.
        index: usize,
        /// Number of variables in the model.
        var_count: usize,
    },
    /// A variable was declared with `lower > upper` or a non-finite bound
    /// where a finite one is required.
    InvalidBounds {
        /// Variable name or index.
        var: String,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// A coefficient or right-hand side is NaN or infinite.
    NonFiniteCoefficient {
        /// Where the coefficient appeared.
        context: String,
    },
    /// The simplex hit its iteration limit — usually a symptom of numerical
    /// cycling; raise the limit or rescale the model.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A textual basis file could not be interpreted against this model, or
    /// a basis was paired with a model of different dimensions.
    BasisFormat {
        /// What was wrong (includes the offending line for parse errors).
        detail: String,
    },
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::UnknownVariable { index, var_count } => {
                write!(f, "variable index {index} out of range for {var_count} variables")
            }
            MilpError::InvalidBounds { var, lower, upper } => {
                write!(f, "invalid bounds [{lower}, {upper}] for variable `{var}`")
            }
            MilpError::NonFiniteCoefficient { context } => {
                write!(f, "non-finite coefficient in {context}")
            }
            MilpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit {limit} exceeded")
            }
            MilpError::BasisFormat { detail } => {
                write!(f, "malformed basis: {detail}")
            }
        }
    }
}

impl Error for MilpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MilpError::InvalidBounds { var: "x".into(), lower: 2.0, upper: 1.0 };
        assert_eq!(e.to_string(), "invalid bounds [2, 1] for variable `x`");
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MilpError>();
    }
}
