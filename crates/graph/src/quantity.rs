//! Strongly-typed quantities: FPGA area and latency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// FPGA resource area, in device resource units (e.g. CLBs or function
/// generators), the `R(m)` of the paper.
///
/// # Examples
///
/// ```
/// use rtr_graph::Area;
/// let a = Area::new(180) + Area::new(216);
/// assert_eq!(a.units(), 396);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Area(u64);

impl Area {
    /// The zero area.
    pub const ZERO: Area = Area(0);

    /// Creates an area of `units` device resource units.
    pub const fn new(units: u64) -> Self {
        Area(units)
    }

    /// Returns the raw number of resource units.
    pub const fn units(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; clamps at zero.
    pub const fn saturating_sub(self, rhs: Area) -> Area {
        Area(self.0.saturating_sub(rhs.0))
    }

    /// Number of partitions of capacity `capacity` needed to hold this much
    /// area, ignoring fragmentation (the ⌈·⌉ of the paper's partition-bound
    /// estimates).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn partitions_needed(self, capacity: Area) -> u32 {
        assert!(capacity.0 > 0, "partition capacity must be positive");
        self.0.div_ceil(capacity.0) as u32
    }
}

impl Add for Area {
    type Output = Area;
    fn add(self, rhs: Area) -> Area {
        Area(self.0 + rhs.0)
    }
}

impl AddAssign for Area {
    fn add_assign(&mut self, rhs: Area) {
        self.0 += rhs.0;
    }
}

impl Sub for Area {
    type Output = Area;
    fn sub(self, rhs: Area) -> Area {
        Area(self.0 - rhs.0)
    }
}

impl Mul<u64> for Area {
    type Output = Area;
    fn mul(self, rhs: u64) -> Area {
        Area(self.0 * rhs)
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        Area(iter.map(|a| a.0).sum())
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Execution or reconfiguration latency, stored in nanoseconds; the `D(m)`
/// and `C_T` of the paper.
///
/// The paper expresses design-point latency "in terms of total execution time
/// and not in number of clock cycles"; nanoseconds are its base unit, with
/// reconfiguration overheads ranging up to milliseconds.
///
/// # Examples
///
/// ```
/// use rtr_graph::Latency;
/// let d = Latency::from_ns(430.0) + Latency::from_ns(475.0);
/// assert_eq!(d.as_ns(), 905.0);
/// assert!(Latency::from_ms(1.0) > d);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Latency(f64);

impl Latency {
    /// The zero latency.
    pub const ZERO: Latency = Latency(0.0);

    /// Creates a latency of `ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "latency must be finite and non-negative");
        Latency(ns)
    }

    /// Creates a latency of `us` microseconds.
    pub fn from_us(us: f64) -> Self {
        Latency::from_ns(us * 1e3)
    }

    /// Creates a latency of `ms` milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        Latency::from_ns(ms * 1e6)
    }

    /// Returns the latency in nanoseconds.
    pub const fn as_ns(self) -> f64 {
        self.0
    }

    /// Returns the latency in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the larger of two latencies.
    pub fn max(self, other: Latency) -> Latency {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two latencies.
    pub fn min(self, other: Latency) -> Latency {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Total-order comparison (via [`f64::total_cmp`]), for sorting.
    pub fn total_cmp(&self, other: &Latency) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Saturating subtraction; clamps at zero.
    pub fn saturating_sub(self, rhs: Latency) -> Latency {
        Latency((self.0 - rhs.0).max(0.0))
    }
}

impl Add for Latency {
    type Output = Latency;
    fn add(self, rhs: Latency) -> Latency {
        Latency(self.0 + rhs.0)
    }
}

impl AddAssign for Latency {
    fn add_assign(&mut self, rhs: Latency) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Latency {
    type Output = Latency;
    fn mul(self, rhs: f64) -> Latency {
        Latency(self.0 * rhs)
    }
}

impl Mul<u32> for Latency {
    type Output = Latency;
    fn mul(self, rhs: u32) -> Latency {
        Latency(self.0 * f64::from(rhs))
    }
}

impl Sum for Latency {
    fn sum<I: Iterator<Item = Latency>>(iter: I) -> Latency {
        Latency(iter.map(|l| l.0).sum())
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} ms", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} µs", self.0 / 1e3)
        } else {
            // Round to 0.1 ns to hide floating-point dust.
            let v = (self.0 * 10.0).round() / 10.0;
            if v.fract() == 0.0 {
                write!(f, "{v} ns")
            } else {
                write!(f, "{v:.1} ns")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_arithmetic() {
        assert_eq!(Area::new(3) + Area::new(4), Area::new(7));
        assert_eq!(Area::new(10) - Area::new(4), Area::new(6));
        assert_eq!(Area::new(10).saturating_sub(Area::new(40)), Area::ZERO);
        assert_eq!(Area::new(7) * 3, Area::new(21));
        let total: Area = [Area::new(1), Area::new(2), Area::new(3)].into_iter().sum();
        assert_eq!(total, Area::new(6));
    }

    #[test]
    fn partitions_needed_rounds_up() {
        assert_eq!(Area::new(4480).partitions_needed(Area::new(576)), 8);
        assert_eq!(Area::new(4480).partitions_needed(Area::new(1024)), 5);
        assert_eq!(Area::new(6240).partitions_needed(Area::new(576)), 11);
        assert_eq!(Area::new(576).partitions_needed(Area::new(576)), 1);
        assert_eq!(Area::new(577).partitions_needed(Area::new(576)), 2);
        assert_eq!(Area::ZERO.partitions_needed(Area::new(576)), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn partitions_needed_zero_capacity_panics() {
        let _ = Area::new(1).partitions_needed(Area::ZERO);
    }

    #[test]
    fn latency_units() {
        assert_eq!(Latency::from_us(1.5).as_ns(), 1500.0);
        assert_eq!(Latency::from_ms(10.0).as_ns(), 1e7);
        assert_eq!(Latency::from_ms(2.0).as_ms(), 2.0);
    }

    #[test]
    fn latency_arithmetic_and_order() {
        let a = Latency::from_ns(100.0);
        let b = Latency::from_ns(250.0);
        assert_eq!(a + b, Latency::from_ns(350.0));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b * 2.0, Latency::from_ns(500.0));
        assert_eq!(b * 3u32, Latency::from_ns(750.0));
        assert_eq!(b.saturating_sub(a), Latency::from_ns(150.0));
        assert_eq!(a.saturating_sub(b), Latency::ZERO);
        let total: Latency = [a, b].into_iter().sum();
        assert_eq!(total.as_ns(), 350.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_latency_panics() {
        let _ = Latency::from_ns(-1.0);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Latency::from_ns(905.0).to_string(), "905 ns");
        assert_eq!(Latency::from_ns(25_440.0).to_string(), "25.440 µs");
        assert_eq!(Latency::from_ms(10.0).to_string(), "10.000 ms");
        assert_eq!(Area::new(576).to_string(), "576");
    }
}
