//! Ablation: sweep the reconfiguration overhead `C_T` on the DCT and watch
//! the chosen partition count and design points move — §2's "Area-Latency
//! Tradeoff" quantified. The crossover where minimizing partitions stops
//! being optimal is the figure-of-merit.
//!
//! `cargo run --release -p rtr-bench --bin ablation_ct_sweep`

use rtr_bench::{per_solve_limits, BenchRun};
use rtr_core::{Architecture, ExploreParams, TemporalPartitioner};
use rtr_graph::{Area, Latency};
use rtr_workloads::dct::dct_4x4;
use std::time::Duration;

fn main() {
    let graph = dct_4x4();
    println!("C_T sweep on the 4x4 DCT, R_max = 1024, δ = 400 ns, γ = 2");
    println!(
        "{:>12} {:>5} {:>14} {:>14} {:>16}",
        "C_T", "η", "exec (ns)", "total", "mean area/cfg"
    );
    let mut bench = BenchRun::new("ablation_ct_sweep");
    for ct_ns in [30.0, 100.0, 300.0, 1e3, 3e3, 1e4, 1e5, 1e6, 1e7] {
        let arch = Architecture::new(Area::new(1024), 512, Latency::from_ns(ct_ns));
        let params = ExploreParams {
            delta: Latency::from_ns(400.0),
            alpha: 0,
            gamma: 2,
            limits: per_solve_limits(),
            time_budget: Some(Duration::from_secs(60)),
            ..Default::default()
        };
        let partitioner = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
        let ex = partitioner.explore().expect("exploration runs");
        let best = ex.best.expect("DCT is feasible");
        let eta = best.partitions_used();
        let mean_area: f64 =
            (1..=eta).map(|p| best.partition_area(&graph, p).units() as f64).sum::<f64>()
                / f64::from(eta);
        println!(
            "{:>12} {:>5} {:>14.0} {:>14} {:>16.0}",
            Latency::from_ns(ct_ns).to_string(),
            eta,
            best.execution_latency(&graph).as_ns(),
            best.total_latency(&graph, &arch).to_string(),
            mean_area
        );
        let prefix = format!("ct{ct_ns:.0}ns.");
        bench.counter(format!("{prefix}eta"), u64::from(eta));
        bench.metric(format!("{prefix}exec_ns"), best.execution_latency(&graph).as_ns());
        bench.metric(format!("{prefix}total_ns"), best.total_latency(&graph, &arch).as_ns());
        bench.metric(format!("{prefix}mean_area"), mean_area);
    }
    println!("\nexpected shape: small C_T -> more partitions, lower execution latency;");
    println!("large C_T -> the minimum-partition packing (η = N_min^l) wins.");
    bench.write_and_report();
}
