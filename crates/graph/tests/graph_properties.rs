//! Property tests for the task-graph model on randomly shaped DAGs.

use proptest::prelude::*;
use rtr_graph::{Area, DesignPoint, Latency, PathLimits, TaskGraph, TaskGraphBuilder};

/// Builds a random DAG directly (edges always point forward in id order, so
/// acyclicity holds by construction).
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (1usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = TaskGraphBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let dps = 1 + (next() % 3) as usize;
                let mut task = b.add_task(format!("t{i}"));
                for d in 0..dps {
                    task = task.design_point(DesignPoint::new(
                        format!("dp{d}"),
                        Area::new(next() % 100 + 1),
                        Latency::from_ns((next() % 1000) as f64),
                    ));
                }
                task.env_input(next() % 4).env_output(next() % 2).finish()
            })
            .collect();
        for j in 1..n {
            let edges = next() % 3;
            for _ in 0..edges {
                let i = (next() % j as u64) as usize;
                // Ignore duplicates.
                let _ = b.add_edge(ids[i], ids[j], next() % 8 + 1);
            }
        }
        b.build().expect("forward edges keep the graph acyclic")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 120, .. ProptestConfig::default() })]

    /// The topological order is a permutation that respects every edge.
    #[test]
    fn topological_order_is_valid(g in arb_graph()) {
        let order = g.topological_order();
        prop_assert_eq!(order.len(), g.task_count());
        let mut pos = vec![usize::MAX; g.task_count()];
        for (i, t) in order.iter().enumerate() {
            pos[t.index()] = i;
        }
        prop_assert!(pos.iter().all(|&p| p != usize::MAX));
        for e in g.edges() {
            prop_assert!(pos[e.src().index()] < pos[e.dst().index()]);
        }
    }

    /// Successor and predecessor lists mirror the edge list exactly.
    #[test]
    fn adjacency_mirrors_edges(g in arb_graph()) {
        for e in g.edges() {
            prop_assert!(g.successors(e.src()).contains(&e.dst()));
            prop_assert!(g.predecessors(e.dst()).contains(&e.src()));
        }
        let degree_sum: usize = g.task_ids().map(|t| g.successors(t).len()).sum();
        prop_assert_eq!(degree_sum, g.edge_count());
    }

    /// Text serialization round-trips exactly.
    #[test]
    fn text_round_trip(g in arb_graph()) {
        let text = g.to_text();
        let parsed = TaskGraph::from_text(&text).unwrap();
        prop_assert_eq!(&g, &parsed);
    }

    /// Path enumeration agrees with the DP path count when not truncated.
    #[test]
    fn path_enumeration_agrees_with_count(g in arb_graph()) {
        let e = g.enumerate_paths(PathLimits { max_paths: 5000 });
        if !e.is_truncated() {
            prop_assert_eq!(Some(e.paths().len() as u128), e.total_path_count());
        }
        for p in e.paths() {
            prop_assert!(g.predecessors(p[0]).is_empty());
            prop_assert!(g.successors(*p.last().unwrap()).is_empty());
        }
    }

    /// The min-latency critical path is a lower bound on any path sum and
    /// is realized by some root→leaf path.
    #[test]
    fn critical_path_is_max_over_paths(g in arb_graph()) {
        let e = g.enumerate_paths(PathLimits { max_paths: 5000 });
        if e.is_truncated() {
            return Ok(());
        }
        let best = e
            .paths()
            .iter()
            .map(|p| {
                p.iter()
                    .map(|t| g.task(*t).min_latency_point().latency().as_ns())
                    .sum::<f64>()
            })
            .fold(0.0f64, f64::max);
        prop_assert!((g.critical_path_min_latency().as_ns() - best).abs() < 1e-6);
    }

    /// Reachability is consistent with edges and transitive.
    #[test]
    fn reachability_is_transitive(g in arb_graph()) {
        for e in g.edges() {
            prop_assert!(g.reaches(e.src(), e.dst()));
            prop_assert!(!g.reaches(e.dst(), e.src()), "a DAG has no back reachability");
        }
        // Spot-check transitivity along two consecutive edges.
        for e1 in g.edges() {
            for &s in g.successors(e1.dst()) {
                prop_assert!(g.reaches(e1.src(), s));
            }
        }
    }

    /// The text parser never panics, whatever bytes it is fed.
    #[test]
    fn parser_never_panics(input in "\\PC{0,400}") {
        let _ = TaskGraph::from_text(&input);
    }

    /// The parser also survives near-miss inputs built from real directives.
    #[test]
    fn parser_survives_directive_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("task a env_in=0 env_out=0".to_owned()),
                Just(" dp m area=1 latency_ns=1".to_owned()),
                Just("edge a -> a data=1".to_owned()),
                Just("task".to_owned()),
                Just("dp".to_owned()),
                Just("edge x -> y".to_owned()),
                Just("# comment".to_owned()),
                "\\PC{0,30}",
            ],
            0..12,
        )
    ) {
        let _ = TaskGraph::from_text(&parts.join("\n"));
    }

    /// DOT export names every task and edge.
    #[test]
    fn dot_is_complete(g in arb_graph()) {
        let dot = g.to_dot();
        prop_assert_eq!(dot.matches(" -> ").count(), g.edge_count());
        for t in g.task_ids() {
            let node = format!("t{} [label=", t.index());
            let found = dot.contains(&node);
            prop_assert!(found, "missing node {}", node);
        }
    }
}
