//! A minimal JSON writer/parser for trace events.
//!
//! The workspace builds offline with zero external dependencies, so the
//! JSONL trace format is implemented here: a writer for [`Event`] and a
//! small recursive-descent parser that accepts standard JSON (objects,
//! arrays, strings with escapes, numbers, booleans, null) — enough to read
//! back anything the writer produces, plus hand-edited files.

use crate::event::{Event, EventKind, Value};
use std::fmt;

/// Serializes one event as a single-line JSON object:
///
/// ```text
/// {"ts_us":12,"kind":"span","name":"milp.solve","fields":{"nodes":4,"dur_us":88}}
/// ```
pub fn write_event(out: &mut String, event: &Event) {
    out.push_str("{\"ts_us\":");
    out.push_str(&event.ts_us.to_string());
    out.push_str(",\"kind\":\"");
    out.push_str(event.kind.label());
    out.push_str("\",\"name\":");
    write_string(out, &event.name);
    out.push_str(",\"fields\":{");
    for (i, (key, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(out, key);
        out.push(':');
        write_value(out, value);
    }
    out.push_str("}}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) if v.is_finite() => {
            let s = format!("{v}");
            out.push_str(&s);
            // Keep floats recognizable as floats on re-parse.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/inf; null is the conventional stand-in.
        Value::F64(_) => out.push_str("null"),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(v) => write_string(out, v),
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed JSON value.
///
/// The parser behind [`parse_event`] is generic; this type is its public
/// face so other zero-dependency consumers (the bench-diff gate, the
/// Perfetto round-trip tests, heartbeat readers) can parse arbitrary JSON
/// documents without a second parser in the workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; the flag records whether the literal had a fraction or
    /// exponent (so integral floats stay recognizable as floats).
    Num(f64, bool),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v, _) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one complete JSON document into a [`JsonValue`].
///
/// # Errors
///
/// Returns [`ParseError`] on malformed JSON or trailing characters.
pub fn parse_value(text: &str) -> Result<JsonValue, ParseError> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != text.len() {
        return parser.err("trailing characters after the JSON value");
    }
    Ok(value)
}

use JsonValue as Json;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { at: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", byte as char))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected `{text}`"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let mut fractional = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError { at: start, message: "invalid utf-8".into() })?;
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Num(v, fractional)),
            Err(_) => Err(ParseError { at: start, message: format!("bad number `{text}`") }),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The slice is non-empty by the
                    // surrounding guard, but a malformed input should yield a
                    // parse error, not a panic.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        ParseError { at: self.pos, message: "invalid utf-8".into() }
                    })?;
                    let Some(c) = rest.chars().next() else {
                        return self.err("unterminated string");
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

fn json_to_value(json: &Json) -> Value {
    match json {
        Json::Null => Value::F64(f64::NAN),
        Json::Bool(b) => Value::Bool(*b),
        Json::Num(v, fractional) => {
            if !fractional && v.fract() == 0.0 {
                if *v >= 0.0 && *v <= u64::MAX as f64 {
                    Value::U64(*v as u64)
                } else if *v >= i64::MIN as f64 {
                    Value::I64(*v as i64)
                } else {
                    Value::F64(*v)
                }
            } else {
                Value::F64(*v)
            }
        }
        Json::Str(s) => Value::Str(s.clone()),
        // Events carry flat fields; containers degrade to their JSON text.
        Json::Arr(_) | Json::Obj(_) => Value::Str(format!("{json:?}")),
    }
}

/// Parses one JSONL line into an [`Event`].
///
/// # Errors
///
/// Returns [`ParseError`] on malformed JSON or a JSON shape that is not a
/// trace event.
pub fn parse_event(line: &str) -> Result<Event, ParseError> {
    let mut parser = Parser { bytes: line.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != line.len() {
        return parser.err("trailing characters after the event object");
    }
    let Json::Obj(entries) = value else {
        return Err(ParseError { at: 0, message: "event line is not an object".into() });
    };
    let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let ts_us = match get("ts_us") {
        Some(Json::Num(v, _)) if *v >= 0.0 => *v as u64,
        _ => return Err(ParseError { at: 0, message: "missing numeric `ts_us`".into() }),
    };
    let kind = match get("kind") {
        Some(Json::Str(s)) => EventKind::from_label(s)
            .ok_or_else(|| ParseError { at: 0, message: format!("unknown kind `{s}`") })?,
        _ => return Err(ParseError { at: 0, message: "missing string `kind`".into() }),
    };
    let name = match get("name") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err(ParseError { at: 0, message: "missing string `name`".into() }),
    };
    let fields = match get("fields") {
        Some(Json::Obj(fields)) => {
            fields.iter().map(|(k, v)| (k.clone(), json_to_value(v))).collect()
        }
        None => Vec::new(),
        _ => return Err(ParseError { at: 0, message: "`fields` is not an object".into() }),
    };
    Ok(Event { ts_us, kind, name, fields })
}

/// Parses a whole JSONL document, skipping blank lines.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, annotated with nothing
/// more than its in-line byte offset — trace files are line-oriented, so
/// callers can enumerate lines for context.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
    text.lines().map(str::trim).filter(|l| !l.is_empty()).map(parse_event).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: &Event) -> Event {
        let mut line = String::new();
        write_event(&mut line, event);
        parse_event(&line).expect("writer output parses")
    }

    #[test]
    fn event_round_trips_exactly() {
        let e = Event {
            ts_us: 123,
            kind: EventKind::Span,
            name: "milp.solve".into(),
            fields: vec![
                ("nodes".into(), Value::U64(42)),
                ("obj".into(), Value::F64(-1.5)),
                ("neg".into(), Value::I64(-7)),
                ("ok".into(), Value::Bool(true)),
                ("label".into(), Value::Str("weird \"quotes\"\nand\ttabs".into())),
            ],
        };
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let e = Event {
            ts_us: 0,
            kind: EventKind::Gauge,
            name: "g".into(),
            fields: vec![("value".into(), Value::F64(4.0))],
        };
        assert_eq!(round_trip(&e).field("value"), Some(&Value::F64(4.0)));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event {
            ts_us: 0,
            kind: EventKind::Gauge,
            name: "g".into(),
            fields: vec![("value".into(), Value::F64(f64::INFINITY))],
        };
        let mut line = String::new();
        write_event(&mut line, &e);
        assert!(line.contains("null"));
        let parsed = parse_event(&line).unwrap();
        match parsed.field("value") {
            Some(Value::F64(v)) => assert!(v.is_nan()),
            other => panic!("expected NaN stand-in, got {other:?}"),
        }
    }

    #[test]
    fn parser_accepts_foreign_json_and_rejects_junk() {
        let line = r#" { "ts_us" : 1 , "kind" : "event", "name": "x",
            "fields": { "a": [1, 2], "b": { "c": null } } } "#
            .replace('\n', " ");
        let parsed = parse_event(&line).unwrap();
        assert_eq!(parsed.name, "x");
        assert_eq!(parsed.fields.len(), 2);

        assert!(parse_event("").is_err());
        assert!(parse_event("{}").is_err());
        assert!(parse_event("[1]").is_err());
        assert!(parse_event("{\"ts_us\":1}").is_err());
        assert!(parse_event("{\"ts_us\":1,\"kind\":\"blah\",\"name\":\"x\"}").is_err());
        assert!(parse_event("{\"ts_us\":1,\"kind\":\"event\",\"name\":\"x\"} extra").is_err());
        assert!(parse_event("{\"ts_us\":1,\"kind\":\"event\",\"name\":\"x\"").is_err());
        assert!(parse_event("{\"ts_us\":1,\"kind\":\"event\",\"name\":\"\\q\"}").is_err());
    }

    #[test]
    fn jsonl_documents() {
        let mut doc = String::new();
        for i in 0..3u64 {
            let e = Event {
                ts_us: i,
                kind: EventKind::Counter,
                name: format!("c{i}"),
                fields: vec![("value".into(), Value::U64(i))],
            };
            write_event(&mut doc, &e);
            doc.push('\n');
        }
        doc.push('\n'); // blank line is fine
        let events = parse_jsonl(&doc).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].u64_field("value"), Some(2));
        assert!(parse_jsonl("not json").is_err());
        let err = parse_event("nope").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn unicode_and_u_escapes() {
        let e = Event {
            ts_us: 5,
            kind: EventKind::Event,
            name: "η→latency".into(),
            fields: vec![("s".into(), Value::Str("π ≈ 3".into()))],
        };
        assert_eq!(round_trip(&e), e);
        let line = r#"{"ts_us":1,"kind":"event","name":"\u0041","fields":{}}"#;
        assert_eq!(parse_event(line).unwrap().name, "A");
    }
}
