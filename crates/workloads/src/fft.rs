//! A radix-2 FFT task graph.
//!
//! The decimation-in-time FFT of `n` points has `log2(n)` stages of `n/2`
//! butterflies; each butterfly is a complex multiply plus a complex
//! add/subtract pair (4 multiplies, 3 adds, 3 subtracts on real words).
//! Butterflies are clustered into tasks of `group` butterflies each (the
//! paper's task granularity: "tasks can be automatically derived from the
//! behavior specification by clustering"), and edges carry the number of
//! real words flowing between clusters, derived from the exact butterfly
//! wiring.

use rtr_graph::{GraphError, TaskGraph, TaskGraphBuilder};
use rtr_hls::{synthesize_task, BehavioralTask, EstimatorOptions, FuLibrary, HlsError, OpKind};
use std::collections::HashMap;

/// Error type for FFT construction.
#[derive(Debug)]
pub enum FftError {
    /// `points` is not a power of two ≥ 4, or `group` does not divide the
    /// butterfly count.
    BadShape {
        /// The offending parameters.
        points: usize,
        /// Requested butterflies per task.
        group: usize,
    },
    /// Design-point synthesis failed.
    Hls(HlsError),
    /// Graph assembly failed.
    Graph(GraphError),
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::BadShape { points, group } => write!(
                f,
                "fft needs a power-of-two point count >= 4 and a group dividing points/2; got points = {points}, group = {group}"
            ),
            FftError::Hls(e) => write!(f, "hls: {e}"),
            FftError::Graph(e) => write!(f, "graph: {e}"),
        }
    }
}

impl std::error::Error for FftError {}

impl From<HlsError> for FftError {
    fn from(e: HlsError) -> Self {
        FftError::Hls(e)
    }
}

impl From<GraphError> for FftError {
    fn from(e: GraphError) -> Self {
        FftError::Graph(e)
    }
}

/// The behavioral template of a cluster of `group` butterflies.
fn butterfly_cluster(name: &str, group: usize, width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new(name);
    for _ in 0..group {
        // Complex multiply: 4 muls, 1 sub (real part), 1 add (imag part).
        let m: Vec<_> = (0..4).map(|_| t.add_op(OpKind::Mul, width, &[])).collect();
        let re = t.add_op(OpKind::Sub, width, &[m[0], m[1]]);
        let im = t.add_op(OpKind::Add, width, &[m[2], m[3]]);
        // Butterfly add/sub on both components.
        t.add_op(OpKind::Add, width, &[re]);
        t.add_op(OpKind::Sub, width, &[re]);
        t.add_op(OpKind::Add, width, &[im]);
        t.add_op(OpKind::Sub, width, &[im]);
    }
    t
}

/// The butterfly input pair at stage `s` for butterfly index `k`.
fn butterfly_pair(s: usize, k: usize) -> (usize, usize) {
    let span = 1usize << s;
    let i = ((k >> s) << (s + 1)) | (k & (span - 1));
    (i, i + span)
}

/// Builds the `points`-point FFT task graph with `group` butterflies per
/// task, 16-bit datapaths.
///
/// # Errors
///
/// Returns [`FftError::BadShape`] for invalid parameters and propagates HLS
/// or graph errors (which cannot occur for valid shapes).
///
/// # Examples
///
/// ```
/// let fft = rtr_workloads::fft::fft_graph(16, 4).expect("valid shape");
/// // log2(16) = 4 stages of 8 butterflies in groups of 4 = 2 tasks/stage.
/// assert_eq!(fft.task_count(), 8);
/// ```
pub fn fft_graph(points: usize, group: usize) -> Result<TaskGraph, FftError> {
    let butterflies = points / 2;
    if points < 4 || !points.is_power_of_two() || group == 0 || !butterflies.is_multiple_of(group) {
        return Err(FftError::BadShape { points, group });
    }
    let stages = points.trailing_zeros() as usize;
    let tasks_per_stage = butterflies / group;
    let lib = FuLibrary::xc4000_style();
    let opts = EstimatorOptions { max_points: 3, ..Default::default() };

    let mut b = TaskGraphBuilder::new();
    let mut ids = vec![vec![]; stages];
    for (s, stage_ids) in ids.iter_mut().enumerate() {
        for g in 0..tasks_per_stage {
            let name = format!("fft_s{s}_g{g}");
            let template = butterfly_cluster(&name, group, 16);
            // Stage 0 reads 4 real words per butterfly from the host; the
            // last stage writes 4 per butterfly.
            let env_in = if s == 0 { 4 * group as u64 } else { 0 };
            let env_out = if s + 1 == stages { 4 * group as u64 } else { 0 };
            let task = synthesize_task(&template, &lib, &opts, env_in, env_out)?;
            stage_ids.push(b.add_prepared_task(task));
        }
    }

    // Wiring: value index -> producing group at each stage.
    for s in 0..stages.saturating_sub(1) {
        let mut producer_of = HashMap::new();
        for k in 0..butterflies {
            let (lo, hi) = butterfly_pair(s, k);
            producer_of.insert(lo, k / group);
            producer_of.insert(hi, k / group);
        }
        // Count words flowing between group pairs (2 real words per value:
        // the complex re/im pair).
        let mut volume: HashMap<(usize, usize), u64> = HashMap::new();
        for k in 0..butterflies {
            let (lo, hi) = butterfly_pair(s + 1, k);
            for idx in [lo, hi] {
                let src = producer_of[&idx];
                *volume.entry((src, k / group)).or_insert(0) += 2;
            }
        }
        let mut pairs: Vec<_> = volume.into_iter().collect();
        pairs.sort_unstable_by_key(|&((a, c), _)| (a, c));
        for ((src, dst), words) in pairs {
            b.add_edge(ids[s][src], ids[s + 1][dst], words)?;
        }
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_of_16_point_fft() {
        let g = fft_graph(16, 4).unwrap();
        assert_eq!(g.task_count(), 8); // 4 stages x 2 groups
        assert_eq!(g.roots().len(), 2);
        assert_eq!(g.leaves().len(), 2);
        // Every non-final stage feeds the next.
        for t in g.task_ids() {
            let name = g.task(t).name();
            if !name.starts_with("fft_s3") {
                assert!(!g.successors(t).is_empty(), "{name} has no consumers");
            }
        }
    }

    #[test]
    fn edge_volumes_conserve_data() {
        let g = fft_graph(16, 2).unwrap();
        // Each stage passes all 16 complex values = 32 real words.
        let mut per_stage: std::collections::HashMap<&str, u64> = Default::default();
        for e in g.edges() {
            let src = g.task(e.src()).name();
            let stage = &src[..6]; // "fft_sX"
            *per_stage.entry(stage).or_insert(0) += e.data();
        }
        for (stage, words) in per_stage {
            assert_eq!(words, 32, "stage {stage}");
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(fft_graph(12, 2), Err(FftError::BadShape { .. })));
        assert!(matches!(fft_graph(16, 3), Err(FftError::BadShape { .. })));
        assert!(matches!(fft_graph(2, 1), Err(FftError::BadShape { .. })));
        assert!(matches!(fft_graph(16, 0), Err(FftError::BadShape { .. })));
    }

    #[test]
    fn butterfly_pairs_are_standard() {
        // Stage 0: (0,1), (2,3), ...; stage 1: (0,2), (1,3), (4,6), ...
        assert_eq!(butterfly_pair(0, 0), (0, 1));
        assert_eq!(butterfly_pair(0, 3), (6, 7));
        assert_eq!(butterfly_pair(1, 0), (0, 2));
        assert_eq!(butterfly_pair(1, 1), (1, 3));
        assert_eq!(butterfly_pair(1, 2), (4, 6));
        assert_eq!(butterfly_pair(2, 3), (3, 7));
    }

    #[test]
    fn tasks_have_design_point_tradeoffs() {
        let g = fft_graph(8, 2).unwrap();
        for t in g.tasks() {
            assert!(!t.design_points().is_empty());
            if t.design_points().len() >= 2 {
                assert!(t.min_area_point().latency() > t.min_latency_point().latency());
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(fft_graph(16, 4).unwrap(), fft_graph(16, 4).unwrap());
    }
}
