//! Table 5: DCT refinement log. See `DctExperiment::table5` for the
//! parameters and DESIGN.md for the experiment index.
//!
//! `cargo run --release -p rtr-bench --bin table5_dct`

use rtr_bench::{print_paper_table, run_dct_experiment, BenchRun, DctExperiment};
use rtr_workloads::dct::dct_4x4;
use std::time::Instant;

fn main() {
    let exp = DctExperiment::table5();
    let graph = dct_4x4();
    let start = Instant::now();
    let exploration = run_dct_experiment(&exp, &graph);
    let elapsed = start.elapsed();
    print_paper_table(
        &format!(
            "Table {} — DCT, R_max = {}, C_T = {}, δ = {} ns, α = {}, γ = {}",
            exp.table, exp.r_max, exp.ct, exp.delta_ns, exp.alpha, exp.gamma
        ),
        &exp.architecture(),
        &exploration,
    );
    let mut bench = BenchRun::new("table5");
    bench.record_exploration("", &exploration);
    bench.metric("elapsed_ms", elapsed.as_secs_f64() * 1e3);
    bench.write_and_report();
}
