//! Differential harness for `TemporalPartitioner::explore_parallel`: on a
//! seeded matrix of random graphs, the parallel exploration must be
//! *bit-identical* to the sequential one — same CSV, same chosen solution,
//! same logical trace stream — for every thread count.
//!
//! All cases use node-limit-only `SearchLimits` and no overall time budget:
//! wall-clock deadlines are the one knob that is inherently
//! machine-dependent (on the sequential path too), so they are excluded
//! from the determinism contract and covered separately by the
//! deadline tests at the bottom.

use rtrpart::graph::{Area, Latency};
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::workloads::rng::Rng;
use rtrpart::{validate_solution, Architecture, ExploreParams, SearchLimits, TemporalPartitioner};
use std::process::Command;
use std::time::Duration;

const CASES: u64 = 24;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Instance {
    seed: u64,
    gp: RandomGraphParams,
    cap: u64,
    mem: u64,
    ct: f64,
}

/// One deterministic random instance per case index (same scheme as
/// `tests/property_based.rs`; the salt decorrelates the streams).
fn instance(salt: u64, case: u64) -> Instance {
    let mut r = Rng::new(salt.wrapping_mul(0x9e37_79b9).wrapping_add(case));
    Instance {
        seed: r.next_u64(),
        gp: RandomGraphParams {
            tasks: r.range_usize(2, 9),
            max_layer_width: r.range_usize(1, 3),
            design_points: (1, 3),
            area_range: (20, 60),
            latency_range: (50.0, 600.0),
            data_range: (1, 3),
            ..Default::default()
        },
        cap: r.range_u64(60, 239),
        mem: r.range_u64(8, 63),
        ct: r.range_f64(10.0, 100_000.0),
    }
}

/// Deterministic exploration parameters: node limit only, no deadlines.
/// `gamma = 2` widens phase 2 so several candidate bounds actually fan out.
fn deterministic_params() -> ExploreParams {
    ExploreParams {
        delta: Latency::from_ns(100.0),
        gamma: 2,
        limits: SearchLimits { node_limit: 300_000, time_limit: None },
        time_budget: None,
        ..Default::default()
    }
}

#[test]
fn parallel_output_is_bit_identical_across_thread_counts() {
    let mut feasible = 0u64;
    for case in 0..CASES {
        let inst = instance(11, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let Ok(part) = TemporalPartitioner::new(&g, &arch, deterministic_params()) else {
            continue;
        };
        let sequential = part.explore().unwrap();
        let reference_csv = sequential.to_csv();
        feasible += u64::from(sequential.best.is_some());
        for threads in THREAD_COUNTS {
            let parallel = part.explore_parallel(threads).unwrap();
            assert_eq!(
                parallel.to_csv(),
                reference_csv,
                "case {case}: CSV diverged at {threads} threads"
            );
            assert_eq!(
                parallel.best, sequential.best,
                "case {case}: chosen solution diverged at {threads} threads"
            );
            assert_eq!(parallel.best_latency, sequential.best_latency, "case {case}");
            assert_eq!(parallel.n_min_lower, sequential.n_min_lower, "case {case}");
            assert_eq!(parallel.n_min_upper, sequential.n_min_upper, "case {case}");
            if let Some(best) = &parallel.best {
                assert!(validate_solution(&g, &arch, best).is_empty(), "case {case}");
            }
        }
    }
    // The matrix is only meaningful if a healthy share of cases is feasible.
    assert!(feasible >= CASES / 2, "only {feasible}/{CASES} cases feasible");
}

/// `explore_parallel(0)` resolves a machine-dependent thread count, but the
/// result must still match the sequential exploration exactly.
#[test]
fn auto_thread_count_matches_sequential() {
    for case in 0..8 {
        let inst = instance(12, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let Ok(part) = TemporalPartitioner::new(&g, &arch, deterministic_params()) else {
            continue;
        };
        let sequential = part.explore().unwrap();
        let auto = part.explore_parallel(0).unwrap();
        assert_eq!(auto.to_csv(), sequential.to_csv(), "case {case}");
        assert_eq!(auto.best_latency, sequential.best_latency, "case {case}");
    }
}

/// The merged logical trace stream is deterministic too: the same
/// `search.iteration` events, in the same order, with the same windows and
/// outcomes, at every thread count. (Only timing differs, which the
/// comparison strips.)
#[test]
fn merged_trace_stream_matches_sequential() {
    use std::sync::Arc;

    // One deterministic feasible instance with several phase-2 candidates.
    let inst = instance(11, 0);
    let g = random_layered(inst.seed, &inst.gp);
    let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
    let part = TemporalPartitioner::new(&g, &arch, deterministic_params()).unwrap();

    // A sink must be installed for events to flow at all; `capture` then
    // diverts this thread's stream (including the merge's `dispatch_all`
    // re-emissions) into a buffer, so concurrent tests cannot pollute it.
    rtrpart::trace::install(Arc::new(rtrpart::trace::MemorySink::new()));
    let logical = |threads: Option<usize>| {
        let (result, events) = rtrpart::trace::capture(|| match threads {
            None => part.explore(),
            Some(threads) => part.explore_parallel(threads),
        });
        result.unwrap();
        events
            .into_iter()
            // `sched.*` telemetry exists only on the pooled path and mixes
            // scheduling-dependent gauges (steals, parks) with deterministic
            // totals; the *logical* solver stream is what this test pins, so
            // scheduler bookkeeping is stripped wholesale.
            .filter(|e| !e.name.starts_with("sched."))
            .map(|e| {
                // Strip timing (machine-dependent by nature) and the
                // `threads` annotation the parallel span intentionally adds.
                let fields: Vec<(String, String)> = e
                    .fields
                    .into_iter()
                    .filter(|(k, _)| k != "elapsed_us" && k != "dur_us" && k != "threads")
                    .map(|(k, v)| (k, v.to_string()))
                    .collect();
                (format!("{:?}", e.kind), e.name, fields)
            })
            .collect::<Vec<_>>()
    };
    let sequential = logical(None);
    let streams: Vec<_> = THREAD_COUNTS.iter().map(|&t| logical(Some(t))).collect();
    rtrpart::trace::uninstall();

    assert!(
        sequential.iter().any(|(_, name, _)| name == "search.iteration"),
        "expected iteration events in the sequential stream"
    );
    for (threads, stream) in THREAD_COUNTS.iter().zip(streams) {
        assert_eq!(stream, sequential, "logical trace diverged at {threads} threads");
    }
}

/// The determinism contract must survive fault injection: with
/// `RTR_FAILPOINTS` arming the exploration-level panic sites at a fixed
/// seed, the final CSV *and* the degradation report on stderr are
/// byte-identical at every thread count. Runs go through the real binary in
/// a subprocess — the registry is process-global, so arming it in-process
/// would race the other tests in this binary, and the env-var path gets no
/// coverage otherwise. (`search.job` is deliberately absent from the site
/// list: its job set depends on the worker count, so it is covered by the
/// run-to-run test in `tests/search_parallel_determinism.rs` instead.)
#[test]
fn fault_injected_runs_are_bit_identical_across_thread_counts() {
    let bin = env!("CARGO_BIN_EXE_rtrpart");
    let dir = std::env::temp_dir().join(format!("rtr_fi_matrix_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let mut degraded = 0u64;
    for case in 0..6u64 {
        let inst = instance(11, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        // Skip instances the partitioner rejects up front (task larger than
        // the device) — the binary would exit with an error, not explore.
        if TemporalPartitioner::new(&g, &arch, deterministic_params()).is_err() {
            continue;
        }
        let graph = dir.join(format!("case{case}.tg"));
        std::fs::write(&graph, g.to_text()).expect("write graph");

        // (threads, csv bytes, stdout, stderr) per run.
        type Run = (usize, Vec<u8>, Vec<u8>, Vec<u8>);
        let mut runs: Vec<Run> = Vec::new();
        for threads in [1usize, 4, 8] {
            let csv = dir.join(format!("case{case}_t{threads}.csv"));
            let out = Command::new(bin)
                .env("RTR_FAILPOINTS", "1:0.45:explore.window,explore.candidate")
                .args([
                    "partition",
                    "--graph",
                    graph.to_str().unwrap(),
                    "--rmax",
                    &inst.cap.to_string(),
                    "--mmax",
                    &inst.mem.to_string(),
                    "--ct",
                    &format!("{}ns", inst.ct),
                    "--delta",
                    "100ns",
                    "--gamma",
                    "2",
                    "--solve-nodes",
                    "300000",
                    "--threads",
                    &threads.to_string(),
                    "--quiet",
                    "--csv",
                    csv.to_str().unwrap(),
                ])
                .output()
                .expect("spawn rtrpart");
            assert!(
                out.status.success(),
                "case {case} at {threads} threads failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let bytes = std::fs::read(&csv).expect("csv written");
            runs.push((threads, bytes, out.stdout, out.stderr));
        }
        let (_, ref_csv, ref_stdout, ref_stderr) = &runs[0];
        degraded += u64::from(!ref_stderr.is_empty());
        for (threads, csv, stdout, stderr) in &runs[1..] {
            assert_eq!(csv, ref_csv, "case {case}: degraded CSV diverged at {threads} threads");
            assert_eq!(
                stderr, ref_stderr,
                "case {case}: degradation report diverged at {threads} threads"
            );
            assert_eq!(
                stdout, ref_stdout,
                "case {case}: solution summary diverged at {threads} threads"
            );
        }
    }
    assert!(degraded > 0, "no case tripped a failpoint; the injection matrix is dead");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mid-exploration deadline must yield the best-so-far incumbent — never
/// an error — on the sequential path. A zero budget expires immediately
/// after phase 1's first `Reduce_Latency`, which is the earliest
/// deterministic deadline an exploration can hit.
#[test]
fn sequential_deadline_yields_best_so_far() {
    deadline_yields_best_so_far(|part| part.explore().unwrap());
}

/// Same contract on the parallel path: workers observe the expired budget,
/// unevaluated candidates stay unmerged, and the incumbent survives.
#[test]
fn parallel_deadline_yields_best_so_far() {
    deadline_yields_best_so_far(|part| part.explore_parallel(4).unwrap());
}

fn deadline_yields_best_so_far(run: impl Fn(&TemporalPartitioner) -> rtrpart::Exploration) {
    let mut exercised = 0u64;
    for case in 0..CASES {
        let inst = instance(13, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let params = ExploreParams { time_budget: Some(Duration::ZERO), ..deterministic_params() };
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params) else { continue };
        let ex = run(&part);
        // Expired straight after the first bound: every record shares the
        // first record's N, and any phase-1 incumbent is still reported.
        if let Some(first) = ex.records.first() {
            assert!(ex.records.iter().all(|r| r.n == first.n), "case {case}");
        }
        if let Some(best) = &ex.best {
            exercised += 1;
            assert!(validate_solution(&g, &arch, best).is_empty(), "case {case}");
            assert_eq!(ex.best_latency.unwrap(), best.total_latency(&g, &arch), "case {case}");
        }
    }
    assert!(exercised >= CASES / 3, "only {exercised}/{CASES} cases hit the deadline feasibly");
}
