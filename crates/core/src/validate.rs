//! Independent validation of partitioning solutions.
//!
//! Every solver in this crate funnels its output through
//! [`validate_solution`], which re-checks the paper's constraints (1)–(6)
//! directly against the task graph and architecture — nothing is trusted
//! from a solver's internal bookkeeping.

use crate::arch::Architecture;
use crate::solution::Solution;
use rtr_graph::TaskGraph;
use std::fmt;

/// One violated constraint.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// A placement names a design point the task does not have.
    BadDesignPoint {
        /// Task name.
        task: String,
        /// The out-of-range design-point index.
        index: usize,
    },
    /// The solution has a different number of placements than the graph has
    /// tasks.
    WrongTaskCount {
        /// Placements in the solution.
        got: usize,
        /// Tasks in the graph.
        expected: usize,
    },
    /// A dependency runs backwards in time: `src` is placed after `dst`.
    TemporalOrder {
        /// Producer task name.
        src: String,
        /// Consumer task name.
        dst: String,
        /// Producer's partition.
        src_partition: u32,
        /// Consumer's partition.
        dst_partition: u32,
    },
    /// A partition exceeds the device capacity `R_max`.
    Resource {
        /// The overfull partition.
        partition: u32,
        /// Area used.
        used: u64,
        /// Capacity.
        capacity: u64,
    },
    /// A partition exceeds a secondary resource class capacity.
    SecondaryResource {
        /// The overfull partition.
        partition: u32,
        /// The resource class index.
        class: usize,
        /// Units used.
        used: u64,
        /// Capacity of the class.
        capacity: u64,
    },
    /// A boundary exceeds the on-board memory `M_max`.
    Memory {
        /// The boundary (data held before this partition executes).
        boundary: u32,
        /// Data units resident.
        used: u64,
        /// Capacity.
        capacity: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::BadDesignPoint { task, index } => {
                write!(f, "task `{task}` has no design point {index}")
            }
            Violation::WrongTaskCount { got, expected } => {
                write!(f, "solution has {got} placements for {expected} tasks")
            }
            Violation::TemporalOrder { src, dst, src_partition, dst_partition } => write!(
                f,
                "dependency `{src}` (partition {src_partition}) -> `{dst}` (partition {dst_partition}) runs backwards"
            ),
            Violation::Resource { partition, used, capacity } => {
                write!(f, "partition {partition} uses {used} of {capacity} area units")
            }
            Violation::SecondaryResource { partition, class, used, capacity } => write!(
                f,
                "partition {partition} uses {used} of {capacity} units of secondary resource class {class}"
            ),
            Violation::Memory { boundary, used, capacity } => {
                write!(f, "boundary {boundary} holds {used} of {capacity} memory units")
            }
        }
    }
}

/// Checks a solution against every constraint of the formulation. Returns
/// all violations (empty means the solution is feasible).
pub fn validate_solution(
    graph: &TaskGraph,
    arch: &Architecture,
    solution: &Solution,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    if solution.placements().len() != graph.task_count() {
        violations.push(Violation::WrongTaskCount {
            got: solution.placements().len(),
            expected: graph.task_count(),
        });
        return violations;
    }
    for (t, pl) in solution.placements().iter().enumerate() {
        let task = &graph.tasks()[t];
        if pl.design_point >= task.design_points().len() {
            violations.push(Violation::BadDesignPoint {
                task: task.name().to_owned(),
                index: pl.design_point,
            });
        }
    }
    if !violations.is_empty() {
        return violations; // metric computations below would index out of range
    }

    for e in graph.edges() {
        let pa = solution.placement(e.src()).partition;
        let pb = solution.placement(e.dst()).partition;
        if pa > pb {
            violations.push(Violation::TemporalOrder {
                src: graph.task(e.src()).name().to_owned(),
                dst: graph.task(e.dst()).name().to_owned(),
                src_partition: pa,
                dst_partition: pb,
            });
        }
    }

    for p in 1..=solution.n_bound() {
        let used = solution.partition_area(graph, p).units();
        let capacity = arch.resource_capacity().units();
        if used > capacity {
            violations.push(Violation::Resource { partition: p, used, capacity });
        }
        for (class, &capacity) in arch.secondary_capacities().iter().enumerate() {
            let used = solution.partition_secondary(graph, p, class);
            if used > capacity {
                violations.push(Violation::SecondaryResource {
                    partition: p,
                    class,
                    used,
                    capacity,
                });
            }
        }
    }

    for (i, used) in solution.boundary_memory(graph, arch.env_policy()).into_iter().enumerate() {
        if used > arch.memory_capacity() {
            violations.push(Violation::Memory {
                boundary: i as u32 + 2,
                used,
                capacity: arch.memory_capacity(),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::Placement;
    use rtr_graph::{Area, DesignPoint, Latency, TaskGraphBuilder};

    fn graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let dp = |a: u64| DesignPoint::new("m", Area::new(a), Latency::from_ns(100.0));
        let x = b.add_task("x").design_point(dp(60)).finish();
        let y = b.add_task("y").design_point(dp(70)).finish();
        b.add_edge(x, y, 5).unwrap();
        b.build().unwrap()
    }

    fn arch() -> Architecture {
        Architecture::new(Area::new(100), 4, Latency::from_ns(10.0))
    }

    fn pl(p: u32) -> Placement {
        Placement { partition: p, design_point: 0 }
    }

    #[test]
    fn feasible_solution_passes() {
        let g = graph();
        let sol = Solution::new(vec![pl(1), pl(2)], 2);
        // Edge data 5 > memory 4 — pick a bigger memory arch.
        let arch = Architecture::new(Area::new(100), 8, Latency::from_ns(10.0));
        assert!(validate_solution(&g, &arch, &sol).is_empty());
    }

    #[test]
    fn detects_temporal_order_violation() {
        let g = graph();
        let sol = Solution::new(vec![pl(2), pl(1)], 2);
        let v = validate_solution(&g, &arch(), &sol);
        assert!(v.iter().any(|v| matches!(v, Violation::TemporalOrder { .. })), "{v:?}");
    }

    #[test]
    fn detects_resource_violation() {
        let g = graph();
        let sol = Solution::new(vec![pl(1), pl(1)], 1);
        let v = validate_solution(&g, &arch(), &sol);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::Resource { partition: 1, used: 130, capacity: 100 })));
    }

    #[test]
    fn detects_memory_violation() {
        let g = graph();
        let sol = Solution::new(vec![pl(1), pl(2)], 2);
        let v = validate_solution(&g, &arch(), &sol); // memory 4 < edge 5
        assert!(v.iter().any(|v| matches!(v, Violation::Memory { boundary: 2, used: 5, .. })));
    }

    #[test]
    fn detects_bad_design_point_and_count() {
        let g = graph();
        let sol = Solution::new(vec![Placement { partition: 1, design_point: 3 }, pl(1)], 1);
        let v = validate_solution(&g, &arch(), &sol);
        assert!(v.iter().any(|v| matches!(v, Violation::BadDesignPoint { .. })));
        let short = Solution::new(vec![pl(1)], 1);
        let v = validate_solution(&g, &arch(), &short);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::WrongTaskCount { got: 1, expected: 2 }));
    }

    #[test]
    fn same_partition_edge_uses_no_memory() {
        let g = graph();
        let sol = Solution::new(vec![pl(1), pl(1)], 2);
        assert_eq!(sol.peak_memory(&g, crate::arch::EnvMemoryPolicy::Resident), 0);
    }

    #[test]
    fn violation_display() {
        let v = Violation::Resource { partition: 2, used: 700, capacity: 576 };
        assert_eq!(v.to_string(), "partition 2 uses 700 of 576 area units");
    }
}
