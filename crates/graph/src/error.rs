//! Error type for task-graph construction and validation.

use std::error::Error;
use std::fmt;

/// An error raised while building, validating, or parsing a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no tasks.
    Empty,
    /// A task index was out of range.
    UnknownTask {
        /// The offending raw index.
        index: usize,
        /// Number of tasks in the graph.
        task_count: usize,
    },
    /// An edge connects a task to itself.
    SelfLoop {
        /// Name of the task.
        task: String,
    },
    /// The same directed edge was added twice.
    DuplicateEdge {
        /// Name of the source task.
        src: String,
        /// Name of the destination task.
        dst: String,
    },
    /// The graph contains a dependency cycle.
    Cycle {
        /// Name of a task on the cycle.
        task: String,
    },
    /// A task has no design points.
    NoDesignPoints {
        /// Name of the task.
        task: String,
    },
    /// A design point has zero area, which would let the partitioner place
    /// unboundedly many tasks in one partition.
    ZeroAreaDesignPoint {
        /// Name of the task.
        task: String,
        /// Name of the design point.
        design_point: String,
    },
    /// Two tasks share the same name, which would make text round-trips
    /// ambiguous.
    DuplicateTaskName {
        /// The duplicated name.
        name: String,
    },
    /// A serialized task graph could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "task graph has no tasks"),
            GraphError::UnknownTask { index, task_count } => {
                write!(f, "task index {index} out of range for {task_count} tasks")
            }
            GraphError::SelfLoop { task } => write!(f, "task `{task}` depends on itself"),
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge `{src}` -> `{dst}`")
            }
            GraphError::Cycle { task } => {
                write!(f, "dependency cycle through task `{task}`")
            }
            GraphError::NoDesignPoints { task } => {
                write!(f, "task `{task}` has no design points")
            }
            GraphError::ZeroAreaDesignPoint { task, design_point } => {
                write!(f, "design point `{design_point}` of task `{task}` has zero area")
            }
            GraphError::DuplicateTaskName { name } => {
                write!(f, "duplicate task name `{name}`")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(GraphError::Empty.to_string(), "task graph has no tasks");
        assert_eq!(
            GraphError::SelfLoop { task: "t".into() }.to_string(),
            "task `t` depends on itself"
        );
        assert_eq!(
            GraphError::Parse { line: 3, message: "bad".into() }.to_string(),
            "parse error at line 3: bad"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }
}
