//! The AR-filter case study (paper §4, Figure 5, Table 1).
//!
//! "The task graph for the specification consists of 6 tasks … Tasks A and B
//! show the internal structures of the filter tasks. Tasks T1, T3, & T4 have
//! a structure like Task A, but differ in their bit-widths … Task T1 has
//! three design points, tasks T3 & T4 have two design points each, and tasks
//! T2 and T5 have one design point each."
//!
//! The paper omits the design-point values and the exact edge list ("due to
//! space limitation"), so this module *reconstructs* them: the two task
//! templates are built as operation dataflow graphs (template A: a 4-mul /
//! 2-add lattice stage; template B: a 2-mul / 2-add stage), design points
//! are synthesized with the `rtr-hls` estimator at per-task bit-widths, and
//! the design-point counts are capped to the paper's 3/1/2/2/1/1. What the
//! paper *claims* about this case study — that the iterative procedure's
//! final latency equals the optimal ILP latency — is reproduced by
//! `table1_ar` in `rtr-bench` regardless of the exact values.

use rtr_graph::{GraphError, TaskGraph, TaskGraphBuilder};
use rtr_hls::{synthesize_task, BehavioralTask, EstimatorOptions, FuLibrary, HlsError, OpKind};

/// Error type for AR-filter construction (HLS or graph assembly).
#[derive(Debug)]
pub enum ArError {
    /// Design-point synthesis failed.
    Hls(HlsError),
    /// Graph assembly failed.
    Graph(GraphError),
}

impl std::fmt::Display for ArError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArError::Hls(e) => write!(f, "hls: {e}"),
            ArError::Graph(e) => write!(f, "graph: {e}"),
        }
    }
}

impl std::error::Error for ArError {}

impl From<HlsError> for ArError {
    fn from(e: HlsError) -> Self {
        ArError::Hls(e)
    }
}

impl From<GraphError> for ArError {
    fn from(e: GraphError) -> Self {
        ArError::Graph(e)
    }
}

/// Template A of Figure 5: a lattice-filter stage with four multiplies
/// feeding two adds.
pub fn template_a(name: &str, width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new(name);
    let m: Vec<_> = (0..4).map(|_| t.add_op(OpKind::Mul, width, &[])).collect();
    t.add_op(OpKind::Add, width, &[m[0], m[1]]);
    t.add_op(OpKind::Add, width, &[m[2], m[3]]);
    t
}

/// Template B of Figure 5: a lighter stage with two multiplies feeding two
/// chained adds.
pub fn template_b(name: &str, width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new(name);
    let m0 = t.add_op(OpKind::Mul, width, &[]);
    let m1 = t.add_op(OpKind::Mul, width, &[]);
    let a0 = t.add_op(OpKind::Add, width, &[m0, m1]);
    t.add_op(OpKind::Add, width, &[a0]);
    t
}

/// Builds the 6-task AR-filter task graph with HLS-synthesized design
/// points.
///
/// # Errors
///
/// Returns an [`ArError`] if synthesis or graph assembly fails (cannot
/// happen for the fixed templates; the error type exists because the
/// estimator API is fallible).
///
/// # Examples
///
/// ```
/// let ar = rtr_workloads::ar::ar_filter().expect("static construction");
/// assert_eq!(ar.task_count(), 6);
/// let t1 = ar.task(ar.task_by_name("T1").unwrap());
/// assert_eq!(t1.design_points().len(), 3);
/// ```
pub fn ar_filter() -> Result<TaskGraph, ArError> {
    let lib = FuLibrary::xc4000_style();
    let opts = |max_points: usize| EstimatorOptions { max_points, ..Default::default() };

    let mut b = TaskGraphBuilder::new();
    // (template, bit width, design point cap, env_in, env_out)
    let t1 = b.add_prepared_task(synthesize_task(&template_a("T1", 16), &lib, &opts(3), 4, 0)?);
    let t2 = b.add_prepared_task(synthesize_task(&template_b("T2", 8), &lib, &opts(1), 0, 0)?);
    let t3 = b.add_prepared_task(synthesize_task(&template_a("T3", 12), &lib, &opts(2), 0, 0)?);
    let t4 = b.add_prepared_task(synthesize_task(&template_a("T4", 14), &lib, &opts(2), 0, 0)?);
    let t5 = b.add_prepared_task(synthesize_task(&template_b("T5", 8), &lib, &opts(1), 0, 0)?);
    let t6 = b.add_prepared_task(synthesize_task(&template_b("T6", 10), &lib, &opts(1), 0, 2)?);

    b.add_edge(t1, t2, 2)?;
    b.add_edge(t1, t3, 2)?;
    b.add_edge(t2, t4, 2)?;
    b.add_edge(t3, t4, 2)?;
    b.add_edge(t3, t5, 2)?;
    b.add_edge(t4, t6, 2)?;
    b.add_edge(t5, t6, 2)?;
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_tasks_with_paper_design_point_counts() {
        let g = ar_filter().unwrap();
        assert_eq!(g.task_count(), 6);
        let counts: Vec<(String, usize)> =
            g.tasks().iter().map(|t| (t.name().to_owned(), t.design_points().len())).collect();
        let by_name = |n: &str| counts.iter().find(|(name, _)| name == n).unwrap().1;
        assert_eq!(by_name("T1"), 3);
        assert_eq!(by_name("T2"), 1);
        assert_eq!(by_name("T3"), 2);
        assert_eq!(by_name("T4"), 2);
        assert_eq!(by_name("T5"), 1);
        assert_eq!(by_name("T6"), 1);
    }

    #[test]
    fn graph_is_single_source_single_sink() {
        let g = ar_filter().unwrap();
        assert_eq!(g.roots().len(), 1);
        assert_eq!(g.leaves().len(), 1);
        assert_eq!(g.task(g.roots()[0]).name(), "T1");
        assert_eq!(g.task(g.leaves()[0]).name(), "T6");
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn wider_tasks_have_larger_design_points() {
        let g = ar_filter().unwrap();
        let t1 = g.task(g.task_by_name("T1").unwrap()); // 16 bit, template A
        let t3 = g.task(g.task_by_name("T3").unwrap()); // 12 bit, template A
        assert!(t1.min_area_point().area() > t3.min_area_point().area());
    }

    #[test]
    fn design_points_trade_area_for_latency() {
        let g = ar_filter().unwrap();
        let t1 = g.task(g.task_by_name("T1").unwrap());
        let dps = t1.design_points();
        for w in dps.windows(2) {
            assert!(w[0].area() < w[1].area());
            assert!(w[0].latency() > w[1].latency());
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let a = ar_filter().unwrap();
        let b = ar_filter().unwrap();
        assert_eq!(a, b);
    }
}
