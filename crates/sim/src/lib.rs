//! Discrete-event simulation of a run-time reconfigurable processor.
//!
//! The paper evaluates latency analytically (`Σ_p d_p + η·C_T`); the
//! physical machines it targets — a Wildforce-class board with millisecond
//! reconfiguration and a time-multiplexed FPGA with nanosecond context
//! switches — are hardware this reproduction does not have. This crate
//! substitutes an event-driven execution model of such a processor:
//!
//! * the device is reconfigured once per used partition (cost `C_T`);
//! * inside a configuration, tasks are spatially placed and start as soon
//!   as their operands are ready (dataflow execution); operands produced in
//!   earlier partitions are read from on-board memory at partition start;
//! * the occupancy of the on-board memory is tracked at every partition
//!   boundary.
//!
//! Simulating a solution yields the same total latency as the analytic
//! model — asserted by the cross-check tests and usable as an independent
//! oracle for every number the benches report — plus a full event timeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod simulate;

pub use report::{PartitionTrace, SimError, SimReport, TaskTrace};
pub use simulate::{simulate, simulate_with, SimOptions};
