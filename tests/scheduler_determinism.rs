//! Scheduler-determinism battery for the unified work-stealing pool: with
//! *both* parallel layers (phase-2 candidate fan-out and intra-window
//! subtree search) scheduled by one `rtr-sched` pool, every observable
//! solver output must stay bit-identical to the sequential exploration —
//! same CSV, same chosen solution, same logical trace stream — at every
//! thread count, with dominance memoization on or off, and under injected
//! scheduler faults.
//!
//! The tests in this binary serialize on one mutex: the steal/telemetry
//! assertions read deltas of the process-global status board, and the
//! trace test installs a process-global sink, so concurrent pool activity
//! from a sibling test would pollute both.

use rtrpart::graph::{Area, Latency};
use rtrpart::workloads::ar::ar_filter;
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::workloads::rng::Rng;
use rtrpart::{validate_solution, Architecture, ExploreParams, SearchLimits, TemporalPartitioner};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Thread counts the matrix sweeps; `0` resolves machine-dependently
/// (`RTR_THREADS`, else CPU count) and must *still* match sequential.
const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 0];

/// Board-delta and trace-sink tests cannot tolerate concurrent pool
/// traffic from sibling tests; everything in this binary takes this lock.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Instance {
    seed: u64,
    gp: RandomGraphParams,
    cap: u64,
    mem: u64,
    ct: f64,
}

/// One deterministic random instance per case index (same scheme as
/// `tests/parallel_determinism.rs`; the salt decorrelates the streams).
fn instance(salt: u64, case: u64) -> Instance {
    let mut r = Rng::new(salt.wrapping_mul(0x9e37_79b9).wrapping_add(case));
    Instance {
        seed: r.next_u64(),
        gp: RandomGraphParams {
            tasks: r.range_usize(2, 9),
            max_layer_width: r.range_usize(1, 3),
            design_points: (1, 3),
            area_range: (20, 60),
            latency_range: (50.0, 600.0),
            data_range: (1, 3),
            ..Default::default()
        },
        cap: r.range_u64(60, 239),
        mem: r.range_u64(8, 63),
        ct: r.range_f64(10.0, 100_000.0),
    }
}

/// Deterministic exploration parameters: node limit only, no deadlines.
/// `solver_threads` routes window solves onto the same pool as the
/// candidate fan-out — the fully unified configuration.
fn params(solver_threads: usize, memo: bool) -> ExploreParams {
    ExploreParams {
        delta: Latency::from_ns(100.0),
        gamma: 2,
        limits: SearchLimits { node_limit: 300_000, time_limit: None },
        time_budget: None,
        solver_threads,
        memo_limit: if memo { ExploreParams::default().memo_limit } else { 0 },
        ..Default::default()
    }
}

/// The full matrix: thread counts × workloads × memo on/off, all through
/// the unified pool with *nested* parallelism enabled, all bit-identical
/// to the sequential exploration under the same memo setting.
#[test]
fn unified_pool_matrix_is_bit_identical() {
    let _g = lock();
    // Workload 1: the seeded random matrix.
    let mut feasible = 0u64;
    for case in 0..12u64 {
        let inst = instance(41, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        for memo in [true, false] {
            let Ok(reference) = TemporalPartitioner::new(&g, &arch, params(1, memo)) else {
                continue;
            };
            let sequential = reference.explore().unwrap();
            feasible += u64::from(memo && sequential.best.is_some());
            for threads in THREAD_COUNTS {
                let part = TemporalPartitioner::new(&g, &arch, params(threads, memo)).unwrap();
                let parallel = part.explore_parallel(threads).unwrap();
                assert_eq!(
                    parallel.to_csv(),
                    sequential.to_csv(),
                    "case {case} memo={memo}: CSV diverged at {threads} threads"
                );
                assert_eq!(
                    parallel.best, sequential.best,
                    "case {case} memo={memo}: solution diverged at {threads} threads"
                );
                assert_eq!(parallel.best_latency, sequential.best_latency, "case {case}");
                if let Some(best) = &parallel.best {
                    assert!(validate_solution(&g, &arch, best).is_empty(), "case {case}");
                }
            }
        }
    }
    assert!(feasible >= 6, "only {feasible}/12 random cases feasible");

    // Workload 2: the AR filter on the tight smoke-bench device —
    // infeasible windows, heavy pruning, and a live dominance memo.
    let ar = ar_filter().expect("static construction");
    let arch =
        Architecture::new(Area::new(ar.total_min_area().units() / 2), 64, Latency::from_us(1.0));
    for memo in [true, false] {
        let sequential =
            TemporalPartitioner::new(&ar, &arch, params(1, memo)).unwrap().explore().unwrap();
        for threads in THREAD_COUNTS {
            let part = TemporalPartitioner::new(&ar, &arch, params(threads, memo)).unwrap();
            let parallel = part.explore_parallel(threads).unwrap();
            assert_eq!(
                parallel.to_csv(),
                sequential.to_csv(),
                "ar memo={memo}: CSV diverged at {threads} threads"
            );
            assert_eq!(parallel.best, sequential.best, "ar memo={memo} at {threads} threads");
        }
    }
}

/// The merged logical trace stream under *nested* pool parallelism (the
/// configuration `tests/parallel_determinism.rs` covers only for the
/// candidate layer): identical to sequential once scheduler bookkeeping
/// (`sched.*`, pool-path-only by construction) and timing are stripped.
#[test]
fn unified_trace_stream_matches_sequential() {
    use std::sync::Arc;
    let _g = lock();
    let inst = instance(41, 0);
    let g = random_layered(inst.seed, &inst.gp);
    let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));

    rtrpart::trace::install(Arc::new(rtrpart::trace::MemorySink::new()));
    let logical = |threads: usize| {
        let part = TemporalPartitioner::new(&g, &arch, params(threads.max(1), true)).unwrap();
        let (result, events) = rtrpart::trace::capture(|| {
            if threads == 0 {
                part.explore()
            } else {
                part.explore_parallel(threads)
            }
        });
        result.unwrap();
        events
            .into_iter()
            .filter(|e| !e.name.starts_with("sched."))
            .map(|e| {
                let fields: Vec<(String, String)> = e
                    .fields
                    .into_iter()
                    .filter(|(k, _)| k != "elapsed_us" && k != "dur_us" && k != "threads")
                    .map(|(k, v)| (k, v.to_string()))
                    .collect();
                (format!("{:?}", e.kind), e.name, fields)
            })
            .collect::<Vec<_>>()
    };
    let sequential = logical(0);
    for threads in [2usize, 4] {
        assert_eq!(logical(threads), sequential, "logical trace diverged at {threads} threads");
    }
    rtrpart::trace::uninstall();
}

/// Adversarial steal-heavy fixture: a deep instance whose dominant window
/// fans many subtree jobs out of one stalled candidate while the other
/// candidates are trivial. The run must (a) stay byte-identical to
/// sequential on *every* attempt and (b) demonstrably exercise dynamic
/// nesting — nested batches submitted and, on some bounded attempt, jobs
/// *stolen* out of the stalled submitter's deque. The steal count itself
/// is scheduling (OS preemption) dependent, hence the bounded retry; the
/// outputs never are.
#[test]
fn adversarial_fixture_steals_without_diverging() {
    let _g = lock();
    // Deterministically pick the first seeded instance that *provably*
    // exercises dynamic nesting: a probe run at 4 threads must submit
    // nested batches (window solves reaching `run_on_pool` from inside a
    // candidate job — a deterministic counter: which windows get past the
    // greedy-seed shortcut does not depend on scheduling), on top of
    // enough structured nodes that the dominant window dwarfs the rest.
    let board = rtrpart::trace::status::board();
    let mut picked = None;
    for case in 0..64u64 {
        let mut r = Rng::new(0x5ced_u64.wrapping_mul(0x9e37_79b9).wrapping_add(case));
        let inst = Instance {
            seed: r.next_u64(),
            gp: RandomGraphParams {
                tasks: r.range_usize(10, 15),
                max_layer_width: r.range_usize(2, 4),
                design_points: (2, 3),
                area_range: (20, 60),
                latency_range: (50.0, 600.0),
                data_range: (1, 3),
                ..Default::default()
            },
            cap: r.range_u64(70, 160),
            mem: r.range_u64(16, 64),
            ct: r.range_f64(100.0, 10_000.0),
        };
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let Ok(part) = TemporalPartitioner::new(&g, &arch, params(1, true)) else {
            continue;
        };
        let sequential = part.explore().unwrap();
        // A *fired* node limit is outside the determinism envelope (which
        // nodes the exact global budget covers depends on scheduling, like
        // wall-clock deadlines sequentially), so only limit-free cases with
        // ample headroom qualify as fixtures.
        if sequential.to_csv().contains(",limit,") || sequential.structured_totals().nodes > 100_000
        {
            continue;
        }
        let before = board.snapshot();
        let probe = TemporalPartitioner::new(&g, &arch, params(4, true)).unwrap();
        let parallel = probe.explore_parallel(4).unwrap();
        assert_eq!(parallel.to_csv(), sequential.to_csv(), "probe case {case} diverged");
        let after = board.snapshot();
        if after.sched_nested_batches > before.sched_nested_batches {
            picked = Some((g, arch, sequential));
            break;
        }
    }
    let (g, arch, sequential) = picked.expect("no nesting-heavy instance in 64 seeds");
    let reference_csv = sequential.to_csv();

    let mut stole = false;
    let mut nested = 0u64;
    for attempt in 0..20 {
        let before = board.snapshot();
        let part = TemporalPartitioner::new(&g, &arch, params(4, true)).unwrap();
        let parallel = part.explore_parallel(4).unwrap();
        assert_eq!(
            parallel.to_csv(),
            reference_csv,
            "attempt {attempt}: CSV diverged from sequential"
        );
        assert_eq!(parallel.best, sequential.best, "attempt {attempt}: solution diverged");
        let after = board.snapshot();
        assert!(after.sched_jobs > before.sched_jobs, "pool executed no jobs");
        assert_eq!(after.sched_lost_jobs, before.sched_lost_jobs, "clean run lost jobs");
        nested += after.sched_nested_batches - before.sched_nested_batches;
        if after.sched_steals > before.sched_steals {
            stole = true;
            break;
        }
    }
    assert!(nested > 0, "window solves never became nested batches on the shared pool");
    assert!(stole, "no attempt stole from the stalled submitter's deque");
}

/// Fault injection on the scheduler's own `sched.job` site: the failpoint
/// key is a pure function of (batch namespace, job index, attempt), so at
/// a fixed `--threads` two identically-seeded runs must agree
/// byte-for-byte on the CSV, the summary on stdout, and the degradation
/// report on stderr — no matter which worker claims or steals which job.
/// Subprocess-based like the `search.job` matrix: the failpoint registry
/// is process-global and the env-var path gets no coverage otherwise.
#[test]
fn sched_job_faults_are_deterministic_run_to_run() {
    let bin = env!("CARGO_BIN_EXE_rtrpart");
    let dir = std::env::temp_dir().join(format!("rtr_fi_sched_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let mut degraded = 0u64;
    for case in 0..4u64 {
        let inst = instance(41, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        if TemporalPartitioner::new(&g, &arch, params(1, true)).is_err() {
            continue;
        }
        let graph = dir.join(format!("case{case}.tg"));
        std::fs::write(&graph, g.to_text()).expect("write graph");

        for threads in [2usize, 4] {
            let run = |tag: &str| {
                let csv = dir.join(format!("case{case}_t{threads}_{tag}.csv"));
                let out = std::process::Command::new(bin)
                    .env("RTR_FAILPOINTS", "7:0.5:sched.job")
                    .args([
                        "partition",
                        "--graph",
                        graph.to_str().unwrap(),
                        "--rmax",
                        &inst.cap.to_string(),
                        "--mmax",
                        &inst.mem.to_string(),
                        "--ct",
                        &format!("{}ns", inst.ct),
                        "--delta",
                        "100ns",
                        "--gamma",
                        "2",
                        "--solve-nodes",
                        "300000",
                        "--threads",
                        &threads.to_string(),
                        "--quiet",
                        "--csv",
                        csv.to_str().unwrap(),
                    ])
                    .output()
                    .expect("spawn rtrpart");
                assert!(
                    out.status.success(),
                    "case {case} at {threads} threads failed: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                (std::fs::read(&csv).expect("csv written"), out.stdout, out.stderr)
            };
            let first = run("a");
            let second = run("b");
            degraded += u64::from(!first.2.is_empty());
            assert_eq!(
                first, second,
                "case {case} at {threads} threads: two identically-seeded runs diverged"
            );
        }
    }
    assert!(degraded > 0, "no run tripped `sched.job`; the harness is dead");
    let _ = std::fs::remove_dir_all(&dir);
}
