//! `rtrpart` — command-line front end for the temporal partitioner.
//!
//! ```text
//! rtrpart partition --graph design.tg --rmax 576 --mmax 512 --ct 1us [options]
//! rtrpart bounds    --graph design.tg --rmax 576 --mmax 512 --ct 1us
//! rtrpart demo dct|ar|fft|jpeg|matmul [--out file.tg]
//! rtrpart simulate  --graph design.tg --rmax ... (partitions, then simulates)
//! ```
//!
//! Run `rtrpart help` for the full option list. Graphs use the text format
//! of `rtr_graph::TaskGraph::{to_text, from_text}`.

use rtrpart::graph::{Area, Latency, TaskGraph};
use rtrpart::{
    Architecture, Backend, Checkpoint, CheckpointPolicy, EnvMemoryPolicy, ExploreParams,
    SearchLimits, TemporalPartitioner,
};
use std::process::ExitCode;
use std::time::Duration;

const HELP: &str = "\
rtrpart — temporal partitioning with design space exploration

USAGE:
    rtrpart <COMMAND> [OPTIONS]

COMMANDS:
    partition    explore partitionings of a task graph and print the best
    bounds       print N_min^l / N_min^u and the latency bounds
    simulate     partition, then run the result on the device simulator
    demo         write a built-in workload (dct | ar | fft | jpeg | matmul) as a .tg file
    trace-report aggregate a --trace JSONL file into a run report
    trace-export convert a --trace JSONL file to Chrome/Perfetto trace JSON
    help         print this text

OPTIONS (partition / bounds / simulate):
    --graph <file>        task graph in .tg text format (required)
    --rmax <units>        device area per configuration (required)
    --mmax <units>        on-board memory in data units   [default: 512]
    --ct <time>           reconfiguration time, e.g. 30ns, 1us, 10ms (required)
    --delta <time>        latency tolerance δ             [default: 100ns]
    --alpha <n>           starting partition relaxation α [default: 0]
    --gamma <n>           ending partition relaxation γ   [default: 1]
    --backend <name>      structured | milp               [default: structured]
    --cold-start          disable MILP warm starts (milp backend; results
                          are unchanged, only pivot counts grow)
    --strategy <name>     bisection | aggressive          [default: bisection]
    --env-policy <name>   resident | streamed             [default: resident]
    --dsp <a,b,...>       secondary resource capacities per class
    --solve-seconds <s>   per-window time budget          [default: 5]
    --solve-nodes <n>     per-window node budget instead of a wall-clock
                          one; makes runs machine-independent and byte-
                          reproducible (used by checkpoint/resume tests)
    --threads <n>         worker threads; 0 = auto (RTR_THREADS env var, else
                          CPU count) [default: 1]. One global work-stealing
                          pool schedules candidate windows and each window's
                          structured subtrees under a single thread budget;
                          results are identical at any count
    --csv <file>          write the refinement log as CSV (timing-free; byte-
                          identical across runs and thread counts)
    --timed-csv <file>    refinement log CSV with wall-clock columns
    --checkpoint <file>   stream completed solve windows into a versioned
                          JSON checkpoint (atomic temp-file + rename writes)
    --checkpoint-every <s> minimum seconds between checkpoint writes
                          [default: 30; 0 = write after every window]
    --resume <file>       resume from a checkpoint written by --checkpoint;
                          cached windows are validated and replayed, the
                          rest are solved, and the final results are byte-
                          identical to an uninterrupted run
    --dot <file>          write the task graph as Graphviz DOT
    --out-solution <file> write the best solution as text
    --trace <file>        write a structured trace of the run as JSONL
    --trace-export <fmt>  also export the trace when the run finishes;
                          `perfetto` writes <file>.perfetto.json for
                          chrome://tracing / ui.perfetto.dev (needs --trace)
    --status-file <file>  write a live status heartbeat (one JSON line per
                          interval: nodes, prunes, incumbent, windows, LP
                          pivots, checkpoint age) while the solve runs
    --status-every <ms>   heartbeat interval in milliseconds [default: 1000;
                          must be > 0]
    --quiet               only print the final solution

ENVIRONMENT:
    RTR_FAILPOINTS=<seed>:<rate>[:<site,...>]
                          deterministic fault injection for resilience
                          testing (see DESIGN.md); off unless set

OPTIONS (demo):
    --out <file>          output path [default: <name>.tg]

EXAMPLE (tracing):
    rtrpart partition --graph dct.tg --rmax 576 --ct 1us --trace run.jsonl
    rtrpart trace-report run.jsonl
    rtrpart trace-export run.jsonl run.perfetto.json

EXAMPLE (live status board):
    rtrpart partition --graph dct.tg --rmax 576 --ct 1us \\
        --status-file status.jsonl --status-every 500 &
    tail -f status.jsonl
";

fn main() -> ExitCode {
    // Under fault injection the injected panics are expected and caught;
    // keep them out of stderr so degradation reports stay comparable
    // across runs (genuine panics still print normally).
    if std::env::var_os("RTR_FAILPOINTS").is_some() {
        rtrpart::trace::failpoint::silence_injected_panics();
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `rtrpart help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("partition") => partition_cmd(&args[1..], false),
        Some("simulate") => partition_cmd(&args[1..], true),
        Some("bounds") => bounds_cmd(&args[1..]),
        Some("demo") => demo_cmd(&args[1..]),
        Some("trace-report") => trace_report_cmd(&args[1..]),
        Some("trace-export") => trace_export_cmd(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Minimal option scanner: `--key value` pairs plus boolean flags.
struct Options<'a> {
    args: &'a [String],
}

impl<'a> Options<'a> {
    fn value(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    fn required(&self, key: &str) -> Result<&'a str, String> {
        self.value(key).ok_or_else(|| format!("missing required option `{key}`"))
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.value(key) {
            Some(v) => v.parse().map_err(|_| format!("invalid value for `{key}`: `{v}`")),
            None => Ok(default),
        }
    }
}

fn parse_time(s: &str) -> Result<Latency, String> {
    let (number, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| format!("time `{s}` needs a unit (ns, us, ms, s)"))?;
    let value: f64 = number.parse().map_err(|_| format!("invalid time value `{number}`"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("time `{s}` must be finite and non-negative"));
    }
    match unit {
        "ns" => Ok(Latency::from_ns(value)),
        "us" | "µs" => Ok(Latency::from_us(value)),
        "ms" => Ok(Latency::from_ms(value)),
        "s" => Ok(Latency::from_ms(value * 1e3)),
        other => Err(format!("unknown time unit `{other}`")),
    }
}

fn load_graph(opts: &Options) -> Result<TaskGraph, String> {
    let path = opts.required("--graph")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    TaskGraph::from_text(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn load_arch(opts: &Options) -> Result<Architecture, String> {
    let rmax: u64 = opts.required("--rmax")?.parse().map_err(|_| "invalid `--rmax`".to_owned())?;
    if rmax == 0 {
        return Err("`--rmax` must be positive: a zero-area device admits no tasks".to_owned());
    }
    let mmax: u64 = opts.parsed("--mmax", 512)?;
    let ct = parse_time(opts.required("--ct")?)?;
    let env = match opts.value("--env-policy").unwrap_or("resident") {
        "resident" => EnvMemoryPolicy::Resident,
        "streamed" => EnvMemoryPolicy::Streamed,
        other => return Err(format!("unknown env policy `{other}`")),
    };
    let mut arch = Architecture::new(Area::new(rmax), mmax, ct).with_env_policy(env);
    if let Some(list) = opts.value("--dsp") {
        let caps: Result<Vec<u64>, _> = list.split(',').map(str::parse).collect();
        arch = arch
            .with_secondary_capacities(caps.map_err(|_| format!("invalid `--dsp` list `{list}`"))?);
    }
    Ok(arch)
}

fn load_params(opts: &Options) -> Result<ExploreParams, String> {
    let delta = match opts.value("--delta") {
        Some(v) => parse_time(v)?,
        None => Latency::from_ns(100.0),
    };
    let backend = match opts.value("--backend").unwrap_or("structured") {
        "structured" => Backend::Structured,
        "milp" => Backend::Milp,
        other => return Err(format!("unknown backend `{other}`")),
    };
    let strategy = match opts.value("--strategy").unwrap_or("bisection") {
        "bisection" => rtrpart::core::RefinementStrategy::Bisection,
        "aggressive" => rtrpart::core::RefinementStrategy::AggressiveDescent,
        other => return Err(format!("unknown strategy `{other}`")),
    };
    let solve_seconds: u64 = opts.parsed("--solve-seconds", 5)?;
    // `--solve-nodes` swaps the wall-clock window budget for a node-count
    // budget, which is machine-independent: two runs (or an interrupted
    // run resumed from a checkpoint) then produce byte-identical output.
    let limits = match opts.value("--solve-nodes") {
        Some(v) => {
            let node_limit: u64 =
                v.parse().map_err(|_| format!("invalid value for `--solve-nodes`: `{v}`"))?;
            SearchLimits { node_limit, time_limit: None }
        }
        None => SearchLimits {
            node_limit: 40_000_000,
            time_limit: Some(Duration::from_secs(solve_seconds)),
        },
    };
    let mut milp_options = ExploreParams::default().milp_options;
    // Warm starts never change results (stale or troubled bases fall back
    // to cold solves); the flag exists to reproduce historical pivot
    // counts and to A/B the warm-start machinery itself.
    milp_options.warm_start = !opts.flag("--cold-start");
    Ok(ExploreParams {
        delta,
        alpha: opts.parsed("--alpha", 0)?,
        gamma: opts.parsed("--gamma", 1)?,
        backend,
        strategy,
        limits,
        milp_options,
        ..Default::default()
    })
}

fn partition_cmd(args: &[String], simulate: bool) -> Result<(), String> {
    let opts = Options { args };
    let export = match opts.value("--trace-export") {
        Some("perfetto") if opts.value("--trace").is_some() => Some("perfetto"),
        Some("perfetto") => {
            return Err("`--trace-export` requires `--trace <file>`".to_owned());
        }
        Some(other) => {
            return Err(format!("unknown trace export format `{other}` (expected `perfetto`)"));
        }
        None => None,
    };
    let tracing = match opts.value("--trace") {
        Some(path) => {
            let sink = rtrpart::trace::JsonlSink::create(path)
                .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
            rtrpart::trace::install(std::sync::Arc::new(sink));
            Some(path)
        }
        None => None,
    };
    let status = match opts.value("--status-file") {
        Some(path) => {
            let every: u64 = opts.parsed("--status-every", 1000)?;
            // Every run's counters start from zero — the board is
            // process-global, so clear whatever an earlier in-process run
            // (or test) left behind.
            rtrpart::trace::status::board().reset();
            let writer = rtrpart::trace::StatusWriter::spawn(path, Duration::from_millis(every))
                .map_err(|e| format!("cannot start status heartbeat: {e}"))?;
            Some(writer)
        }
        None if opts.value("--status-every").is_some() => {
            return Err("`--status-every` requires `--status-file <file>`".to_owned());
        }
        None => None,
    };
    let result = partition_body(&opts, simulate);
    if let Some(writer) = status {
        // Writes one final snapshot so the file always ends on the
        // completed totals.
        writer.stop();
    }
    if let Some(path) = tracing {
        // Flushes the JSONL sink.
        rtrpart::trace::uninstall();
        if result.is_ok() && !opts.flag("--quiet") {
            println!("\ntrace written to {path} (inspect with `rtrpart trace-report {path}`)");
        }
        if export.is_some() {
            let out = format!("{path}.perfetto.json");
            export_trace(path, &out)?;
            if result.is_ok() && !opts.flag("--quiet") {
                println!("perfetto timeline written to {out} (open in ui.perfetto.dev)");
            }
        }
    }
    result
}

/// Converts a JSONL trace file into a Chrome/Perfetto trace-event JSON
/// document at `out`.
fn export_trace(input: &str, out: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
    let events =
        rtrpart::trace::parse_jsonl(&text).map_err(|e| format!("cannot parse `{input}`: {e}"))?;
    let json = rtrpart::trace::RunReport::to_perfetto_json(&events);
    std::fs::write(out, json).map_err(|e| format!("cannot write `{out}`: {e}"))
}

fn partition_body(opts: &Options, simulate: bool) -> Result<(), String> {
    let graph = load_graph(opts)?;
    let arch = load_arch(opts)?;
    let mut params = load_params(opts)?;
    let quiet = opts.flag("--quiet");

    if let Some(path) = opts.value("--dot") {
        std::fs::write(path, graph.to_dot()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }

    let threads: usize = opts.parsed("--threads", 1)?;
    // `--threads` is the single global budget: one work-stealing pool
    // schedules phase-2 candidate windows *and* every window's structured
    // subtree jobs, so a stalled window's idle workers migrate to other
    // candidates instead of sitting on a static per-layer split.
    params.solver_threads = threads;
    let partitioner = TemporalPartitioner::new(&graph, &arch, params)
        .map_err(|e| format!("partitioner rejected the instance: {e}"))?;
    if !quiet {
        println!("{:>4} {:>4} {:>14} {:>14}   result", "N", "I", "Dmin", "Dmax");
    }
    let print_record = |r: &rtrpart::IterationRecord| {
        if quiet {
            return;
        }
        let result = match &r.result {
            rtrpart::IterationResult::Feasible { latency, eta } => {
                format!("feasible: {latency} over {eta} partitions")
            }
            rtrpart::IterationResult::Infeasible => "infeasible".to_owned(),
            rtrpart::IterationResult::LimitReached => "undecided (budget)".to_owned(),
        };
        println!(
            "{:>4} {:>4} {:>14} {:>14}   {result}",
            r.n,
            r.iteration,
            r.d_min.to_string(),
            r.d_max.to_string()
        );
    };
    let policy = match opts.value("--checkpoint") {
        Some(path) => {
            let secs: u64 = opts.parsed("--checkpoint-every", 30)?;
            Some(CheckpointPolicy::new(path, Duration::from_secs(secs)))
        }
        None if opts.value("--checkpoint-every").is_some() => {
            return Err("`--checkpoint-every` requires `--checkpoint <file>`".to_owned());
        }
        None => None,
    };
    let resume = match opts.value("--resume") {
        Some(path) => {
            let loaded = Checkpoint::load(std::path::Path::new(path))
                .map_err(|e| format!("cannot resume from `{path}`: {e}"))?;
            Some(loaded)
        }
        None => None,
    };

    // Only the sequential path streams records as they happen; parallel
    // workers race, so their merged (and deterministic) record stream is
    // printed once the exploration finishes.
    let streamed = threads == 1;
    let exploration = if policy.is_some() || resume.is_some() {
        partitioner.explore_resumable(threads, policy.as_ref(), resume.as_ref(), |r| {
            if streamed {
                print_record(r);
            }
        })
    } else if streamed {
        partitioner.explore_with_observer(print_record)
    } else {
        partitioner.explore_parallel(threads)
    }
    .map_err(|e| format!("exploration failed: {e}"))?;
    if !streamed {
        for r in &exploration.records {
            print_record(r);
        }
    }
    if !quiet {
        println!();
    }
    if !exploration.degradation.is_clean() {
        // One grep-able block: worker panics were isolated, and this is the
        // record of what was retried or lost.
        eprint!("{}", exploration.degradation.render());
    }

    if let Some(path) = opts.value("--csv") {
        std::fs::write(path, exploration.to_csv())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    if let Some(path) = opts.value("--timed-csv") {
        std::fs::write(path, exploration.to_csv_timed())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }

    match &exploration.best {
        Some(best) => {
            println!("{}", best.summary(&graph, &arch));
            if !quiet {
                let analysis = rtrpart::core::SolutionAnalysis::analyze(&graph, &arch, best);
                println!("\n{}", analysis.render());
            }
            if let Some(path) = opts.value("--out-solution") {
                std::fs::write(path, best.to_text(&graph))
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            }
            if simulate {
                let report = rtrpart::sim::simulate(&graph, &arch, best)
                    .map_err(|e| format!("simulation rejected the solution: {e}"))?;
                println!("\nsimulated timeline:\n{}", report.timeline());
                println!("\n{}", report.gantt(64));
            }
            Ok(())
        }
        None => Err("no feasible partitioning found".to_owned()),
    }
}

fn bounds_cmd(args: &[String]) -> Result<(), String> {
    let opts = Options { args };
    let graph = load_graph(&opts)?;
    let arch = load_arch(&opts)?;
    let n_l = rtrpart::min_area_partitions(&graph, &arch);
    let n_u = rtrpart::max_area_partitions(&graph, &arch);
    println!("{}", graph.stats());
    println!("N_min^l (MinAreaPartitions) = {n_l}");
    println!("N_min^u (MaxAreaPartitions) = {n_u}");
    for n in n_l..=n_u {
        println!(
            "N = {n}: MinLatency = {}, MaxLatency = {}",
            rtrpart::min_latency(&graph, &arch, n),
            rtrpart::max_latency(&graph, &arch, n)
        );
    }
    Ok(())
}

fn trace_report_cmd(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .map(String::as_str)
        .ok_or("trace-report needs a JSONL trace file (from `partition --trace <file>`)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let events =
        rtrpart::trace::parse_jsonl(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))?;
    let report = rtrpart::trace::RunReport::from_events(&events);
    print!("{}", report.render());
    Ok(())
}

fn trace_export_cmd(args: &[String]) -> Result<(), String> {
    let [input, out] = args else {
        return Err("trace-export needs <in.jsonl> <out.json> (the input comes from \
             `partition --trace <file>`)"
            .to_owned());
    };
    export_trace(input, out)?;
    println!("perfetto timeline written to {out} (open in ui.perfetto.dev)");
    Ok(())
}

fn demo_cmd(args: &[String]) -> Result<(), String> {
    let opts = Options { args: &args[1..] };
    let name = args
        .first()
        .map(String::as_str)
        .ok_or("demo needs a workload name (dct | ar | fft | jpeg | matmul)")?;
    let graph = match name {
        "dct" => rtrpart::workloads::dct::dct_4x4(),
        "ar" => {
            rtrpart::workloads::ar::ar_filter().map_err(|e| format!("AR synthesis failed: {e}"))?
        }
        "fft" => rtrpart::workloads::fft::fft_graph(16, 4)
            .map_err(|e| format!("FFT synthesis failed: {e}"))?,
        "jpeg" => rtrpart::workloads::jpeg::jpeg_pipeline()
            .map_err(|e| format!("JPEG synthesis failed: {e}"))?,
        "matmul" => rtrpart::workloads::matmul::matmul_graph(3, 2)
            .map_err(|e| format!("matmul synthesis failed: {e}"))?,
        other => {
            return Err(format!("unknown demo `{other}` (expected dct | ar | fft | jpeg | matmul)"))
        }
    };
    let default = format!("{name}.tg");
    let out = opts.value("--out").unwrap_or(&default);
    std::fs::write(out, graph.to_text()).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!("wrote {} tasks / {} edges to {out}", graph.task_count(), graph.edge_count());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parse_time_units() {
        assert_eq!(parse_time("30ns").unwrap().as_ns(), 30.0);
        assert_eq!(parse_time("1.5us").unwrap().as_ns(), 1500.0);
        assert_eq!(parse_time("10ms").unwrap().as_ns(), 1e7);
        assert_eq!(parse_time("2s").unwrap().as_ns(), 2e9);
        assert!(parse_time("10").is_err());
        assert!(parse_time("xns").is_err());
        assert!(parse_time("5weeks").is_err());
        assert!(parse_time("-1ms").is_err());
    }

    #[test]
    fn options_scanner() {
        let args = strs(&["--rmax", "576", "--quiet", "--ct", "1us"]);
        let opts = Options { args: &args };
        assert_eq!(opts.value("--rmax"), Some("576"));
        assert_eq!(opts.value("--ct"), Some("1us"));
        assert!(opts.flag("--quiet"));
        assert!(!opts.flag("--dot"));
        assert!(opts.required("--mmax").is_err());
        assert_eq!(opts.parsed("--alpha", 7u32).unwrap(), 7);
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&strs(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn arch_parsing_including_dsp_classes() {
        let args = strs(&[
            "--rmax",
            "576",
            "--ct",
            "1us",
            "--mmax",
            "64",
            "--dsp",
            "4,2",
            "--env-policy",
            "streamed",
        ]);
        let opts = Options { args: &args };
        let arch = load_arch(&opts).unwrap();
        assert_eq!(arch.resource_capacity().units(), 576);
        assert_eq!(arch.memory_capacity(), 64);
        assert_eq!(arch.secondary_capacities(), &[4, 2]);
        assert_eq!(arch.env_policy(), EnvMemoryPolicy::Streamed);
    }

    #[test]
    fn bad_backend_and_policy_rejected() {
        let args = strs(&["--rmax", "1", "--ct", "1ns", "--env-policy", "psychic"]);
        assert!(load_arch(&Options { args: &args }).is_err());
        let args = strs(&["--backend", "quantum"]);
        assert!(load_params(&Options { args: &args }).is_err());
    }
}
