//! Full front-to-back flow: write behavioral tasks as operation dataflow
//! graphs, synthesize design points with the HLS estimator, assemble the
//! task graph, partition, and simulate — the same path the paper's SPARCS
//! environment automates.
//!
//! Run with `cargo run --release --example custom_hls_flow`.

use rtrpart::graph::{Area, Latency, TaskGraphBuilder};
use rtrpart::hls::{synthesize_task, BehavioralTask, EstimatorOptions, FuLibrary, OpKind};
use rtrpart::{Architecture, ExploreParams, TemporalPartitioner};

/// An 8-tap FIR stage: 8 multiplies into an adder tree.
fn fir_stage(name: &str, width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new(name);
    let muls: Vec<_> = (0..8).map(|_| t.add_op(OpKind::Mul, width, &[])).collect();
    let mut layer = muls;
    while layer.len() > 1 {
        layer = layer.chunks(2).map(|pair| t.add_op(OpKind::Add, width, pair)).collect();
    }
    t
}

/// A decimator: shift + compare + subtract.
fn decimator(name: &str, width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new(name);
    let s = t.add_op(OpKind::Shift, width, &[]);
    let c = t.add_op(OpKind::Cmp, width, &[s]);
    t.add_op(OpKind::Sub, width, &[c]);
    t
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = FuLibrary::xc4000_style();
    let opts = EstimatorOptions::default();

    // Synthesize design points for each behavioral task.
    let mut b = TaskGraphBuilder::new();
    let fir_i = b.add_prepared_task(synthesize_task(&fir_stage("fir_i", 12), &lib, &opts, 8, 0)?);
    let fir_q = b.add_prepared_task(synthesize_task(&fir_stage("fir_q", 12), &lib, &opts, 8, 0)?);
    let dec = b.add_prepared_task(synthesize_task(&decimator("decimate", 12), &lib, &opts, 0, 2)?);
    b.add_edge(fir_i, dec, 4)?;
    b.add_edge(fir_q, dec, 4)?;
    let graph = b.build()?;

    println!("== synthesized design points ==");
    for task in graph.tasks() {
        println!("{}:", task.name());
        for dp in task.design_points() {
            println!("  {dp}");
        }
    }

    let arch = Architecture::new(Area::new(700), 64, Latency::from_us(5.0));
    let partitioner = TemporalPartitioner::new(&graph, &arch, ExploreParams::default())?;
    let exploration = partitioner.explore()?;
    let best = exploration.best.expect("feasible");

    println!("\n== partitioning ==");
    println!("{}", best.summary(&graph, &arch));

    let report = rtrpart::sim::simulate(&graph, &arch, &best)?;
    println!("\n== simulation ==\n{}", report.timeline());
    Ok(())
}
