//! Resource-constrained list scheduling.

use crate::error::HlsError;
use crate::library::FuLibrary;
use crate::op::{BehavioralTask, OpId, OpKind};
use rtr_graph::{Area, Latency};
use std::collections::BTreeMap;

/// A module set: how many functional units of each kind are allocated.
///
/// This is the paper's "module set `m`" — "the set of, possibly multiple,
/// functional units used to implement the design point".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Allocation {
    counts: BTreeMap<OpKind, usize>,
}

impl Allocation {
    /// An empty allocation.
    pub fn new() -> Self {
        Allocation::default()
    }

    /// Sets the number of `kind` functional units.
    pub fn with(mut self, kind: OpKind, count: usize) -> Self {
        self.counts.insert(kind, count);
        self
    }

    /// Number of `kind` functional units allocated.
    pub fn count(&self, kind: OpKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Iterator over `(kind, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, usize)> + '_ {
        self.counts.iter().filter(|(_, &c)| c > 0).map(|(&k, &c)| (k, c))
    }

    /// Total FPGA area of the allocation for `task` under `library`: each
    /// unit is sized for the widest operation of its kind in the task.
    pub fn area(&self, task: &BehavioralTask, library: &FuLibrary) -> Area {
        self.iter()
            .map(|(kind, count)| {
                let width = task.max_width_of(kind);
                if width == 0 {
                    Area::ZERO
                } else {
                    library.spec(kind, width).area * count as u64
                }
            })
            .sum()
    }

    /// Total secondary-resource consumption of the allocation for `task`
    /// under `library`, summed elementwise across classes.
    pub fn secondary(&self, task: &BehavioralTask, library: &FuLibrary) -> Vec<u64> {
        let mut totals: Vec<u64> = Vec::new();
        for (kind, count) in self.iter() {
            let width = task.max_width_of(kind);
            if width == 0 {
                continue;
            }
            let spec = library.spec(kind, width);
            for (k, &units) in spec.secondary.iter().enumerate() {
                if k >= totals.len() {
                    totals.resize(k + 1, 0);
                }
                totals[k] += units * count as u64;
            }
        }
        totals
    }

    /// A human-readable module-set name, e.g. `2mul-1add`.
    pub fn label(&self) -> String {
        let parts: Vec<String> = self.iter().map(|(k, c)| format!("{c}{k}")).collect();
        if parts.is_empty() {
            "empty".to_owned()
        } else {
            parts.join("-")
        }
    }
}

/// One scheduled operation: start/finish times and the functional unit
/// instance it ran on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledOp {
    /// The operation.
    pub op: OpId,
    /// Start time relative to task start.
    pub start: Latency,
    /// Finish time relative to task start.
    pub finish: Latency,
    /// Index of the functional-unit instance (within its kind) used.
    pub unit: usize,
}

/// A complete schedule of a behavioral task on an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Per-operation placement, indexed like the task's operations.
    pub ops: Vec<ScheduledOp>,
    /// Overall latency (the makespan).
    pub latency: Latency,
}

/// Schedules `task` on `allocation` using list scheduling with critical-path
/// priority: ready operations are served longest-remaining-path first, each
/// on the earliest-available functional unit of its kind.
///
/// # Errors
///
/// Returns [`HlsError::EmptyAllocation`] if the task uses an operation kind
/// for which the allocation provides no unit, or any task validation error.
pub fn schedule(
    task: &BehavioralTask,
    allocation: &Allocation,
    library: &FuLibrary,
) -> Result<Schedule, HlsError> {
    let delays: Vec<f64> =
        task.ops().iter().map(|o| library.spec(o.kind, o.width).delay.as_ns()).collect();
    schedule_with_delays(task, allocation, delays)
}

/// Clocked variant of [`schedule`]: every operation occupies a whole number
/// of clock cycles (`⌈delay / clock⌉`), the way cycle-based HLS estimators
/// in the style of the paper's reference \[18\] count latency. The
/// resulting makespan is a multiple of the cycle time for chain-structured
/// tasks and never shorter than the continuous-time schedule.
///
/// # Errors
///
/// Like [`schedule`]; additionally if `clock` is not positive.
///
/// # Panics
///
/// Panics if `clock` is zero.
pub fn schedule_clocked(
    task: &BehavioralTask,
    allocation: &Allocation,
    library: &FuLibrary,
    clock: Latency,
) -> Result<Schedule, HlsError> {
    assert!(clock > Latency::ZERO, "clock period must be positive");
    let delays: Vec<f64> = task
        .ops()
        .iter()
        .map(|o| {
            let d = library.spec(o.kind, o.width).delay.as_ns();
            (d / clock.as_ns()).ceil() * clock.as_ns()
        })
        .collect();
    schedule_with_delays(task, allocation, delays)
}

fn schedule_with_delays(
    task: &BehavioralTask,
    allocation: &Allocation,
    delays: Vec<f64>,
) -> Result<Schedule, HlsError> {
    let span = rtr_trace::span("hls.schedule").with("ops", task.op_count());
    task.validate()?;
    for kind in task.kinds_used() {
        if allocation.count(kind) == 0 {
            return Err(HlsError::EmptyAllocation { kind: kind.to_string() });
        }
    }

    let n = task.op_count();

    // Critical-path-to-sink priority (longer first).
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in task.ops().iter().enumerate() {
        for d in op.deps() {
            succs[d.index()].push(i);
        }
    }
    let mut priority = vec![0.0f64; n];
    for i in (0..n).rev() {
        let tail = succs[i].iter().map(|&s| priority[s]).fold(0.0f64, f64::max);
        priority[i] = delays[i] + tail;
    }

    // Earliest time each op's operands are all available.
    let mut ready_time = vec![0.0f64; n];
    let mut remaining_deps: Vec<usize> = task.ops().iter().map(|o| o.deps().len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_deps[i] == 0).collect();
    // Per-kind unit availability times.
    let mut unit_free: BTreeMap<OpKind, Vec<f64>> =
        task.kinds_used().into_iter().map(|k| (k, vec![0.0; allocation.count(k)])).collect();

    let mut placed: Vec<Option<ScheduledOp>> = vec![None; n];
    let mut scheduled_count = 0usize;
    while scheduled_count < n {
        // Pick the highest-priority ready op.
        let (pos, &i) = ready
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                priority[a]
                    .total_cmp(&priority[b])
                    // Deterministic tie-break on index.
                    .then(b.cmp(&a))
            })
            .expect("acyclic validated task always has a ready op");
        ready.swap_remove(pos);

        let kind = task.ops()[i].kind();
        let units = unit_free.get_mut(&kind).expect("kind checked above");
        let (unit, free) = units
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(u, &f)| (u, f))
            .expect("allocation count checked non-zero");
        let start = ready_time[i].max(free);
        let finish = start + delays[i];
        units[unit] = finish;
        placed[i] = Some(ScheduledOp {
            op: OpId(i),
            start: Latency::from_ns(start),
            finish: Latency::from_ns(finish),
            unit,
        });
        scheduled_count += 1;
        for &s in &succs[i] {
            ready_time[s] = ready_time[s].max(finish);
            remaining_deps[s] -= 1;
            if remaining_deps[s] == 0 {
                ready.push(s);
            }
        }
    }

    let ops: Vec<ScheduledOp> = placed.into_iter().map(|o| o.expect("all placed")).collect();
    let latency = ops.iter().map(|o| o.finish).fold(Latency::ZERO, Latency::max);
    span.with("makespan_ns", latency.as_ns()).finish();
    Ok(Schedule { ops, latency })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector_product(width: u32) -> BehavioralTask {
        let mut t = BehavioralTask::new("vp");
        let m: Vec<_> = (0..4).map(|_| t.add_op(OpKind::Mul, width, &[])).collect();
        let a0 = t.add_op(OpKind::Add, width, &[m[0], m[1]]);
        let a1 = t.add_op(OpKind::Add, width, &[m[2], m[3]]);
        t.add_op(OpKind::Add, width, &[a0, a1]);
        t
    }

    #[test]
    fn serial_allocation_serializes_multiplies() {
        let t = vector_product(8);
        let lib = FuLibrary::unit(); // every op takes 8 ns
        let alloc = Allocation::new().with(OpKind::Mul, 1).with(OpKind::Add, 1);
        let s = schedule(&t, &alloc, &lib).unwrap();
        // 4 serial muls = 32; adds: a0 after mul1 (16) but adder busy order…
        // lower bound: 4*8 (muls serial) + 8 (last add) = 40; a0/a1 overlap muls.
        assert!(s.latency.as_ns() >= 40.0, "latency {}", s.latency.as_ns());
        assert!(s.latency.as_ns() <= 48.0, "latency {}", s.latency.as_ns());
    }

    #[test]
    fn parallel_allocation_hits_critical_path() {
        let t = vector_product(8);
        let lib = FuLibrary::unit();
        let alloc = Allocation::new().with(OpKind::Mul, 4).with(OpKind::Add, 2);
        let s = schedule(&t, &alloc, &lib).unwrap();
        // mul(8) + add(8) + add(8) = 24: the dataflow critical path.
        assert_eq!(s.latency.as_ns(), 24.0);
    }

    #[test]
    fn more_units_never_hurts() {
        let t = vector_product(16);
        let lib = FuLibrary::xc4000_style();
        let mut prev = f64::INFINITY;
        for muls in 1..=4 {
            let alloc = Allocation::new().with(OpKind::Mul, muls).with(OpKind::Add, 1);
            let s = schedule(&t, &alloc, &lib).unwrap();
            assert!(s.latency.as_ns() <= prev + 1e-9);
            prev = s.latency.as_ns();
        }
    }

    #[test]
    fn missing_unit_kind_is_an_error() {
        let t = vector_product(8);
        let alloc = Allocation::new().with(OpKind::Mul, 1); // no adder
        assert!(matches!(
            schedule(&t, &alloc, &FuLibrary::unit()),
            Err(HlsError::EmptyAllocation { .. })
        ));
    }

    #[test]
    fn schedule_respects_dependencies_and_unit_exclusivity() {
        let t = vector_product(8);
        let lib = FuLibrary::xc4000_style();
        let alloc = Allocation::new().with(OpKind::Mul, 2).with(OpKind::Add, 1);
        let s = schedule(&t, &alloc, &lib).unwrap();
        // Dependencies.
        for (i, op) in t.ops().iter().enumerate() {
            for d in op.deps() {
                assert!(s.ops[d.index()].finish <= s.ops[i].start);
            }
        }
        // Exclusivity per (kind, unit): intervals must not overlap.
        for (i, a) in s.ops.iter().enumerate() {
            for (j, b) in s.ops.iter().enumerate() {
                if i < j && t.ops()[i].kind() == t.ops()[j].kind() && a.unit == b.unit {
                    assert!(
                        a.finish <= b.start || b.finish <= a.start,
                        "ops {i} and {j} overlap on the same unit"
                    );
                }
            }
        }
    }

    #[test]
    fn allocation_area_and_label() {
        let t = vector_product(16);
        let lib = FuLibrary::unit();
        let alloc = Allocation::new().with(OpKind::Mul, 2).with(OpKind::Add, 1);
        // Unit lib: mul unit area = width = 16, add = 16 -> 2*16 + 16 = 48.
        assert_eq!(alloc.area(&t, &lib), Area::new(48));
        assert_eq!(alloc.label(), "1add-2mul");
        assert_eq!(Allocation::new().label(), "empty");
    }

    #[test]
    fn clocked_schedule_quantizes_delays() {
        let t = vector_product(10); // unit lib: every op 10 ns
        let lib = FuLibrary::unit();
        let alloc = Allocation::new().with(OpKind::Mul, 4).with(OpKind::Add, 2);
        // Continuous: 10 + 10 + 10 = 30. Clock of 8 ns: each op takes
        // ceil(10/8) = 2 cycles = 16 ns -> 48 ns.
        let continuous = schedule(&t, &alloc, &lib).unwrap();
        assert_eq!(continuous.latency.as_ns(), 30.0);
        let clocked = schedule_clocked(&t, &alloc, &lib, Latency::from_ns(8.0)).unwrap();
        assert_eq!(clocked.latency.as_ns(), 48.0);
        // A clock that divides the delay exactly changes nothing.
        let exact = schedule_clocked(&t, &alloc, &lib, Latency::from_ns(5.0)).unwrap();
        assert_eq!(exact.latency.as_ns(), 30.0);
    }

    #[test]
    fn clocked_never_beats_continuous() {
        let t = vector_product(13);
        let lib = FuLibrary::xc4000_style();
        for units in 1..=3 {
            let alloc = Allocation::new().with(OpKind::Mul, units).with(OpKind::Add, 1);
            let continuous = schedule(&t, &alloc, &lib).unwrap();
            for clock in [3.0, 7.0, 11.0, 20.0] {
                let clocked = schedule_clocked(&t, &alloc, &lib, Latency::from_ns(clock)).unwrap();
                assert!(clocked.latency >= continuous.latency, "units {units}, clock {clock}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "clock period must be positive")]
    fn zero_clock_panics() {
        let t = vector_product(8);
        let alloc = Allocation::new().with(OpKind::Mul, 1).with(OpKind::Add, 1);
        let _ = schedule_clocked(&t, &alloc, &FuLibrary::unit(), Latency::ZERO);
    }

    #[test]
    fn single_op_task() {
        let mut t = BehavioralTask::new("one");
        t.add_op(OpKind::Add, 8, &[]);
        let alloc = Allocation::new().with(OpKind::Add, 1);
        let s = schedule(&t, &alloc, &FuLibrary::unit()).unwrap();
        assert_eq!(s.latency.as_ns(), 8.0);
        assert_eq!(s.ops[0].start, Latency::ZERO);
    }
}
