//! High-level synthesis estimation: design-point generation.
//!
//! This crate is the workspace's substitute for the in-house HLS estimation
//! tool the paper relies on for preprocessing ("Each task in the task graph
//! is synthesized by a high level synthesis estimation tool. The high level
//! synthesis tool generates a set of design points for each task. Each
//! design point has an associated module set.").
//!
//! A behavioral task is an operation dataflow graph ([`BehavioralTask`]);
//! a functional-unit library ([`FuLibrary`]) maps operation kinds and bit
//! widths to area/delay estimates; [`enumerate_design_points`] explores
//! functional-unit allocations (module sets), schedules the task under each
//! with a resource-constrained list scheduler, and Pareto-prunes the
//! resulting (area, latency) points.
//!
//! # Examples
//!
//! ```
//! use rtr_hls::{BehavioralTask, OpKind, FuLibrary, EstimatorOptions, enumerate_design_points};
//!
//! # fn main() -> Result<(), rtr_hls::HlsError> {
//! // A 4-element vector product: 4 multiplies feeding an adder tree.
//! let mut t = BehavioralTask::new("vprod");
//! let muls: Vec<_> = (0..4).map(|_| t.add_op(OpKind::Mul, 16, &[])).collect();
//! let s0 = t.add_op(OpKind::Add, 16, &[muls[0], muls[1]]);
//! let s1 = t.add_op(OpKind::Add, 16, &[muls[2], muls[3]]);
//! t.add_op(OpKind::Add, 16, &[s0, s1]);
//!
//! let lib = FuLibrary::xc4000_style();
//! let points = enumerate_design_points(&t, &lib, &EstimatorOptions::default())?;
//! assert!(!points.is_empty());
//! // More multipliers -> strictly faster within the Pareto front.
//! for w in points.windows(2) {
//!     assert!(w[0].design_point.area() < w[1].design_point.area());
//!     assert!(w[0].design_point.latency() > w[1].design_point.latency());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod explore;
mod library;
mod op;
mod schedule;

pub use error::HlsError;
pub use explore::{enumerate_design_points, synthesize_task, EstimatorOptions, SynthesizedPoint};
pub use library::{FuLibrary, FuSpec};
pub use op::{BehavioralTask, OpId, OpKind, Operation};
pub use schedule::{schedule, schedule_clocked, Allocation, Schedule, ScheduledOp};
