//! Behavioral tasks as operation dataflow graphs.

use crate::error::HlsError;
use std::fmt;

/// Kind of a behavioral operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Multiply-accumulate.
    Mac,
    /// Barrel shift.
    Shift,
    /// Magnitude comparison.
    Cmp,
}

impl OpKind {
    /// All operation kinds, in a fixed order.
    pub const ALL: [OpKind; 6] =
        [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Mac, OpKind::Shift, OpKind::Cmp];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Mac => "mac",
            OpKind::Shift => "shift",
            OpKind::Cmp => "cmp",
        })
    }
}

/// Index of an operation within a [`BehavioralTask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// Raw index of the operation.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// One operation of a behavioral task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    pub(crate) kind: OpKind,
    pub(crate) width: u32,
    pub(crate) deps: Vec<OpId>,
}

impl Operation {
    /// Operation kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Operand bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Dataflow predecessors.
    pub fn deps(&self) -> &[OpId] {
        &self.deps
    }
}

/// A behavioral task: an acyclic operation dataflow graph.
///
/// Operations are appended in dataflow order (dependencies first), which
/// makes the graph acyclic by construction; [`validate`](Self::validate)
/// checks the remaining invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehavioralTask {
    name: String,
    ops: Vec<Operation>,
}

impl BehavioralTask {
    /// Creates an empty task named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        BehavioralTask { name: name.into(), ops: Vec::new() }
    }

    /// Task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an operation that depends on the given earlier operations.
    ///
    /// # Panics
    ///
    /// Panics if any dependency id refers to an operation not yet added;
    /// use [`validate`](Self::validate) for a fallible check of a fully
    /// built task.
    pub fn add_op(&mut self, kind: OpKind, width: u32, deps: &[OpId]) -> OpId {
        for d in deps {
            assert!(
                d.0 < self.ops.len(),
                "dependency {d} of a new {kind} operation does not exist yet"
            );
        }
        self.ops.push(Operation { kind, width, deps: deps.to_vec() });
        OpId(self.ops.len() - 1)
    }

    /// The operations in dataflow order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Checks the task invariants: non-empty, all widths positive, all
    /// dependencies in range and pointing backwards.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`HlsError`].
    pub fn validate(&self) -> Result<(), HlsError> {
        if self.ops.is_empty() {
            return Err(HlsError::EmptyTask { task: self.name.clone() });
        }
        for (i, op) in self.ops.iter().enumerate() {
            if op.width == 0 {
                return Err(HlsError::ZeroWidth { task: self.name.clone() });
            }
            for d in &op.deps {
                if d.0 >= i {
                    return Err(HlsError::UnknownDependency {
                        task: self.name.clone(),
                        index: d.0,
                    });
                }
            }
        }
        Ok(())
    }

    /// The distinct operation kinds used, in [`OpKind::ALL`] order.
    pub fn kinds_used(&self) -> Vec<OpKind> {
        OpKind::ALL.into_iter().filter(|k| self.ops.iter().any(|o| o.kind == *k)).collect()
    }

    /// Number of operations of the given kind.
    pub fn count_of(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }

    /// Maximum bit width among operations of the given kind (0 if none).
    pub fn max_width_of(&self, kind: OpKind) -> u32 {
        self.ops.iter().filter(|o| o.kind == kind).map(|o| o.width).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector_product(width: u32) -> BehavioralTask {
        let mut t = BehavioralTask::new("vp");
        let m: Vec<_> = (0..4).map(|_| t.add_op(OpKind::Mul, width, &[])).collect();
        let a0 = t.add_op(OpKind::Add, width, &[m[0], m[1]]);
        let a1 = t.add_op(OpKind::Add, width, &[m[2], m[3]]);
        t.add_op(OpKind::Add, width, &[a0, a1]);
        t
    }

    #[test]
    fn construction_and_counts() {
        let t = vector_product(16);
        assert_eq!(t.op_count(), 7);
        assert_eq!(t.count_of(OpKind::Mul), 4);
        assert_eq!(t.count_of(OpKind::Add), 3);
        assert_eq!(t.count_of(OpKind::Sub), 0);
        assert_eq!(t.kinds_used(), vec![OpKind::Add, OpKind::Mul]);
        assert_eq!(t.max_width_of(OpKind::Mul), 16);
        assert_eq!(t.max_width_of(OpKind::Cmp), 0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn empty_task_invalid() {
        assert!(matches!(BehavioralTask::new("e").validate(), Err(HlsError::EmptyTask { .. })));
    }

    #[test]
    fn zero_width_invalid() {
        let mut t = BehavioralTask::new("z");
        t.add_op(OpKind::Add, 0, &[]);
        assert!(matches!(t.validate(), Err(HlsError::ZeroWidth { .. })));
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_panics() {
        let mut t = BehavioralTask::new("f");
        t.add_op(OpKind::Add, 8, &[OpId(5)]);
    }

    #[test]
    fn kind_display() {
        assert_eq!(OpKind::Mul.to_string(), "mul");
        assert_eq!(OpKind::Shift.to_string(), "shift");
    }
}
