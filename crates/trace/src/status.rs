//! Live status board: a lock-free snapshot of solver progress.
//!
//! The trace stream ([`crate::Sink`]) is the *deterministic* record of a
//! run — every event in it must be identical across thread counts, which
//! rules out publishing anything scheduling-dependent through it. The
//! status board is the complementary surface: a process-global set of
//! relaxed atomic counters that the solver stack bumps at coarse cadences
//! (budget-chunk claims, prune sites, window completions, simplex pivots)
//! and that any thread may snapshot at any time without locks. Snapshots
//! are approximate by design — fields are read independently, so a
//! snapshot is not a consistent cut — but every individual field is exact
//! at the moment it was read.
//!
//! [`StatusWriter`] turns the board into a heartbeat file: a watcher
//! thread appends one JSON object per interval (JSONL), flushing each
//! line, so a run killed with SIGKILL still leaves a readable progress
//! tail. The line format is the wire format planned for `rtrd` status
//! queries (ROADMAP item 1).

use std::fmt;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Process-global progress counters, updated with relaxed atomics.
///
/// All methods are safe to call from any thread at any frequency; the
/// intended discipline is coarse cadences (every budget chunk, every
/// window, every pivot) so the hot search loop stays unobserved.
#[derive(Debug)]
pub struct StatusBoard {
    nodes: AtomicU64,
    latency_prunes: AtomicU64,
    area_prunes: AtomicU64,
    memory_rejects: AtomicU64,
    dominance_prunes: AtomicU64,
    /// Best latency anywhere, as non-negative IEEE-754 bits (`fetch_min`
    /// on bits orders like `fetch_min` on the latencies themselves).
    incumbent_bits: AtomicU64,
    windows_feasible: AtomicU64,
    windows_infeasible: AtomicU64,
    windows_limit: AtomicU64,
    lp_pivots: AtomicU64,
    lp_devex_resets: AtomicU64,
    ilp_cuts: AtomicU64,
    checkpoint_writes: AtomicU64,
    /// Trace-epoch timestamp of the last checkpoint write (`u64::MAX`
    /// until one happens).
    checkpoint_last_us: AtomicU64,
    jobs_claimed: AtomicU64,
    workers_active: AtomicU64,
    sched_jobs: AtomicU64,
    sched_batches: AtomicU64,
    sched_nested_batches: AtomicU64,
    sched_lost_jobs: AtomicU64,
    sched_local_pops: AtomicU64,
    sched_steals: AtomicU64,
    sched_idle_parks: AtomicU64,
    sched_queue_depth_max: AtomicU64,
}

impl StatusBoard {
    const fn new() -> Self {
        StatusBoard {
            nodes: AtomicU64::new(0),
            latency_prunes: AtomicU64::new(0),
            area_prunes: AtomicU64::new(0),
            memory_rejects: AtomicU64::new(0),
            dominance_prunes: AtomicU64::new(0),
            incumbent_bits: AtomicU64::new(u64::MAX),
            windows_feasible: AtomicU64::new(0),
            windows_infeasible: AtomicU64::new(0),
            windows_limit: AtomicU64::new(0),
            lp_pivots: AtomicU64::new(0),
            lp_devex_resets: AtomicU64::new(0),
            ilp_cuts: AtomicU64::new(0),
            checkpoint_writes: AtomicU64::new(0),
            checkpoint_last_us: AtomicU64::new(u64::MAX),
            jobs_claimed: AtomicU64::new(0),
            workers_active: AtomicU64::new(0),
            sched_jobs: AtomicU64::new(0),
            sched_batches: AtomicU64::new(0),
            sched_nested_batches: AtomicU64::new(0),
            sched_lost_jobs: AtomicU64::new(0),
            sched_local_pops: AtomicU64::new(0),
            sched_steals: AtomicU64::new(0),
            sched_idle_parks: AtomicU64::new(0),
            sched_queue_depth_max: AtomicU64::new(0),
        }
    }

    /// Adds `n` explored search nodes.
    pub fn add_nodes(&self, n: u64) {
        self.nodes.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds pruned-subtree counts by cause.
    pub fn add_prunes(&self, latency: u64, area: u64, memory: u64, dominance: u64) {
        if latency > 0 {
            self.latency_prunes.fetch_add(latency, Ordering::Relaxed);
        }
        if area > 0 {
            self.area_prunes.fetch_add(area, Ordering::Relaxed);
        }
        if memory > 0 {
            self.memory_rejects.fetch_add(memory, Ordering::Relaxed);
        }
        if dominance > 0 {
            self.dominance_prunes.fetch_add(dominance, Ordering::Relaxed);
        }
    }

    /// Publishes an incumbent latency; only improvements stick.
    pub fn record_incumbent(&self, latency_ns: f64) {
        if latency_ns >= 0.0 && latency_ns.is_finite() {
            self.incumbent_bits.fetch_min(latency_ns.to_bits(), Ordering::Relaxed);
        }
    }

    /// Records one completed window by outcome.
    pub fn record_window(&self, outcome: WindowOutcome) {
        let slot = match outcome {
            WindowOutcome::Feasible => &self.windows_feasible,
            WindowOutcome::Infeasible => &self.windows_infeasible,
            WindowOutcome::LimitReached => &self.windows_limit,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds simplex pivots.
    pub fn add_lp_pivots(&self, n: u64) {
        self.lp_pivots.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds devex / steepest-edge pricing framework resets.
    pub fn add_lp_devex_resets(&self, n: u64) {
        self.lp_devex_resets.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds cutting planes generated by the MILP root separator.
    pub fn add_ilp_cuts(&self, n: u64) {
        self.ilp_cuts.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a checkpoint write (stamps the checkpoint age clock).
    pub fn record_checkpoint_write(&self) {
        self.checkpoint_writes.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_last_us.store(crate::now_us(), Ordering::Relaxed);
    }

    /// Adds claimed intra-window subtree jobs.
    pub fn add_jobs_claimed(&self, n: u64) {
        self.jobs_claimed.fetch_add(n, Ordering::Relaxed);
    }

    /// Marks a worker thread as entering (`+1`) the solver.
    pub fn worker_started(&self) {
        self.workers_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a worker thread as leaving (`-1`) the solver.
    pub fn worker_stopped(&self) {
        self.workers_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds scheduler jobs executed to completion (or abandonment).
    pub fn add_sched_jobs(&self, n: u64) {
        self.sched_jobs.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds scheduler batches submitted.
    pub fn add_sched_batches(&self, n: u64) {
        self.sched_batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds batches submitted from inside another job (nested
    /// parallelism sharing the global budget).
    pub fn add_sched_nested_batches(&self, n: u64) {
        self.sched_nested_batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds jobs abandoned after the scheduler's retry limit.
    pub fn add_sched_lost_jobs(&self, n: u64) {
        self.sched_lost_jobs.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds jobs a participant popped from its own deque.
    pub fn add_sched_local_pops(&self, n: u64) {
        self.sched_local_pops.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds jobs claimed from another participant's deque.
    pub fn add_sched_steals(&self, n: u64) {
        self.sched_steals.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds timed idle parks.
    pub fn add_sched_idle_parks(&self, n: u64) {
        self.sched_idle_parks.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the high-water mark of observed scheduler queue depth.
    pub fn max_sched_queue_depth(&self, depth: u64) {
        self.sched_queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Reads every counter (independently; not a consistent cut).
    pub fn snapshot(&self) -> StatusSnapshot {
        let incumbent = self.incumbent_bits.load(Ordering::Relaxed);
        let last_ck = self.checkpoint_last_us.load(Ordering::Relaxed);
        let now = crate::now_us();
        StatusSnapshot {
            ts_us: now,
            nodes: self.nodes.load(Ordering::Relaxed),
            latency_prunes: self.latency_prunes.load(Ordering::Relaxed),
            area_prunes: self.area_prunes.load(Ordering::Relaxed),
            memory_rejects: self.memory_rejects.load(Ordering::Relaxed),
            dominance_prunes: self.dominance_prunes.load(Ordering::Relaxed),
            incumbent_latency_ns: (incumbent != u64::MAX).then(|| f64::from_bits(incumbent)),
            windows_feasible: self.windows_feasible.load(Ordering::Relaxed),
            windows_infeasible: self.windows_infeasible.load(Ordering::Relaxed),
            windows_limit: self.windows_limit.load(Ordering::Relaxed),
            lp_pivots: self.lp_pivots.load(Ordering::Relaxed),
            lp_devex_resets: self.lp_devex_resets.load(Ordering::Relaxed),
            ilp_cuts: self.ilp_cuts.load(Ordering::Relaxed),
            checkpoint_writes: self.checkpoint_writes.load(Ordering::Relaxed),
            checkpoint_age_us: (last_ck != u64::MAX).then(|| now.saturating_sub(last_ck)),
            jobs_claimed: self.jobs_claimed.load(Ordering::Relaxed),
            workers_active: self.workers_active.load(Ordering::Relaxed),
            sched_jobs: self.sched_jobs.load(Ordering::Relaxed),
            sched_batches: self.sched_batches.load(Ordering::Relaxed),
            sched_nested_batches: self.sched_nested_batches.load(Ordering::Relaxed),
            sched_lost_jobs: self.sched_lost_jobs.load(Ordering::Relaxed),
            sched_local_pops: self.sched_local_pops.load(Ordering::Relaxed),
            sched_steals: self.sched_steals.load(Ordering::Relaxed),
            sched_idle_parks: self.sched_idle_parks.load(Ordering::Relaxed),
            sched_queue_depth_max: self.sched_queue_depth_max.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Intended for tests and between independent
    /// runs in one process; concurrent updates may survive the reset.
    pub fn reset(&self) {
        self.nodes.store(0, Ordering::Relaxed);
        self.latency_prunes.store(0, Ordering::Relaxed);
        self.area_prunes.store(0, Ordering::Relaxed);
        self.memory_rejects.store(0, Ordering::Relaxed);
        self.dominance_prunes.store(0, Ordering::Relaxed);
        self.incumbent_bits.store(u64::MAX, Ordering::Relaxed);
        self.windows_feasible.store(0, Ordering::Relaxed);
        self.windows_infeasible.store(0, Ordering::Relaxed);
        self.windows_limit.store(0, Ordering::Relaxed);
        self.lp_pivots.store(0, Ordering::Relaxed);
        self.lp_devex_resets.store(0, Ordering::Relaxed);
        self.ilp_cuts.store(0, Ordering::Relaxed);
        self.checkpoint_writes.store(0, Ordering::Relaxed);
        self.checkpoint_last_us.store(u64::MAX, Ordering::Relaxed);
        self.jobs_claimed.store(0, Ordering::Relaxed);
        self.workers_active.store(0, Ordering::Relaxed);
        self.sched_jobs.store(0, Ordering::Relaxed);
        self.sched_batches.store(0, Ordering::Relaxed);
        self.sched_nested_batches.store(0, Ordering::Relaxed);
        self.sched_lost_jobs.store(0, Ordering::Relaxed);
        self.sched_local_pops.store(0, Ordering::Relaxed);
        self.sched_steals.store(0, Ordering::Relaxed);
        self.sched_idle_parks.store(0, Ordering::Relaxed);
        self.sched_queue_depth_max.store(0, Ordering::Relaxed);
    }
}

/// How a window solve ended, as the board counts them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOutcome {
    /// The window produced a feasible solution.
    Feasible,
    /// The window was proven infeasible.
    Infeasible,
    /// A node or wall-clock budget fired first.
    LimitReached,
}

static BOARD: StatusBoard = StatusBoard::new();

/// The process-global status board.
pub fn board() -> &'static StatusBoard {
    &BOARD
}

/// One point-in-time reading of the [`StatusBoard`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatusSnapshot {
    /// Trace-epoch timestamp of the read (µs).
    pub ts_us: u64,
    /// Search nodes explored.
    pub nodes: u64,
    /// Subtrees pruned by the latency lower bound.
    pub latency_prunes: u64,
    /// Subtrees pruned by the area look-ahead.
    pub area_prunes: u64,
    /// Assignments rejected by the memory constraint.
    pub memory_rejects: u64,
    /// Subtrees pruned by dominance memoization.
    pub dominance_prunes: u64,
    /// Best total latency found anywhere, if any solution exists yet.
    pub incumbent_latency_ns: Option<f64>,
    /// Windows that ended feasible.
    pub windows_feasible: u64,
    /// Windows proven infeasible.
    pub windows_infeasible: u64,
    /// Windows that hit a search budget.
    pub windows_limit: u64,
    /// Simplex pivots performed.
    pub lp_pivots: u64,
    /// Devex / steepest-edge pricing framework resets.
    pub lp_devex_resets: u64,
    /// Cutting planes generated by the MILP root separator.
    pub ilp_cuts: u64,
    /// Checkpoint writes attempted.
    pub checkpoint_writes: u64,
    /// Time since the last checkpoint write (µs), once one happened.
    pub checkpoint_age_us: Option<u64>,
    /// Intra-window subtree jobs claimed by parallel workers.
    pub jobs_claimed: u64,
    /// Worker threads currently inside a solve.
    pub workers_active: u64,
    /// Scheduler jobs executed (all batch kinds).
    pub sched_jobs: u64,
    /// Scheduler batches submitted.
    pub sched_batches: u64,
    /// Batches submitted from inside another job.
    pub sched_nested_batches: u64,
    /// Jobs abandoned after the scheduler's retry limit.
    pub sched_lost_jobs: u64,
    /// Jobs popped from the executing participant's own deque.
    pub sched_local_pops: u64,
    /// Jobs stolen from another participant's deque.
    pub sched_steals: u64,
    /// Timed idle parks.
    pub sched_idle_parks: u64,
    /// High-water mark of observed single-deque depth.
    pub sched_queue_depth_max: u64,
}

impl StatusSnapshot {
    /// Total windows completed, regardless of outcome.
    pub fn windows_done(&self) -> u64 {
        self.windows_feasible + self.windows_infeasible + self.windows_limit
    }

    /// Renders the snapshot as one JSON object (no trailing newline) —
    /// the heartbeat line format and the planned `rtrd` wire format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        let field = |out: &mut String, key: &str, value: String| {
            if out.len() > 1 {
                out.push(',');
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&value);
        };
        field(&mut out, "ts_us", self.ts_us.to_string());
        field(&mut out, "nodes", self.nodes.to_string());
        field(&mut out, "latency_prunes", self.latency_prunes.to_string());
        field(&mut out, "area_prunes", self.area_prunes.to_string());
        field(&mut out, "memory_rejects", self.memory_rejects.to_string());
        field(&mut out, "dominance_prunes", self.dominance_prunes.to_string());
        let incumbent = match self.incumbent_latency_ns {
            Some(v) => {
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            None => "null".to_owned(),
        };
        field(&mut out, "incumbent_latency_ns", incumbent);
        field(&mut out, "windows_done", self.windows_done().to_string());
        field(&mut out, "windows_feasible", self.windows_feasible.to_string());
        field(&mut out, "windows_infeasible", self.windows_infeasible.to_string());
        field(&mut out, "windows_limit", self.windows_limit.to_string());
        field(&mut out, "lp_pivots", self.lp_pivots.to_string());
        field(&mut out, "lp_devex_resets", self.lp_devex_resets.to_string());
        field(&mut out, "ilp_cuts", self.ilp_cuts.to_string());
        field(&mut out, "checkpoint_writes", self.checkpoint_writes.to_string());
        let age = match self.checkpoint_age_us {
            Some(v) => v.to_string(),
            None => "null".to_owned(),
        };
        field(&mut out, "checkpoint_age_us", age);
        field(&mut out, "jobs_claimed", self.jobs_claimed.to_string());
        field(&mut out, "workers_active", self.workers_active.to_string());
        field(&mut out, "sched_jobs", self.sched_jobs.to_string());
        field(&mut out, "sched_batches", self.sched_batches.to_string());
        field(&mut out, "sched_nested_batches", self.sched_nested_batches.to_string());
        field(&mut out, "sched_lost_jobs", self.sched_lost_jobs.to_string());
        field(&mut out, "sched_local_pops", self.sched_local_pops.to_string());
        field(&mut out, "sched_steals", self.sched_steals.to_string());
        field(&mut out, "sched_idle_parks", self.sched_idle_parks.to_string());
        field(&mut out, "sched_queue_depth_max", self.sched_queue_depth_max.to_string());
        out.push('}');
        out
    }
}

/// Why a [`StatusWriter`] could not be started.
#[derive(Debug)]
pub enum StatusError {
    /// The heartbeat interval was zero.
    ZeroInterval,
    /// The heartbeat file could not be created (missing parent directory,
    /// permissions, ...).
    Create(PathBuf, io::Error),
}

impl fmt::Display for StatusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatusError::ZeroInterval => {
                write!(f, "status heartbeat interval must be positive (got 0 ms)")
            }
            StatusError::Create(path, e) => {
                write!(f, "cannot create status file `{}`: {e}", path.display())
            }
        }
    }
}

impl std::error::Error for StatusError {}

struct WriterShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// A watcher thread appending one [`StatusSnapshot`] JSON line to a file
/// per interval. Each line is flushed as it is written, so the file stays
/// readable after SIGKILL; [`stop`](StatusWriter::stop) (or drop) writes
/// one final line and joins the thread.
pub struct StatusWriter {
    shared: Arc<WriterShared>,
    handle: Option<JoinHandle<()>>,
}

impl StatusWriter {
    /// Spawns the watcher, truncating the file at `path`.
    ///
    /// # Errors
    ///
    /// [`StatusError::ZeroInterval`] when `every` is zero;
    /// [`StatusError::Create`] when the file cannot be created (for
    /// example, a missing parent directory).
    pub fn spawn(path: impl AsRef<Path>, every: Duration) -> Result<StatusWriter, StatusError> {
        let path = path.as_ref().to_path_buf();
        if every.is_zero() {
            return Err(StatusError::ZeroInterval);
        }
        let mut file = File::create(&path).map_err(|e| StatusError::Create(path.clone(), e))?;
        let shared = Arc::new(WriterShared { stop: Mutex::new(false), wake: Condvar::new() });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rtr-status".to_owned())
            .spawn(move || {
                let write_line = |file: &mut File| {
                    let mut line = board().snapshot().to_json();
                    line.push('\n');
                    // A failed heartbeat must never disturb the solve.
                    let _ = file.write_all(line.as_bytes());
                    let _ = file.flush();
                };
                write_line(&mut file);
                let mut stopped = thread_shared.stop.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if *stopped {
                        break;
                    }
                    let (guard, _) = thread_shared
                        .wake
                        .wait_timeout(stopped, every)
                        .unwrap_or_else(PoisonError::into_inner);
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    drop(stopped);
                    write_line(&mut file);
                    stopped = thread_shared.stop.lock().unwrap_or_else(PoisonError::into_inner);
                }
                drop(stopped);
                // Final line so the file always ends with the run's last
                // known state.
                write_line(&mut file);
            })
            .map_err(|e| StatusError::Create(path, e))?;
        Ok(StatusWriter { shared, handle: Some(handle) })
    }

    /// Stops the watcher, writing one final snapshot line.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            *self.shared.stop.lock().unwrap_or_else(PoisonError::into_inner) = true;
            self.shared.wake.notify_all();
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for StatusWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StatusWriter").field("running", &self.handle.is_some()).finish()
    }
}

impl Drop for StatusWriter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The board is process-global; serialize tests that reset it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn snapshot_reflects_updates_and_resets() {
        let _g = GUARD.lock().unwrap();
        let b = board();
        b.reset();
        b.add_nodes(1024);
        b.add_prunes(3, 2, 1, 4);
        b.record_incumbent(1500.0);
        b.record_incumbent(1200.0);
        b.record_incumbent(1300.0); // worse; must not stick
        b.record_window(WindowOutcome::Feasible);
        b.record_window(WindowOutcome::LimitReached);
        b.add_lp_pivots(64);
        b.record_checkpoint_write();
        b.add_jobs_claimed(7);
        b.worker_started();
        let s = b.snapshot();
        assert_eq!(s.nodes, 1024);
        assert_eq!(s.latency_prunes, 3);
        assert_eq!(s.area_prunes, 2);
        assert_eq!(s.memory_rejects, 1);
        assert_eq!(s.dominance_prunes, 4);
        assert_eq!(s.incumbent_latency_ns, Some(1200.0));
        assert_eq!(s.windows_done(), 2);
        assert_eq!(s.windows_feasible, 1);
        assert_eq!(s.windows_limit, 1);
        assert_eq!(s.lp_pivots, 64);
        assert_eq!(s.checkpoint_writes, 1);
        assert!(s.checkpoint_age_us.is_some());
        assert_eq!(s.jobs_claimed, 7);
        assert_eq!(s.workers_active, 1);
        b.worker_stopped();
        b.reset();
        let s = b.snapshot();
        assert_eq!(s.nodes, 0);
        assert_eq!(s.incumbent_latency_ns, None);
        assert_eq!(s.checkpoint_age_us, None);
    }

    #[test]
    fn snapshot_json_is_parseable_and_complete() {
        let _g = GUARD.lock().unwrap();
        board().reset();
        board().add_nodes(5);
        board().record_incumbent(2048.0);
        let line = board().snapshot().to_json();
        let value = crate::parse_value(&line).expect("heartbeat line parses");
        let crate::JsonValue::Obj(fields) = value else { panic!("not an object: {line}") };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        assert!(matches!(get("nodes"), Some(crate::JsonValue::Num(v, _)) if *v == 5.0), "{line}");
        assert!(
            matches!(get("incumbent_latency_ns"), Some(crate::JsonValue::Num(v, true)) if *v == 2048.0),
            "incumbent must stay a float: {line}"
        );
        assert!(matches!(get("checkpoint_age_us"), Some(crate::JsonValue::Null)), "{line}");
        for key in [
            "ts_us",
            "windows_done",
            "lp_pivots",
            "lp_devex_resets",
            "ilp_cuts",
            "jobs_claimed",
            "workers_active",
            "sched_jobs",
            "sched_batches",
            "sched_nested_batches",
            "sched_lost_jobs",
            "sched_local_pops",
            "sched_steals",
            "sched_idle_parks",
            "sched_queue_depth_max",
        ] {
            assert!(get(key).is_some(), "missing {key}: {line}");
        }
    }

    #[test]
    fn writer_rejects_zero_interval_and_missing_parent() {
        let err = StatusWriter::spawn("/tmp/rtr_status_probe.jsonl", Duration::ZERO)
            .expect_err("zero interval must be rejected");
        assert!(matches!(err, StatusError::ZeroInterval), "{err}");
        assert!(err.to_string().contains("interval"), "{err}");

        let missing = std::env::temp_dir().join("rtr_status_no_such_dir").join("s.jsonl");
        let err = StatusWriter::spawn(&missing, Duration::from_millis(10))
            .expect_err("missing parent directory must be rejected");
        assert!(matches!(err, StatusError::Create(..)), "{err}");
        assert!(err.to_string().contains("cannot create status file"), "{err}");
    }

    #[test]
    fn writer_heartbeats_and_final_line_survive() {
        let _g = GUARD.lock().unwrap();
        board().reset();
        let path = std::env::temp_dir().join(format!("rtr_status_hb_{}.jsonl", std::process::id()));
        let writer = StatusWriter::spawn(&path, Duration::from_millis(5)).expect("spawn writer");
        board().add_nodes(42);
        std::thread::sleep(Duration::from_millis(30));
        writer.stop();
        let text = std::fs::read_to_string(&path).expect("heartbeat file");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        assert!(lines.len() >= 2, "expected several heartbeats, got {}", lines.len());
        for line in &lines {
            assert!(crate::parse_value(line).is_ok(), "unparseable heartbeat: {line}");
        }
        let last = lines.last().expect("non-empty");
        assert!(last.contains("\"nodes\":42"), "final line stale: {last}");
    }
}
