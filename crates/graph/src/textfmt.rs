//! A small, self-contained text format for task graphs.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! task <name> env_in=<units> env_out=<units>
//!   dp <name> area=<units> latency_ns=<f64>
//! edge <src_name> -> <dst_name> data=<units>
//! ```
//!
//! Task names containing whitespace are not supported; the builders used in
//! this workspace never produce them.

use crate::builder::TaskGraphBuilder;
use crate::error::GraphError;
use crate::graph::TaskGraph;
use crate::quantity::{Area, Latency};
use crate::task::DesignPoint;
use std::collections::HashMap;
use std::fmt::Write as _;

impl TaskGraph {
    /// Serializes the graph into the text format described in the module
    /// documentation.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for t in self.tasks() {
            let _ = writeln!(
                out,
                "task {} env_in={} env_out={}",
                t.name(),
                t.env_input(),
                t.env_output()
            );
            for dp in t.design_points() {
                let _ = write!(
                    out,
                    "  dp {} area={} latency_ns={}",
                    dp.name(),
                    dp.area().units(),
                    dp.latency().as_ns()
                );
                if !dp.secondary().is_empty() {
                    let list: Vec<String> = dp.secondary().iter().map(u64::to_string).collect();
                    let _ = write!(out, " secondary={}", list.join(","));
                }
                out.push('\n');
            }
        }
        for e in self.edges() {
            let _ = writeln!(
                out,
                "edge {} -> {} data={}",
                self.task(e.src()).name(),
                self.task(e.dst()).name(),
                e.data()
            );
        }
        out
    }

    /// Parses a graph from the text format produced by
    /// [`to_text`](Self::to_text).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Parse`] for malformed input, or any validation
    /// error of [`TaskGraphBuilder::build`].
    pub fn from_text(input: &str) -> Result<TaskGraph, GraphError> {
        let mut builder = TaskGraphBuilder::new();
        let mut ids = HashMap::new();
        // Pending task being assembled: (name, env_in, env_out, design points).
        let mut pending: Option<(String, u64, u64, Vec<DesignPoint>)> = None;
        let mut edges: Vec<(String, String, u64, usize)> = Vec::new();

        let flush =
            |builder: &mut TaskGraphBuilder,
             ids: &mut HashMap<String, crate::graph::TaskId>,
             pending: &mut Option<(String, u64, u64, Vec<DesignPoint>)>| {
                if let Some((name, env_in, env_out, dps)) = pending.take() {
                    let id = builder
                        .add_task(name.clone())
                        .design_points(dps)
                        .env_input(env_in)
                        .env_output(env_out)
                        .finish();
                    ids.insert(name, id);
                }
            };

        for (lineno, raw) in input.lines().enumerate() {
            let line = raw.trim();
            let lineno = lineno + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("task") => {
                    flush(&mut builder, &mut ids, &mut pending);
                    let name = words
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing task name"))?
                        .to_owned();
                    let env_in = parse_kv(words.next(), "env_in", lineno)?;
                    let env_out = parse_kv(words.next(), "env_out", lineno)?;
                    pending = Some((name, env_in, env_out, Vec::new()));
                }
                Some("dp") => {
                    let (_, _, _, dps) = pending
                        .as_mut()
                        .ok_or_else(|| parse_err(lineno, "dp line before any task"))?;
                    let name = words
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing design point name"))?;
                    let area: u64 = parse_kv(words.next(), "area", lineno)?;
                    let latency: f64 = parse_kv(words.next(), "latency_ns", lineno)?;
                    if !latency.is_finite() || latency < 0.0 {
                        return Err(parse_err(lineno, "latency must be finite and non-negative"));
                    }
                    let mut point =
                        DesignPoint::new(name, Area::new(area), Latency::from_ns(latency));
                    if let Some(word) = words.next() {
                        let list: String = parse_kv(Some(word), "secondary", lineno)?;
                        let secondary: Result<Vec<u64>, _> =
                            list.split(',').map(str::parse).collect();
                        let secondary = secondary.map_err(|_| {
                            parse_err(lineno, &format!("invalid `secondary` list `{list}`"))
                        })?;
                        point = point.with_secondary(secondary);
                    }
                    dps.push(point);
                }
                Some("edge") => {
                    let src = words
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing edge source"))?
                        .to_owned();
                    match words.next() {
                        Some("->") => {}
                        _ => return Err(parse_err(lineno, "expected `->`")),
                    }
                    let dst = words
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing edge destination"))?
                        .to_owned();
                    let data: u64 = parse_kv(words.next(), "data", lineno)?;
                    edges.push((src, dst, data, lineno));
                }
                Some(other) => {
                    return Err(parse_err(lineno, &format!("unknown directive `{other}`")));
                }
                // Blank lines were skipped above, so the first token is
                // always present; tolerate the impossible case anyway.
                None => continue,
            }
        }
        flush(&mut builder, &mut ids, &mut pending);

        for (src, dst, data, lineno) in edges {
            let &s =
                ids.get(&src).ok_or_else(|| parse_err(lineno, &format!("unknown task `{src}`")))?;
            let &d =
                ids.get(&dst).ok_or_else(|| parse_err(lineno, &format!("unknown task `{dst}`")))?;
            builder.add_edge(s, d, data)?;
        }
        builder.build()
    }
}

fn parse_err(line: usize, message: &str) -> GraphError {
    GraphError::Parse { line, message: message.to_owned() }
}

fn parse_kv<T: std::str::FromStr>(
    word: Option<&str>,
    key: &str,
    lineno: usize,
) -> Result<T, GraphError> {
    let word = word.ok_or_else(|| parse_err(lineno, &format!("missing `{key}=`")))?;
    let value = word
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| parse_err(lineno, &format!("expected `{key}=<value>`, got `{word}`")))?;
    value.parse().map_err(|_| parse_err(lineno, &format!("invalid value for `{key}`: `{value}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b
            .add_task("a")
            .design_point(DesignPoint::new("s", Area::new(10), Latency::from_ns(100.0)))
            .design_point(DesignPoint::new("f", Area::new(25), Latency::from_ns(40.5)))
            .env_input(4)
            .finish();
        let c = b
            .add_task("c")
            .design_point(DesignPoint::new("only", Area::new(12), Latency::from_ns(55.0)))
            .env_output(1)
            .finish();
        b.add_edge(a, c, 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn secondary_resources_round_trip() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("dsp")
            .design_point(
                DesignPoint::new("m", Area::new(10), Latency::from_ns(5.0))
                    .with_secondary(vec![3, 0, 1]),
            )
            .finish();
        let g = b.build().unwrap();
        let text = g.to_text();
        assert!(text.contains("secondary=3,0,1"));
        assert_eq!(TaskGraph::from_text(&text).unwrap(), g);
    }

    #[test]
    fn bad_secondary_list_is_an_error() {
        let text = "task a env_in=0 env_out=0\n dp m area=1 latency_ns=1 secondary=1,x\n";
        assert!(matches!(TaskGraph::from_text(text), Err(GraphError::Parse { line: 2, .. })));
    }

    #[test]
    fn round_trip() {
        let g = sample();
        let text = g.to_text();
        let parsed = TaskGraph::from_text(&text).unwrap();
        assert_eq!(g, parsed);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\ntask a env_in=0 env_out=0\n  dp m area=1 latency_ns=2\n\n";
        let g = TaskGraph::from_text(text).unwrap();
        assert_eq!(g.task_count(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "task a env_in=0 env_out=0\n  dp m area=x latency_ns=2\n";
        match TaskGraph::from_text(text) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn dp_before_task_is_an_error() {
        assert!(matches!(
            TaskGraph::from_text("dp m area=1 latency_ns=1\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn edge_with_unknown_task_is_an_error() {
        let text = "task a env_in=0 env_out=0\n dp m area=1 latency_ns=1\nedge a -> ghost data=1\n";
        assert!(matches!(TaskGraph::from_text(text), Err(GraphError::Parse { line: 3, .. })));
    }

    #[test]
    fn malformed_arrow_is_an_error() {
        let text = "task a env_in=0 env_out=0\n dp m area=1 latency_ns=1\nedge a => a data=1\n";
        assert!(matches!(TaskGraph::from_text(text), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn negative_latency_rejected() {
        let text = "task a env_in=0 env_out=0\n dp m area=1 latency_ns=-5\n";
        assert!(matches!(TaskGraph::from_text(text), Err(GraphError::Parse { line: 2, .. })));
    }
}
