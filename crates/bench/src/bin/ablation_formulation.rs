//! Ablation over the ILP formulation choices recorded in DESIGN.md:
//!
//! * loose vs. tight `w` linearization (the extra `w ≤ …` cuts);
//! * the `D_min` lower-bound cut (10) on vs. off;
//! * greedy α/γ seeding vs. α = γ = 0.
//!
//! `cargo run --release -p rtr-bench --bin ablation_formulation`

use rtr_bench::BenchRun;
use rtr_core::baseline::suggest_relaxations;
use rtr_core::model::{IlpModel, ModelOptions};
use rtr_core::{Architecture, Backend, ExploreParams, TemporalPartitioner};
use rtr_graph::{Area, Latency};
use rtr_milp::SolveOptions;
use rtr_workloads::random::{random_layered, RandomGraphParams};
use std::time::Instant;

fn main() {
    // Part 1: linearization tightness and the D_min cut, on a corpus of
    // seeded random instances solved by the faithful ILP backend.
    println!("== ILP formulation variants (feasibility solves, 8 random 6-task instances) ==");
    println!("{:>26} {:>10} {:>12} {:>12}", "variant", "rows", "B&B nodes", "time");
    let variants: [(&str, ModelOptions); 3] = [
        ("loose w, with Dmin cut", ModelOptions::default()),
        (
            "tight w, with Dmin cut",
            ModelOptions { tight_linearization: true, ..Default::default() },
        ),
        ("loose w, no Dmin cut", ModelOptions { include_dmin_cut: false, ..Default::default() }),
    ];
    let mut bench = BenchRun::new("ablation_formulation");
    let slugs = ["loose_w_dmin", "tight_w_dmin", "loose_w_no_dmin"];
    for ((name, options), slug) in variants.iter().zip(slugs) {
        let mut rows = 0usize;
        let mut nodes = 0usize;
        let start = Instant::now();
        for seed in 0..8u64 {
            let g = random_layered(seed, &RandomGraphParams { tasks: 6, ..Default::default() });
            let arch = Architecture::new(Area::new(300), 64, Latency::from_us(1.0));
            let n = 3;
            let d_max = rtr_core::max_latency(&g, &arch, n);
            let mid = Latency::from_ns(
                (d_max.as_ns() + rtr_core::min_latency(&g, &arch, n).as_ns()) / 2.0,
            );
            let ilp =
                IlpModel::build(&g, &arch, n, mid, Latency::ZERO, options).expect("model builds");
            rows += ilp.model().constraint_count();
            let out = ilp.model().solve(&SolveOptions::feasibility()).expect("solves");
            nodes += out.stats.nodes;
        }
        println!(
            "{:>26} {:>10} {:>12} {:>12}",
            name,
            rows,
            nodes,
            format!("{:.2?}", start.elapsed())
        );
        bench.counter(format!("{slug}.rows"), rows as u64);
        bench.counter(format!("{slug}.nodes"), nodes as u64);
        bench.metric(format!("{slug}.elapsed_ms"), start.elapsed().as_secs_f64() * 1e3);
    }

    // Part 2: greedy α/γ seeding on the DCT (paper §3.2.2).
    println!("\n== α/γ seeding on the DCT (R_max = 576) ==");
    let g = rtr_workloads::dct::dct_4x4();
    let arch = Architecture::new(Area::new(576), 512, Latency::from_us(1.0));
    let (alpha, gamma) = suggest_relaxations(&g, &arch);
    println!(
        "greedy suggests α = {alpha}, γ = {gamma} (N_min^l = {}, N_min^u = {})",
        rtr_core::min_area_partitions(&g, &arch),
        rtr_core::max_area_partitions(&g, &arch)
    );
    for (name, slug, a, c) in
        [("α = γ = 0", "unseeded", 0, 0), ("greedy-seeded", "seeded", alpha, gamma)]
    {
        let params = ExploreParams {
            delta: Latency::from_ns(400.0),
            alpha: a,
            gamma: c,
            backend: Backend::Structured,
            limits: rtr_bench::per_solve_limits(),
            ..Default::default()
        };
        let part = TemporalPartitioner::new(&g, &arch, params).expect("tasks fit");
        let start = Instant::now();
        let ex = part.explore().expect("exploration runs");
        let elapsed = start.elapsed();
        println!(
            "{:>14}: D_a = {:?} ns, {} solves, {:.2?}",
            name,
            ex.best_latency.map(|l| l.as_ns()),
            ex.records.len(),
            elapsed
        );
        bench.record_exploration(&format!("{slug}."), &ex);
        bench.metric(format!("{slug}.elapsed_ms"), elapsed.as_secs_f64() * 1e3);
    }
    bench.write_and_report();
}
