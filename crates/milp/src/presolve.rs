//! Presolve: bound propagation and redundant-row elimination.
//!
//! The reductions keep the variable set (and indexing) intact, so a
//! solution of the reduced model is a solution of the original:
//!
//! * **activity-based bound tightening** — for every row, the minimum and
//!   maximum activity of all-but-one variable imply bounds on the
//!   remaining one; integer bounds are then rounded inward;
//! * **redundant-row removal** — a row whose worst-case activity already
//!   satisfies it is dropped;
//! * **infeasibility detection** — a row whose best-case activity violates
//!   it proves the model infeasible.
//!
//! Rounds repeat until a fixpoint (or a small cap).

use crate::model::{effective_bounds, Constraint, Model, Rel, VarKind};

/// Statistics of a presolve run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Number of variable bounds strengthened.
    pub tightened_bounds: usize,
    /// Number of constraints removed as redundant.
    pub removed_rows: usize,
    /// Propagation rounds performed.
    pub rounds: usize,
}

/// Result of presolving a model.
#[derive(Debug, Clone)]
pub enum PresolveOutcome {
    /// The reduced model (same variables, tightened bounds, fewer rows).
    Reduced(Model, PresolveStats),
    /// The constraints are provably inconsistent.
    Infeasible,
}

/// Presolves `model`. See the module docs for the reductions applied.
pub fn presolve(model: &Model) -> PresolveOutcome {
    let mut m = model.clone();
    let mut stats = PresolveStats::default();
    const MAX_ROUNDS: usize = 8;
    const TOL: f64 = 1e-9;

    // Effective (integrality-rounded) bounds, maintained locally.
    let mut lb: Vec<f64> = Vec::with_capacity(m.vars.len());
    let mut ub: Vec<f64> = Vec::with_capacity(m.vars.len());
    for v in &m.vars {
        let (lo, hi) = effective_bounds(v);
        if matches!(v.kind, VarKind::Integer | VarKind::Binary) {
            lb.push(lo.ceil());
            ub.push(hi.floor());
        } else {
            lb.push(lo);
            ub.push(hi);
        }
    }

    let mut normalized: Vec<Vec<(usize, f64)>> = m
        .constraints
        .iter()
        .map(|c| c.expr.normalized().into_iter().map(|(v, coef)| (v.index(), coef)).collect())
        .collect();
    let mut alive: Vec<bool> = vec![true; m.constraints.len()];

    for round in 0..MAX_ROUNDS {
        let mut changed = false;
        for (ci, c) in m.constraints.iter().enumerate() {
            if !alive[ci] {
                continue;
            }
            let terms = &normalized[ci];
            // Row activity bounds.
            let mut act_min = 0.0f64;
            let mut act_max = 0.0f64;
            for &(j, coef) in terms {
                if coef > 0.0 {
                    act_min += coef * lb[j];
                    act_max += coef * ub[j];
                } else {
                    act_min += coef * ub[j];
                    act_max += coef * lb[j];
                }
            }

            // Infeasibility / redundancy.
            match c.rel {
                Rel::Le => {
                    if act_min > c.rhs + TOL.max(1e-7 * c.rhs.abs()) {
                        return PresolveOutcome::Infeasible;
                    }
                    if act_max <= c.rhs + TOL {
                        alive[ci] = false;
                        stats.removed_rows += 1;
                        changed = true;
                        continue;
                    }
                }
                Rel::Ge => {
                    if act_max < c.rhs - TOL.max(1e-7 * c.rhs.abs()) {
                        return PresolveOutcome::Infeasible;
                    }
                    if act_min >= c.rhs - TOL {
                        alive[ci] = false;
                        stats.removed_rows += 1;
                        changed = true;
                        continue;
                    }
                }
                Rel::Eq => {
                    if act_min > c.rhs + TOL || act_max < c.rhs - TOL {
                        return PresolveOutcome::Infeasible;
                    }
                }
            }

            // Bound tightening: treat Le/Eq as `expr <= rhs` and Ge/Eq as
            // `expr >= rhs`, propagating onto each variable.
            if act_min.is_finite() && matches!(c.rel, Rel::Le | Rel::Eq) {
                for &(j, coef) in terms {
                    // Residual minimum activity excluding j.
                    let own_min = if coef > 0.0 { coef * lb[j] } else { coef * ub[j] };
                    let residual = act_min - own_min;
                    if coef > 0.0 {
                        let implied = (c.rhs - residual) / coef;
                        let implied = round_for(&m, j, implied, true);
                        if implied < ub[j] - TOL {
                            ub[j] = implied;
                            stats.tightened_bounds += 1;
                            changed = true;
                        }
                    } else {
                        let implied = (c.rhs - residual) / coef;
                        let implied = round_for(&m, j, implied, false);
                        if implied > lb[j] + TOL {
                            lb[j] = implied;
                            stats.tightened_bounds += 1;
                            changed = true;
                        }
                    }
                    if lb[j] > ub[j] + TOL {
                        return PresolveOutcome::Infeasible;
                    }
                }
            }
            if act_max.is_finite() && matches!(c.rel, Rel::Ge | Rel::Eq) {
                for &(j, coef) in terms {
                    let own_max = if coef > 0.0 { coef * ub[j] } else { coef * lb[j] };
                    let residual = act_max - own_max;
                    if coef > 0.0 {
                        let implied = (c.rhs - residual) / coef;
                        let implied = round_for(&m, j, implied, false);
                        if implied > lb[j] + TOL {
                            lb[j] = implied;
                            stats.tightened_bounds += 1;
                            changed = true;
                        }
                    } else {
                        let implied = (c.rhs - residual) / coef;
                        let implied = round_for(&m, j, implied, true);
                        if implied < ub[j] - TOL {
                            ub[j] = implied;
                            stats.tightened_bounds += 1;
                            changed = true;
                        }
                    }
                    if lb[j] > ub[j] + TOL {
                        return PresolveOutcome::Infeasible;
                    }
                }
            }
        }
        stats.rounds = round + 1;
        if !changed {
            break;
        }
    }

    // Write back bounds and surviving rows.
    for (j, v) in m.vars.iter_mut().enumerate() {
        v.lower = lb[j];
        v.upper = ub[j];
    }
    let survivors: Vec<Constraint> =
        m.constraints.iter().zip(&alive).filter(|(_, &a)| a).map(|(c, _)| c.clone()).collect();
    let _ = std::mem::take(&mut normalized);
    m.constraints = survivors;
    PresolveOutcome::Reduced(m, stats)
}

/// Rounds an implied bound inward for integer variables.
fn round_for(model: &Model, var: usize, value: f64, is_upper: bool) -> f64 {
    match model.vars[var].kind {
        VarKind::Integer | VarKind::Binary => {
            if is_upper {
                (value + 1e-9).floor()
            } else {
                (value - 1e-9).ceil()
            }
        }
        VarKind::Continuous => value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Variable};
    use crate::solution::SolveOptions;

    #[test]
    fn singleton_row_tightens_bound() {
        // 2x <= 5 with x integer in [0, 10] -> x <= 2, row becomes redundant.
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 10.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (2.0, x), Rel::Le, 5.0));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, stats) => {
                assert_eq!(r.vars()[0].upper(), 2.0);
                assert!(stats.tightened_bounds >= 1);
                assert_eq!(r.constraint_count(), 0, "tightened row is redundant");
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn detects_infeasible_row() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let y = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Ge, 3.0));
        assert!(matches!(presolve(&m), PresolveOutcome::Infeasible));
    }

    #[test]
    fn removes_redundant_rows() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let y = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 5.0));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, stats) => {
                assert_eq!(r.constraint_count(), 0);
                assert_eq!(stats.removed_rows, 1);
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn propagation_chains_across_rounds() {
        // x <= 3; y <= x - 1 (as y - x <= -1); z <= y (z - y <= 0):
        // bounds cascade to y <= 2, z <= 2.
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 100.0));
        let y = m.add_var(Variable::integer(0.0, 100.0));
        let z = m.add_var(Variable::integer(0.0, 100.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 3.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y) + (-1.0, x), Rel::Le, -1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, z) + (-1.0, y), Rel::Le, 0.0));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, stats) => {
                assert_eq!(r.vars()[0].upper(), 3.0);
                assert_eq!(r.vars()[1].upper(), 2.0);
                assert_eq!(r.vars()[2].upper(), 2.0);
                assert!(stats.rounds >= 2);
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn preserves_solutions() {
        // Presolved and raw models give the same optimum on a knapsack.
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|_| m.add_var(Variable::binary())).collect();
        let weights = [3.0, 5.0, 7.0, 2.0, 4.0, 6.0];
        let values = [4.0, 6.0, 9.0, 2.0, 5.0, 7.0];
        m.add_constraint(Constraint::new(
            vars.iter().zip(weights).map(|(&v, w)| (w, v)).collect(),
            Rel::Le,
            12.0,
        ));
        m.maximize(vars.iter().zip(values).map(|(&v, c)| (c, v)).collect());
        let raw = m.solve(&SolveOptions::optimal()).unwrap();
        let reduced = match presolve(&m) {
            PresolveOutcome::Reduced(r, _) => r,
            PresolveOutcome::Infeasible => panic!("feasible model"),
        };
        let pre = reduced.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(raw.solution.unwrap().objective, pre.solution.unwrap().objective);
    }

    #[test]
    fn ge_rows_raise_lower_bounds() {
        // x + y >= 1.5 with y <= 0.3 -> x >= 1.2.
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 10.0));
        let y = m.add_var(Variable::continuous(0.0, 0.3));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Ge, 1.5));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, _) => {
                assert!((r.vars()[0].lower() - 1.2).abs() < 1e-9);
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }
}
