//! Randomized tests: the MILP solver against exhaustive enumeration on
//! seeded random small 0-1 programs. Deterministic (xorshift streams), so
//! any failure reproduces exactly.

use rtr_milp::{Constraint, LinExpr, Model, Rel, SolveOptions, Status, Variable};

const CASES: u64 = 300;

#[derive(Debug, Clone)]
struct RandomIp {
    vars: usize,
    objective: Vec<f64>,
    // (coefficients, rel, rhs)
    constraints: Vec<(Vec<f64>, Rel, f64)>,
    maximize: bool,
}

/// A deterministic xorshift64 stream.
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

fn random_ip(salt: u64, case: u64) -> RandomIp {
    let mut next = stream(salt.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(case));
    let vars = (next() % 5 + 2) as usize; // 2..7
    let cons = (next() % 4 + 1) as usize; // 1..5
    let maximize = next().is_multiple_of(2);
    // Coefficients in -6..=6, right-hand sides in -4..=9, as the proptest
    // ranges this replaces used.
    let objective = (0..vars).map(|_| (next() % 13) as f64 - 6.0).collect();
    let constraints = (0..cons)
        .map(|_| {
            let row = (0..vars).map(|_| (next() % 13) as f64 - 6.0).collect();
            let rel = if next().is_multiple_of(2) { Rel::Le } else { Rel::Ge };
            let rhs = (next() % 14) as f64 - 4.0;
            (row, rel, rhs)
        })
        .collect();
    RandomIp { vars, objective, constraints, maximize }
}

fn brute_force(ip: &RandomIp) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << ip.vars) {
        let x: Vec<f64> =
            (0..ip.vars).map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 }).collect();
        let ok = ip.constraints.iter().all(|(row, rel, rhs)| {
            let lhs: f64 = row.iter().zip(&x).map(|(c, v)| c * v).sum();
            match rel {
                Rel::Le => lhs <= *rhs + 1e-9,
                Rel::Ge => lhs >= *rhs - 1e-9,
                Rel::Eq => (lhs - rhs).abs() <= 1e-9,
            }
        });
        if ok {
            let obj: f64 = ip.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
            best = Some(match best {
                None => obj,
                Some(b) if ip.maximize => b.max(obj),
                Some(b) => b.min(obj),
            });
        }
    }
    best
}

fn build_model(ip: &RandomIp) -> (Model, Vec<rtr_milp::VarId>) {
    let mut m = Model::new();
    let vars: Vec<_> = (0..ip.vars).map(|_| m.add_var(Variable::binary())).collect();
    for (row, rel, rhs) in &ip.constraints {
        let expr: LinExpr = vars.iter().zip(row).map(|(&v, &c)| (c, v)).collect();
        m.add_constraint(Constraint::new(expr, *rel, *rhs));
    }
    let obj: LinExpr = vars.iter().zip(&ip.objective).map(|(&v, &c)| (c, v)).collect();
    if ip.maximize {
        m.maximize(obj);
    } else {
        m.minimize(obj);
    }
    (m, vars)
}

/// Optimality mode matches exhaustive enumeration exactly.
#[test]
fn optimal_matches_brute_force() {
    for case in 0..CASES {
        let ip = random_ip(1, case);
        let (model, _) = build_model(&ip);
        let out = model.solve(&SolveOptions::optimal()).unwrap();
        match brute_force(&ip) {
            Some(best) => {
                assert_eq!(out.status, Status::Optimal, "case {case}: {ip:?}");
                let got = out.solution.as_ref().unwrap().objective;
                assert!(
                    (got - best).abs() < 1e-6,
                    "case {case}: milp {got} vs brute {best}: {ip:?}"
                );
                // The returned point itself must be feasible.
                assert!(model.is_feasible_point(&out.solution.unwrap().values, 1e-6));
            }
            None => assert_eq!(out.status, Status::Infeasible, "case {case}: {ip:?}"),
        }
    }
}

/// Feasibility mode agrees with enumeration on feasibility and returns
/// a genuinely feasible point.
#[test]
fn feasibility_matches_brute_force() {
    for case in 0..CASES {
        let ip = random_ip(2, case);
        let (model, _) = build_model(&ip);
        let out = model.solve(&SolveOptions::feasibility()).unwrap();
        match brute_force(&ip) {
            Some(_) => {
                assert!(out.status.has_solution(), "case {case}: status {:?}", out.status);
                assert!(model.is_feasible_point(&out.solution.unwrap().values, 1e-6));
            }
            None => assert_eq!(out.status, Status::Infeasible, "case {case}: {ip:?}"),
        }
    }
}

/// Presolve preserves the feasible set: the presolved model has exactly
/// the same optimum (or infeasibility) as the raw model.
#[test]
fn presolve_preserves_the_optimum() {
    use rtr_milp::{presolve, PresolveOutcome};
    for case in 0..CASES {
        let ip = random_ip(3, case);
        let (model, _) = build_model(&ip);
        let brute = brute_force(&ip);
        match presolve(&model) {
            PresolveOutcome::Infeasible => assert!(brute.is_none(), "case {case}: {ip:?}"),
            PresolveOutcome::Reduced(reduced, _) => {
                assert!(reduced.constraint_count() <= model.constraint_count());
                let out = reduced.solve(&SolveOptions::optimal()).unwrap();
                match brute {
                    Some(best) => {
                        assert_eq!(out.status, Status::Optimal, "case {case}: {ip:?}");
                        let got = out.solution.unwrap().objective;
                        assert!(
                            (got - best).abs() < 1e-6,
                            "case {case}: presolved {got} vs brute {best}: {ip:?}"
                        );
                    }
                    None => assert_eq!(out.status, Status::Infeasible, "case {case}: {ip:?}"),
                }
            }
        }
    }
}

/// The LP relaxation's optimum bounds the integer optimum from the
/// right side (weak duality of the relaxation).
#[test]
fn lp_relaxation_bounds_ip() {
    for case in 0..CASES {
        let ip = random_ip(4, case);
        let (model, _) = build_model(&ip);
        let lp = rtr_milp::solve_lp(&model, None, 1e-7, 0).unwrap();
        let out = model.solve(&SolveOptions::optimal()).unwrap();
        if lp.status == rtr_milp::LpStatus::Optimal && out.status == Status::Optimal {
            let ip_obj = out.solution.unwrap().objective;
            if ip.maximize {
                assert!(lp.objective >= ip_obj - 1e-6, "case {case}: {ip:?}");
            } else {
                assert!(lp.objective <= ip_obj + 1e-6, "case {case}: {ip:?}");
            }
        }
    }
}
