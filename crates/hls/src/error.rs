//! Error type for HLS estimation.

use std::error::Error;
use std::fmt;

/// An error raised while building or synthesizing a behavioral task.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HlsError {
    /// The behavioral task has no operations.
    EmptyTask {
        /// Task name.
        task: String,
    },
    /// An operation referenced a dependency that does not exist yet
    /// (operations must be added in dataflow order).
    UnknownDependency {
        /// Task name.
        task: String,
        /// Raw index of the unknown operation.
        index: usize,
    },
    /// An operation was declared with a zero bit width.
    ZeroWidth {
        /// Task name.
        task: String,
    },
    /// Allocation enumeration was asked for zero functional units of a kind
    /// the task uses.
    EmptyAllocation {
        /// The operation kind with no functional units.
        kind: String,
    },
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::EmptyTask { task } => write!(f, "behavioral task `{task}` has no operations"),
            HlsError::UnknownDependency { task, index } => {
                write!(f, "task `{task}` references unknown operation {index}")
            }
            HlsError::ZeroWidth { task } => {
                write!(f, "task `{task}` has an operation with zero bit width")
            }
            HlsError::EmptyAllocation { kind } => {
                write!(f, "allocation provides no functional unit for `{kind}` operations")
            }
        }
    }
}

impl Error for HlsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            HlsError::EmptyTask { task: "t".into() }.to_string(),
            "behavioral task `t` has no operations"
        );
    }
}
