//! Differential harness for the *intra-window* parallel search
//! ([`StructuredSolver::run_parallel`] and `ExploreParams::solver_threads`):
//! splitting one branch-and-bound tree across worker threads must be
//! *bit-identical* to the sequential search — same `SearchOutcome`, same
//! `Solution`, same exploration CSV — for every thread count. Dominance
//! memoization rides the same contract: toggling it may only change node
//! counts, never results.
//!
//! All cases use node-limit-only `SearchLimits` with enough headroom that no
//! limit fires: a *fired* limit under parallel search is best-effort by
//! design (which nodes the global budget covers depends on scheduling),
//! exactly like wall-clock deadlines on the sequential path.

use rtrpart::core::structured::StructuredSolver;
use rtrpart::core::SearchGoal;
use rtrpart::graph::{Area, Latency};
use rtrpart::workloads::dct::dct_4x4;
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::workloads::rng::Rng;
use rtrpart::{validate_solution, Architecture, ExploreParams, SearchLimits, TemporalPartitioner};

const CASES: u64 = 24;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Instance {
    seed: u64,
    gp: RandomGraphParams,
    cap: u64,
    mem: u64,
    ct: f64,
}

/// One deterministic random instance per case index (same scheme as
/// `tests/parallel_determinism.rs`; the salt decorrelates the streams).
fn instance(salt: u64, case: u64) -> Instance {
    let mut r = Rng::new(salt.wrapping_mul(0x9e37_79b9).wrapping_add(case));
    Instance {
        seed: r.next_u64(),
        gp: RandomGraphParams {
            tasks: r.range_usize(2, 9),
            max_layer_width: r.range_usize(1, 3),
            design_points: (1, 3),
            area_range: (20, 60),
            latency_range: (50.0, 600.0),
            data_range: (1, 3),
            ..Default::default()
        },
        cap: r.range_u64(60, 239),
        mem: r.range_u64(8, 63),
        ct: r.range_f64(10.0, 100_000.0),
    }
}

/// Deterministic exploration parameters: node limit only, no deadlines.
fn deterministic_params(solver_threads: usize) -> ExploreParams {
    ExploreParams {
        delta: Latency::from_ns(100.0),
        gamma: 2,
        limits: SearchLimits { node_limit: 300_000, time_limit: None },
        time_budget: None,
        solver_threads,
        ..Default::default()
    }
}

#[test]
fn intra_window_exploration_is_bit_identical_across_thread_counts() {
    let mut feasible = 0u64;
    for case in 0..CASES {
        let inst = instance(21, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let Ok(part) = TemporalPartitioner::new(&g, &arch, deterministic_params(1)) else {
            continue;
        };
        let sequential = part.explore().unwrap();
        let reference_csv = sequential.to_csv();
        feasible += u64::from(sequential.best.is_some());
        for threads in THREAD_COUNTS {
            let part = TemporalPartitioner::new(&g, &arch, deterministic_params(threads)).unwrap();
            let parallel = part.explore().unwrap();
            assert_eq!(
                parallel.to_csv(),
                reference_csv,
                "case {case}: CSV diverged at {threads} solver threads"
            );
            assert_eq!(
                parallel.best, sequential.best,
                "case {case}: chosen solution diverged at {threads} solver threads"
            );
            assert_eq!(parallel.best_latency, sequential.best_latency, "case {case}");
            if let Some(best) = &parallel.best {
                assert!(validate_solution(&g, &arch, best).is_empty(), "case {case}");
            }
        }
    }
    // The matrix is only meaningful if a healthy share of cases is feasible.
    assert!(feasible >= CASES / 2, "only {feasible}/{CASES} cases feasible");
}

/// `solver_threads: 0` resolves a machine-dependent worker count (this is
/// what the CI `RTR_THREADS` matrix exercises), but the result must still
/// match the sequential exploration exactly.
#[test]
fn auto_solver_thread_count_matches_sequential() {
    for case in 0..8 {
        let inst = instance(22, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let Ok(part) = TemporalPartitioner::new(&g, &arch, deterministic_params(1)) else {
            continue;
        };
        let sequential = part.explore().unwrap();
        let auto = TemporalPartitioner::new(&g, &arch, deterministic_params(0))
            .unwrap()
            .explore()
            .unwrap();
        assert_eq!(auto.to_csv(), sequential.to_csv(), "case {case}");
        assert_eq!(auto.best, sequential.best, "case {case}");
    }
}

/// Both layers of parallelism composed: candidate fan-out *and* intra-window
/// subtree workers, still bit-identical to the fully sequential exploration.
#[test]
fn nested_parallelism_matches_sequential() {
    for case in 0..8 {
        let inst = instance(21, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let Ok(part) = TemporalPartitioner::new(&g, &arch, deterministic_params(1)) else {
            continue;
        };
        let sequential = part.explore().unwrap();
        let nested = TemporalPartitioner::new(&g, &arch, deterministic_params(4))
            .unwrap()
            .explore_parallel(4)
            .unwrap();
        assert_eq!(nested.to_csv(), sequential.to_csv(), "case {case}");
        assert_eq!(nested.best, sequential.best, "case {case}");
    }
}

/// One real optimality window on the paper's 32-task DCT: a relaxed device
/// (the search must *decide* the window, or parallel limit handling is
/// legitimately best-effort) solved to the proven optimum at every thread
/// count.
#[test]
fn dct_window_solve_is_bit_identical_across_thread_counts() {
    let g = dct_4x4();
    // Generous area so N = 2 is decidable quickly; μs-scale reconfiguration.
    let arch = Architecture::new(Area::new(2048), 512, Latency::from_us(1.0));
    let limits = SearchLimits { node_limit: 50_000_000, time_limit: None };
    let solver = StructuredSolver::new(&g, &arch, 2, 1e12, SearchGoal::Optimal, limits);
    let (sequential, seq_stats) = solver.run();
    assert!(seq_stats.exhausted, "the relaxed DCT window must be decidable");
    for threads in THREAD_COUNTS {
        let (parallel, par_stats) = solver.run_parallel(threads);
        assert!(par_stats.exhausted, "{threads} threads did not exhaust");
        assert_eq!(parallel, sequential, "DCT window diverged at {threads} threads");
    }
}

/// Fault injection on the intra-window `search.job` site is deterministic
/// *run-to-run at a fixed worker count*: the job frontier depends on how
/// many workers it has to feed, so (unlike the exploration-level sites) the
/// degradation is not comparable across counts — but at the same count, two
/// runs with the same `RTR_FAILPOINTS` seed must agree byte-for-byte on the
/// CSV, the solution summary, and the degradation report. Subprocess-based
/// for the same reason as the matrix test in `tests/parallel_determinism.rs`:
/// the registry is process-global and the env path needs coverage.
#[test]
fn search_job_faults_are_deterministic_run_to_run() {
    let bin = env!("CARGO_BIN_EXE_rtrpart");
    let dir = std::env::temp_dir().join(format!("rtr_fi_job_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let mut degraded = 0u64;
    for case in 0..4u64 {
        let inst = instance(21, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        if TemporalPartitioner::new(&g, &arch, deterministic_params(1)).is_err() {
            continue;
        }
        let graph = dir.join(format!("case{case}.tg"));
        std::fs::write(&graph, g.to_text()).expect("write graph");

        // `--threads` drives `solver_threads` in the binary, so > 1 puts
        // every window on the parallel path where `search.job` lives.
        for threads in [2usize, 4] {
            let run = |tag: &str| {
                let csv = dir.join(format!("case{case}_t{threads}_{tag}.csv"));
                let out = std::process::Command::new(bin)
                    .env("RTR_FAILPOINTS", "2:0.5:search.job")
                    .args([
                        "partition",
                        "--graph",
                        graph.to_str().unwrap(),
                        "--rmax",
                        &inst.cap.to_string(),
                        "--mmax",
                        &inst.mem.to_string(),
                        "--ct",
                        &format!("{}ns", inst.ct),
                        "--delta",
                        "100ns",
                        "--gamma",
                        "2",
                        "--solve-nodes",
                        "300000",
                        "--threads",
                        &threads.to_string(),
                        "--quiet",
                        "--csv",
                        csv.to_str().unwrap(),
                    ])
                    .output()
                    .expect("spawn rtrpart");
                assert!(
                    out.status.success(),
                    "case {case} at {threads} threads failed: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                (std::fs::read(&csv).expect("csv written"), out.stdout, out.stderr)
            };
            let first = run("a");
            let second = run("b");
            degraded += u64::from(!first.2.is_empty());
            assert_eq!(
                first, second,
                "case {case} at {threads} threads: two identically-seeded runs diverged"
            );
        }
    }
    assert!(degraded > 0, "no run tripped `search.job`; the harness is dead");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Dominance memoization must change node counts only — same CSV, same
/// solution, and (in aggregate over the matrix) strictly fewer nodes.
#[test]
fn dominance_memoization_preserves_results_and_prunes() {
    let mut nodes_on = 0u64;
    let mut nodes_off = 0u64;
    let mut prunes = 0u64;
    for case in 0..CASES {
        let inst = instance(23, case);
        let g = random_layered(inst.seed, &inst.gp);
        let arch = Architecture::new(Area::new(inst.cap), inst.mem, Latency::from_ns(inst.ct));
        let Ok(part) = TemporalPartitioner::new(&g, &arch, deterministic_params(1)) else {
            continue;
        };
        let with_memo = part.explore().unwrap();
        let off_params = ExploreParams { memo_limit: 0, ..deterministic_params(1) };
        let without_memo =
            TemporalPartitioner::new(&g, &arch, off_params).unwrap().explore().unwrap();
        assert_eq!(with_memo.to_csv(), without_memo.to_csv(), "case {case}: CSV diverged");
        assert_eq!(with_memo.best, without_memo.best, "case {case}: solution diverged");
        let on = with_memo.structured_totals();
        let off = without_memo.structured_totals();
        assert_eq!(off.dominance_prunes, 0, "case {case}: disabled memo still pruned");
        nodes_on += on.nodes;
        nodes_off += off.nodes;
        prunes += on.dominance_prunes;
    }
    // The DCT optimality window joins the aggregate: deep enough that the
    // memo provably fires.
    let g = dct_4x4();
    let arch = Architecture::new(Area::new(2048), 512, Latency::from_us(1.0));
    let limits = SearchLimits { node_limit: 50_000_000, time_limit: None };
    let on_solver = StructuredSolver::new(&g, &arch, 2, 1e12, SearchGoal::Optimal, limits);
    let (on_out, on) = on_solver.run();
    let off_solver =
        StructuredSolver::new(&g, &arch, 2, 1e12, SearchGoal::Optimal, limits).with_memo_limit(0);
    let (off_out, off) = off_solver.run();
    assert_eq!(on_out, off_out, "DCT optimum changed under memoization");
    nodes_on += on.nodes;
    nodes_off += off.nodes;
    prunes += on.dominance_prunes;
    // Under ambient fault injection `structured.memo_insert` drops memo
    // inserts, so the pruning differential legitimately shrinks; the
    // result-equality assertions above still had to hold.
    if std::env::var_os("RTR_FAILPOINTS").is_some() {
        return;
    }
    assert!(prunes > 0, "no dominance prunes across the whole matrix");
    assert!(nodes_on < nodes_off, "memoization did not reduce nodes: {nodes_on} vs {nodes_off}");
}
