//! End-to-end exit-code contract of the `rtr-bench-diff` gate binary:
//! `0` on a byte-identical rerun, `1` when a deterministic counter is
//! perturbed, `2` on unusable inputs.

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_rtr-bench-diff");

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("rtr_bench_diff_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn file(&self, name: &str, content: &str) -> PathBuf {
        let path = self.0.join(name);
        std::fs::write(&path, content).expect("write fixture");
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn gate(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN).args(args).output().expect("gate binary runs");
    (
        out.status.code().expect("gate exits normally"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const BASELINE: &str = r#"{
  "name": "smoke",
  "counters": {
    "ar.solves": 5,
    "ar.structured.nodes": 271828,
    "deadline.solves_deadline_dependent": 7,
    "env.speedup_suppressed_1cpu": 1
  },
  "metrics": {
    "ar.elapsed_ms": 120.0
  }
}
"#;

#[test]
fn identical_rerun_exits_zero() {
    let scratch = Scratch::new("identical");
    let old = scratch.file("old.json", BASELINE);
    let new = scratch.file("new.json", BASELINE);
    let (code, stdout, stderr) = gate(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn perturbed_counter_exits_nonzero() {
    let scratch = Scratch::new("perturbed");
    let old = scratch.file("old.json", BASELINE);
    let new = scratch.file(
        "new.json",
        &BASELINE.replace("\"ar.structured.nodes\": 271828", "\"ar.structured.nodes\": 271829"),
    );
    let (code, _, stderr) = gate(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(stderr.contains("ar.structured.nodes"), "{stderr}");
    assert!(stderr.contains("271828 -> 271829"), "{stderr}");
}

#[test]
fn noise_policy_skips_tagged_keys() {
    let scratch = Scratch::new("tagged");
    let old = scratch.file("old.json", BASELINE);
    // Deadline-dependent and environment-suppression keys may drift (or
    // vanish) freely; timing metrics get a tolerance band.
    let new = scratch.file(
        "new.json",
        &BASELINE
            .replace(
                "\"deadline.solves_deadline_dependent\": 7",
                "\"deadline.solves_deadline_dependent\": 99",
            )
            .replace("\"env.speedup_suppressed_1cpu\": 1", "\"env.speedup_suppressed_1cpu\": 0")
            .replace("\"ar.elapsed_ms\": 120.0", "\"ar.elapsed_ms\": 130.0"),
    );
    let (code, stdout, stderr) = gate(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");

    // The same timing drift fails under a zero-width band…
    let (code, _, _) = gate(&["--metric-tol", "0", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(code, 1);
    // …and passes again in counters-only mode.
    let (code, _, _) = gate(&["--counters-only", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(code, 0);
}

#[test]
fn unusable_inputs_exit_two() {
    let scratch = Scratch::new("unusable");
    let ok = scratch.file("ok.json", BASELINE);
    let bad = scratch.file("bad.json", "definitely not json");
    let missing = scratch.0.join("does_not_exist.json");

    let (code, _, stderr) = gate(&[ok.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(code, 2, "stderr: {stderr}");

    let (code, _, _) = gate(&[ok.to_str().unwrap(), missing.to_str().unwrap()]);
    assert_eq!(code, 2);

    let (code, _, _) = gate(&[ok.to_str().unwrap()]);
    assert_eq!(code, 2);

    let renamed = scratch.file("renamed.json", &BASELINE.replace("\"smoke\"", "\"other\""));
    let (code, _, stderr) = gate(&[ok.to_str().unwrap(), renamed.to_str().unwrap()]);
    assert_eq!(code, 2, "stderr: {stderr}");
}
