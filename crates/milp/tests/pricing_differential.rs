//! Pricing differential suite: Dantzig, devex, and steepest-edge pricing
//! must agree on every LP objective and produce identical end-to-end MIP
//! outcomes — pricing changes the pivot *path*, never the answer.

use rtr_milp::{
    solve_lp_priced, solve_mip_warm, Constraint, LinExpr, Model, Pricing, Rel, SolveOptions,
    Status, Variable,
};

const PRICINGS: [Pricing; 3] = [Pricing::Dantzig, Pricing::Devex, Pricing::SteepestEdge];

/// A small transportation-style LP with a unique optimum (netlib-flavor:
/// dense-ish rows, mixed signs, no symmetric costs).
fn transport_lp() -> Model {
    let mut m = Model::new();
    // Ship from 2 sources (capacities 40, 30) to 3 sinks (demands 20, 25, 15)
    // with distinct unit costs.
    let costs = [[4.0, 6.0, 9.0], [5.0, 3.0, 7.0]];
    let xs: Vec<Vec<_>> = (0..2)
        .map(|s| {
            (0..3)
                .map(|d| m.add_var(Variable::continuous(0.0, 60.0).with_name(format!("x{s}{d}"))))
                .collect()
        })
        .collect();
    for (s, row) in xs.iter().enumerate() {
        let cap: LinExpr = row.iter().map(|&v| (1.0, v)).collect();
        m.add_constraint(Constraint::new(cap, Rel::Le, [40.0, 30.0][s]));
    }
    for d in 0..3 {
        let dem: LinExpr = xs.iter().map(|row| (1.0, row[d])).collect();
        m.add_constraint(Constraint::new(dem, Rel::Ge, [20.0, 25.0, 15.0][d]));
    }
    m.minimize(
        xs.iter()
            .enumerate()
            .flat_map(|(s, row)| row.iter().enumerate().map(move |(d, &v)| (costs[s][d], v)))
            .collect::<LinExpr>(),
    );
    m
}

/// A degenerate LP (many tied basic feasible solutions at the optimum).
fn degenerate_lp() -> Model {
    let mut m = Model::new();
    let x = m.add_var(Variable::continuous(0.0, 10.0));
    let y = m.add_var(Variable::continuous(0.0, 10.0));
    let z = m.add_var(Variable::continuous(0.0, 10.0));
    m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 4.0));
    m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, z), Rel::Le, 4.0));
    m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y) + (1.0, z), Rel::Le, 4.0));
    m.add_constraint(Constraint::new(
        LinExpr::new() + (1.0, x) + (1.0, y) + (1.0, z),
        Rel::Le,
        6.0,
    ));
    m.maximize(LinExpr::new() + (3.0, x) + (2.0, y) + (2.0, z));
    m
}

/// Beale's classical cycling example: Dantzig pricing with a naive tie
/// rule cycles forever on this LP; the anti-cycling guard must terminate
/// it at the optimum (-0.05) under every pricing rule.
fn beale_lp() -> Model {
    let mut m = Model::new();
    let x1 = m.add_var(Variable::continuous(0.0, f64::INFINITY));
    let x2 = m.add_var(Variable::continuous(0.0, f64::INFINITY));
    let x3 = m.add_var(Variable::continuous(0.0, f64::INFINITY));
    let x4 = m.add_var(Variable::continuous(0.0, f64::INFINITY));
    m.add_constraint(Constraint::new(
        LinExpr::new() + (0.25, x1) + (-60.0, x2) + (-0.04, x3) + (9.0, x4),
        Rel::Le,
        0.0,
    ));
    m.add_constraint(Constraint::new(
        LinExpr::new() + (0.5, x1) + (-90.0, x2) + (-0.02, x3) + (3.0, x4),
        Rel::Le,
        0.0,
    ));
    m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x3), Rel::Le, 1.0));
    m.minimize(LinExpr::new() + (-0.75, x1) + (150.0, x2) + (-0.02, x3) + (6.0, x4));
    m
}

#[test]
fn all_pricings_agree_on_lp_objectives() {
    for (name, model, expected) in [
        ("transport", transport_lp(), Some(280.0)),
        ("degenerate", degenerate_lp(), None),
        ("beale", beale_lp(), Some(-0.05)),
    ] {
        let mut objectives = Vec::new();
        for pricing in PRICINGS {
            let lp = solve_lp_priced(&model, None, 1e-7, 0, None, pricing).unwrap();
            assert_eq!(
                lp.status,
                rtr_milp::LpStatus::Optimal,
                "{name} under {pricing:?} must solve"
            );
            objectives.push(lp.objective);
        }
        for pair in objectives.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-6,
                "{name}: pricing rules disagree: {objectives:?}"
            );
        }
        if let Some(opt) = expected {
            assert!(
                (objectives[0] - opt).abs() < 1e-6,
                "{name}: expected {opt}, got {}",
                objectives[0]
            );
        }
    }
}

#[test]
fn beale_terminates_under_every_pricing() {
    let model = beale_lp();
    for pricing in PRICINGS {
        let lp = solve_lp_priced(&model, None, 1e-7, 5_000, None, pricing).unwrap();
        assert_eq!(lp.status, rtr_milp::LpStatus::Optimal, "cycled under {pricing:?}");
        assert!(lp.iterations < 1_000, "{pricing:?} took {} pivots", lp.iterations);
    }
}

/// An 8-item knapsack with distinct values, so the optimum is unique and
/// even the solution vector must match across pricing rules.
fn knapsack_mip() -> Model {
    let mut m = Model::new();
    let weights = [5.0, 6.0, 4.0, 3.0, 7.0, 2.0, 5.0, 4.0];
    let values = [10.0, 13.0, 7.0, 5.0, 16.0, 3.0, 11.0, 8.0];
    let vars: Vec<_> = (0..8).map(|_| m.add_var(Variable::binary())).collect();
    m.add_constraint(Constraint::new(
        vars.iter().zip(weights).map(|(&v, w)| (w, v)).collect::<LinExpr>(),
        Rel::Le,
        17.0,
    ));
    m.maximize(vars.iter().zip(values).map(|(&v, c)| (c, v)).collect::<LinExpr>());
    m
}

#[test]
fn mip_outcomes_identical_across_pricings() {
    let model = knapsack_mip();
    let mut outcomes = Vec::new();
    for pricing in PRICINGS {
        let mut opts = SolveOptions::optimal();
        opts.pricing = pricing;
        let out = solve_mip_warm(&model, &opts, None).unwrap();
        assert_eq!(out.status, Status::Optimal, "{pricing:?}");
        outcomes.push(out);
    }
    let first = outcomes[0].solution.as_ref().unwrap();
    for out in &outcomes[1..] {
        let sol = out.solution.as_ref().unwrap();
        assert_eq!(first.objective, sol.objective, "objective must be bit-identical");
        assert_eq!(first.values, sol.values, "unique optimum: values must match");
    }
}

#[test]
fn warm_chain_identical_across_pricings() {
    // The paper's subdivision loop: solve, then re-solve the same model
    // warm from the returned root basis. Every pricing rule must produce
    // the same chain of statuses and objectives, warm or cold.
    let mut model = knapsack_mip();
    let mut results = Vec::new();
    for pricing in PRICINGS {
        let mut opts = SolveOptions::optimal();
        opts.pricing = pricing;
        opts.presolve = false; // keep the root basis reusable
        let first = solve_mip_warm(&model, &opts, None).unwrap();
        let basis = first.root_basis.clone();
        // RHS-only mutation: tighten the knapsack capacity, then re-solve
        // warm and cold.
        model.set_rhs(0, 12.0);
        let warm = solve_mip_warm(&model, &opts, basis.as_ref()).unwrap();
        let cold = solve_mip_warm(&model, &opts, None).unwrap();
        model.set_rhs(0, 17.0);
        assert_eq!(warm.status, cold.status, "{pricing:?}");
        let (w, c) = (warm.solution.as_ref().unwrap(), cold.solution.as_ref().unwrap());
        assert_eq!(w.objective, c.objective, "{pricing:?}: warm and cold must agree");
        results.push((first.solution.unwrap().objective, w.objective));
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1], "pricing rules disagree on the warm chain");
    }
}
