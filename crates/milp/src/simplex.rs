//! Bounded-variable primal simplex on the full tableau.
//!
//! The implementation follows the classic textbook method for linear
//! programs with general variable bounds `l ≤ x ≤ u`:
//!
//! * each constraint row gets a slack column, whose bounds encode the
//!   relation (`≤` ⇒ `s ∈ [0, ∞)`, `≥` ⇒ `s ∈ (-∞, 0]`, `=` ⇒ `s = 0`);
//! * the initial basis is the slack identity, nonbasic structurals sit at a
//!   finite bound (free variables at 0);
//! * infeasible basic variables are driven to their violated bound by a
//!   *composite phase 1* (piecewise-linear infeasibility objective with
//!   costs in `{-1, 0, +1}`), so no artificial columns are needed;
//! * nonbasic variables may *bound-flip* without a basis change;
//! * Dantzig pricing with an automatic switch to Bland's rule after a run of
//!   degenerate pivots guards against cycling.

use crate::error::MilpError;
use crate::model::{effective_bounds, Model, Rel, Sense};
use std::time::Instant;

/// Status of an LP relaxation solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A wall-clock deadline fired mid-solve; no conclusion was reached.
    Interrupted,
}

/// Result of an LP relaxation solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpOutcome {
    /// Why the solve stopped.
    pub status: LpStatus,
    /// Values of the structural variables (empty unless `Optimal`).
    pub values: Vec<f64>,
    /// Objective value in the model's original sense (0 unless `Optimal`).
    pub objective: f64,
    /// Simplex iterations performed.
    pub iterations: usize,
}

/// Solves the LP relaxation of `model` (integrality dropped), optionally
/// overriding the structural variable bounds (used by branch and bound).
///
/// `tol` is the feasibility/optimality tolerance; `iteration_limit` of 0
/// selects an automatic limit.
///
/// # Errors
///
/// Returns [`MilpError::IterationLimit`] if the simplex fails to converge
/// within the iteration limit (typically a symptom of cycling on a badly
/// scaled model).
pub fn solve_lp(
    model: &Model,
    bounds_override: Option<&[(f64, f64)]>,
    tol: f64,
    iteration_limit: usize,
) -> Result<LpOutcome, MilpError> {
    solve_lp_with_deadline(model, bounds_override, tol, iteration_limit, None)
}

/// [`solve_lp`] with a wall-clock deadline, checked every few iterations;
/// an expired deadline yields [`LpStatus::Interrupted`].
///
/// # Errors
///
/// Returns [`MilpError::IterationLimit`] like [`solve_lp`].
pub fn solve_lp_with_deadline(
    model: &Model,
    bounds_override: Option<&[(f64, f64)]>,
    tol: f64,
    iteration_limit: usize,
    deadline: Option<Instant>,
) -> Result<LpOutcome, MilpError> {
    let n = model.vars.len();
    let m = model.constraints.len();
    let total = n + m;

    // Column bounds.
    let mut lb = vec![0.0f64; total];
    let mut ub = vec![0.0f64; total];
    for (j, v) in model.vars.iter().enumerate() {
        let (lo, hi) = match bounds_override {
            Some(b) => b[j],
            None => effective_bounds(v),
        };
        lb[j] = lo;
        ub[j] = hi;
        if lo > hi {
            // Bound-tightening in branch and bound can cross bounds: that
            // branch is trivially infeasible.
            return Ok(LpOutcome {
                status: LpStatus::Infeasible,
                values: Vec::new(),
                objective: 0.0,
                iterations: 0,
            });
        }
    }
    for (i, c) in model.constraints.iter().enumerate() {
        let (lo, hi) = match c.rel {
            Rel::Le => (0.0, f64::INFINITY),
            Rel::Ge => (f64::NEG_INFINITY, 0.0),
            Rel::Eq => (0.0, 0.0),
        };
        lb[n + i] = lo;
        ub[n + i] = hi;
    }

    // Costs, folded to minimization.
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0f64; total];
    for (v, c) in model.objective.normalized() {
        cost[v.index()] = sign * c;
    }

    // Dense tableau, initially the constraint matrix with slack identity.
    let mut t = vec![0.0f64; m * total];
    let mut b = vec![0.0f64; m];
    for (i, c) in model.constraints.iter().enumerate() {
        for (v, coeff) in c.expr.normalized() {
            t[i * total + v.index()] = coeff;
        }
        t[i * total + n + i] = 1.0;
        b[i] = c.rhs;
    }

    // Initial point: nonbasics at a finite bound (free vars at 0), slack
    // basis takes up the residual.
    let mut x = vec![0.0f64; total];
    let mut at_upper = vec![false; total];
    for j in 0..n {
        if lb[j].is_finite() {
            x[j] = lb[j];
        } else if ub[j].is_finite() {
            x[j] = ub[j];
            at_upper[j] = true;
        } else {
            x[j] = 0.0;
        }
    }
    let mut basis: Vec<usize> = (n..total).collect();
    let mut is_basic = vec![false; total];
    for &k in &basis {
        is_basic[k] = true;
    }
    for i in 0..m {
        let mut v = b[i];
        for j in 0..n {
            let a = t[i * total + j];
            if a != 0.0 {
                v -= a * x[j];
            }
        }
        x[n + i] = v;
    }

    let limit = if iteration_limit == 0 { 400 * (m + n) + 2000 } else { iteration_limit };
    let piv_eps = 1e-9;
    let mut degenerate_run = 0usize;
    let mut iterations = 0usize;

    loop {
        if iterations >= limit {
            return Err(MilpError::IterationLimit { limit });
        }
        if let Some(deadline) = deadline {
            if iterations.is_multiple_of(16) && Instant::now() >= deadline {
                return Ok(LpOutcome {
                    status: LpStatus::Interrupted,
                    values: Vec::new(),
                    objective: 0.0,
                    iterations,
                });
            }
        }
        iterations += 1;

        // Phase detection and composite phase-1 costs on the basis.
        let mut phase1 = false;
        let mut c_b = vec![0.0f64; m];
        for i in 0..m {
            let k = basis[i];
            if x[k] < lb[k] - tol {
                c_b[i] = -1.0;
                phase1 = true;
            } else if x[k] > ub[k] + tol {
                c_b[i] = 1.0;
                phase1 = true;
            }
        }
        if !phase1 {
            for i in 0..m {
                c_b[i] = cost[basis[i]];
            }
        }

        // Reduced costs d_j = c_j - c_B' T_j for nonbasic columns.
        let mut y = vec![0.0f64; total];
        for i in 0..m {
            let cbi = c_b[i];
            if cbi != 0.0 {
                let row = &t[i * total..(i + 1) * total];
                for (j, yj) in y.iter_mut().enumerate() {
                    *yj += cbi * row[j];
                }
            }
        }

        let use_bland = degenerate_run > 60;
        let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, direction)
        for j in 0..total {
            if is_basic[j] {
                continue;
            }
            let cj = if phase1 { 0.0 } else { cost[j] };
            let d = cj - y[j];
            let lower_finite = lb[j].is_finite();
            let upper_finite = ub[j].is_finite();
            if lower_finite && upper_finite && ub[j] - lb[j] <= tol {
                continue; // fixed variable
            }
            let dir = if !lower_finite && !upper_finite {
                // Free variable: move against the gradient.
                if d < -tol {
                    1.0
                } else if d > tol {
                    -1.0
                } else {
                    continue;
                }
            } else if at_upper[j] {
                if d > tol {
                    -1.0
                } else {
                    continue;
                }
            } else if d < -tol {
                1.0
            } else {
                continue;
            };
            if use_bland {
                entering = Some((j, d.abs(), dir));
                break;
            }
            match entering {
                Some((_, best, _)) if best >= d.abs() => {}
                _ => entering = Some((j, d.abs(), dir)),
            }
        }

        let Some((q, _, dir)) = entering else {
            if phase1 {
                return Ok(LpOutcome {
                    status: LpStatus::Infeasible,
                    values: Vec::new(),
                    objective: 0.0,
                    iterations,
                });
            }
            let values: Vec<f64> = x[..n].to_vec();
            let objective = model.objective.eval(&values);
            return Ok(LpOutcome { status: LpStatus::Optimal, values, objective, iterations });
        };

        // Ratio test: entering q moves by step >= 0 in direction `dir`;
        // basic i changes at rate -dir * T[i][q].
        let own_range = ub[q] - lb[q]; // may be infinite
        let mut best_step = if own_range.is_finite() { own_range } else { f64::INFINITY };
        let mut blocking: Option<(usize, f64)> = None; // (row, bound the leaving var hits)
        for i in 0..m {
            let alpha = t[i * total + q];
            if alpha.abs() <= piv_eps {
                continue;
            }
            let rate = -dir * alpha;
            let k = basis[i];
            let v = x[k];
            let (limit_bound, dist) = if rate > 0.0 {
                // Basic increases: infeasible-low basics block when they
                // reach their lower bound; infeasible-high basics move
                // further out and never block (phase 1 pricing guarantees a
                // net infeasibility decrease); feasible basics block at
                // their upper bound.
                if v < lb[k] - tol {
                    (lb[k], lb[k] - v)
                } else if v > ub[k] + tol {
                    continue;
                } else if ub[k].is_finite() {
                    (ub[k], (ub[k] - v).max(0.0))
                } else {
                    continue;
                }
            } else {
                // Basic decreases: mirror image of the above.
                if v > ub[k] + tol {
                    (ub[k], v - ub[k])
                } else if v < lb[k] - tol {
                    continue;
                } else if lb[k].is_finite() {
                    (lb[k], (v - lb[k]).max(0.0))
                } else {
                    continue;
                }
            };
            let step = dist / rate.abs();
            if step < best_step - 1e-12 {
                best_step = step;
                blocking = Some((i, limit_bound));
            } else if step <= best_step + 1e-12 && blocking.is_some() && use_bland {
                // Bland tie-break: prefer the lowest leaving index.
                let (bi, _) = blocking.unwrap();
                if basis[i] < basis[bi] {
                    blocking = Some((i, limit_bound));
                }
            }
        }

        if best_step.is_infinite() {
            debug_assert!(!phase1, "phase 1 must always have a blocking bound");
            return Ok(LpOutcome {
                status: LpStatus::Unbounded,
                values: Vec::new(),
                objective: 0.0,
                iterations,
            });
        }

        if best_step <= tol {
            degenerate_run += 1;
        } else {
            degenerate_run = 0;
        }

        match blocking {
            None => {
                // Bound flip of the entering variable.
                let step = best_step;
                for i in 0..m {
                    let alpha = t[i * total + q];
                    if alpha != 0.0 {
                        x[basis[i]] -= dir * step * alpha;
                    }
                }
                x[q] += dir * step;
                at_upper[q] = !at_upper[q];
            }
            Some((r, leave_bound)) => {
                let step = best_step;
                for i in 0..m {
                    if i == r {
                        continue;
                    }
                    let alpha = t[i * total + q];
                    if alpha != 0.0 {
                        x[basis[i]] -= dir * step * alpha;
                    }
                }
                let leaving = basis[r];
                x[q] += dir * step;
                x[leaving] = leave_bound;
                at_upper[leaving] =
                    (leave_bound - ub[leaving]).abs() <= tol && ub[leaving].is_finite();
                is_basic[leaving] = false;
                is_basic[q] = true;
                basis[r] = q;

                // Gauss-Jordan pivot on (r, q).
                let piv = t[r * total + q];
                let (before, rest) = t.split_at_mut(r * total);
                let (row_r, after) = rest.split_at_mut(total);
                let inv = 1.0 / piv;
                for val in row_r.iter_mut() {
                    *val *= inv;
                }
                let eliminate = |row: &mut [f64]| {
                    let factor = row[q];
                    if factor != 0.0 {
                        for (val, &rv) in row.iter_mut().zip(row_r.iter()) {
                            *val -= factor * rv;
                        }
                    }
                };
                for chunk in before.chunks_mut(total) {
                    eliminate(chunk);
                }
                for chunk in after.chunks_mut(total) {
                    eliminate(chunk);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, LinExpr, Model, Rel, Variable};

    const TOL: f64 = 1e-7;

    fn lp(model: &Model) -> LpOutcome {
        solve_lp(model, None, TOL, 0).expect("no iteration limit expected")
    }

    #[test]
    fn simple_maximize() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig)
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 4.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (2.0, y), Rel::Le, 12.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (3.0, x) + (2.0, y), Rel::Le, 18.0));
        m.maximize(LinExpr::new() + (3.0, x) + (5.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 36.0).abs() < 1e-6);
        assert!((out.values[0] - 2.0).abs() < 1e-6);
        assert!((out.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_with_ge_rows_needs_phase1() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0 -> (1.6, 1.2), obj 2.8
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (2.0, y), Rel::Ge, 4.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (3.0, x) + (1.0, y), Rel::Ge, 6.0));
        m.minimize(LinExpr::new() + (1.0, x) + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 2.8).abs() < 1e-6, "objective {}", out.objective);
        assert!((out.values[0] - 1.6).abs() < 1e-6);
        assert!((out.values[1] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2 -> x=6, y=4, obj 24
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Eq, 10.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (-1.0, y), Rel::Eq, 2.0));
        m.minimize(LinExpr::new() + (2.0, x) + (3.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 6.0).abs() < 1e-6);
        assert!((out.values[1] - 4.0).abs() < 1e-6);
        assert!((out.objective - 24.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Ge, 2.0));
        assert_eq!(lp(&m).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_conflicting_rows() {
        let mut m = Model::new();
        let x = m.add_var(Variable::free());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Ge, 5.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 3.0));
        assert_eq!(lp(&m).status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        m.maximize(LinExpr::new() + (1.0, x));
        assert_eq!(lp(&m).status, LpStatus::Unbounded);
    }

    #[test]
    fn bounded_by_variable_bounds_only() {
        // No constraints at all: optimum sits on a variable bound.
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(-3.0, 7.0));
        m.maximize(LinExpr::new() + (2.0, x));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 7.0).abs() < 1e-9);
        assert!((out.objective - 14.0).abs() < 1e-9);
    }

    #[test]
    fn free_variable_enters() {
        // min y s.t. y >= x - 2, y >= -x  with x free -> x = 1, y = -1.
        let mut m = Model::new();
        let x = m.add_var(Variable::free());
        let y = m.add_var(Variable::free());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y) + (-1.0, x), Rel::Ge, -2.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y) + (1.0, x), Rel::Ge, 0.0));
        m.minimize(LinExpr::new() + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective + 1.0).abs() < 1e-6, "objective {}", out.objective);
    }

    #[test]
    fn upper_bounded_vars_flip() {
        // max x + y with x,y in [0,1], x + y <= 1.5 -> 1.5
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 1.0));
        let y = m.add_var(Variable::continuous(0.0, 1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 1.5));
        m.maximize(LinExpr::new() + (1.0, x) + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_le_needs_phase1() {
        // x + y <= -1 with x,y >= -5: feasible, e.g. (-5, 4). min x+y -> -10.
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(-5.0, 5.0));
        let y = m.add_var(Variable::continuous(-5.0, 5.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, -1.0));
        m.minimize(LinExpr::new() + (1.0, x) + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective + 10.0).abs() < 1e-6);
    }

    #[test]
    fn bounds_override_is_respected() {
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 10.0));
        m.maximize(LinExpr::new() + (1.0, x));
        let out = solve_lp(&m, Some(&[(0.0, 3.0)]), TOL, 0).unwrap();
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn crossed_override_bounds_are_infeasible() {
        let mut m = Model::new();
        let _ = m.add_var(Variable::continuous(0.0, 10.0));
        let out = solve_lp(&m, Some(&[(4.0, 3.0)]), TOL, 0).unwrap();
        assert_eq!(out.status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Beale's classic cycling example (under Dantzig pricing without
        // safeguards); our Bland fallback must terminate it.
        let mut m = Model::new();
        let x1 = m.add_var(Variable::non_negative());
        let x2 = m.add_var(Variable::non_negative());
        let x3 = m.add_var(Variable::non_negative());
        let x4 = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(
            LinExpr::new() + (0.25, x1) + (-8.0, x2) + (-1.0, x3) + (9.0, x4),
            Rel::Le,
            0.0,
        ));
        m.add_constraint(Constraint::new(
            LinExpr::new() + (0.5, x1) + (-12.0, x2) + (-0.5, x3) + (3.0, x4),
            Rel::Le,
            0.0,
        ));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x3), Rel::Le, 1.0));
        m.minimize(LinExpr::new() + (-0.75, x1) + (150.0, x2) + (-0.02, x3) + (6.0, x4));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        // Optimum: x1 = 1, x3 = 1, x2 = x4 = 0 -> -0.75 - 0.02 = -0.77.
        assert!((out.objective + 0.77).abs() < 1e-6, "objective {}", out.objective);
    }

    #[test]
    fn fixed_variables_are_skipped() {
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(2.0, 2.0));
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 5.0));
        m.maximize(LinExpr::new() + (1.0, x) + (1.0, y));
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 2.0).abs() < 1e-9);
        assert!((out.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn expired_deadline_interrupts() {
        let mut m = Model::new();
        let x = m.add_var(Variable::non_negative());
        let y = m.add_var(Variable::non_negative());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 4.0));
        m.maximize(LinExpr::new() + (1.0, x) + (2.0, y));
        let past = std::time::Instant::now() - std::time::Duration::from_secs(1);
        let out = crate::simplex::solve_lp_with_deadline(&m, None, TOL, 0, Some(past)).unwrap();
        assert_eq!(out.status, LpStatus::Interrupted);
        assert!(out.values.is_empty());
    }

    #[test]
    fn larger_random_feasible_lp_agrees_with_known_optimum() {
        // Transportation-style LP with a known optimum: two suppliers (10, 15),
        // three consumers (8, 7, 10); costs minimize to 8*1+2*3+5*2+10*1 = 34
        // for cost matrix [[1,3,4],[4,2,1]] — verified by hand.
        let mut m = Model::new();
        let mut ship = Vec::new();
        for _ in 0..6 {
            ship.push(m.add_var(Variable::non_negative()));
        }
        let cost = [1.0, 3.0, 4.0, 4.0, 2.0, 1.0];
        // Supply rows.
        m.add_constraint(Constraint::new(
            LinExpr::new() + (1.0, ship[0]) + (1.0, ship[1]) + (1.0, ship[2]),
            Rel::Le,
            10.0,
        ));
        m.add_constraint(Constraint::new(
            LinExpr::new() + (1.0, ship[3]) + (1.0, ship[4]) + (1.0, ship[5]),
            Rel::Le,
            15.0,
        ));
        // Demand columns.
        for (j, d) in [8.0, 7.0, 10.0].iter().enumerate() {
            m.add_constraint(Constraint::new(
                LinExpr::new() + (1.0, ship[j]) + (1.0, ship[3 + j]),
                Rel::Ge,
                *d,
            ));
        }
        m.minimize(ship.iter().zip(cost).map(|(&v, c)| (c, v)).collect());
        let out = lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 34.0).abs() < 1e-6, "objective {}", out.objective);
    }
}
