//! Full-stack runs over the extended workload gallery (FFT, JPEG): explore,
//! validate, analyze, and simulate each, in both reconfiguration regimes.

use rtrpart::core::SolutionAnalysis;
use rtrpart::graph::{Area, Latency, TaskGraph};
use rtrpart::sim::{simulate, simulate_with, SimOptions};
use rtrpart::{validate_solution, Architecture, ExploreParams, SearchLimits, TemporalPartitioner};
use std::time::Duration;

fn quick_params() -> ExploreParams {
    ExploreParams {
        delta: Latency::from_ns(100.0),
        gamma: 2,
        limits: SearchLimits { node_limit: 3_000_000, time_limit: Some(Duration::from_secs(1)) },
        time_budget: Some(Duration::from_secs(20)),
        ..Default::default()
    }
}

fn full_stack(graph: &TaskGraph, name: &str) {
    let r_max = (graph.total_min_area().units() / 2).max(64);
    for ct in [Latency::from_ns(200.0), Latency::from_ms(2.0)] {
        let arch = Architecture::new(Area::new(r_max), 4096, ct);
        let part =
            TemporalPartitioner::new(graph, &arch, quick_params()).expect("tasks fit the device");
        let ex = part.explore().expect("exploration runs");
        let best = ex
            .best
            .unwrap_or_else(|| panic!("{name} at C_T {ct}: expected a feasible partitioning"));
        assert!(
            validate_solution(graph, &arch, &best).is_empty(),
            "{name} at C_T {ct}: invalid solution"
        );
        // Simulator agrees with the analytic model.
        let report = simulate(graph, &arch, &best).expect("valid solution");
        let analytic = best.total_latency(graph, &arch);
        assert!(
            (report.total_latency.as_ns() - analytic.as_ns()).abs() < 1e-6,
            "{name}: simulator {} vs analytic {}",
            report.total_latency,
            analytic
        );
        // Prefetch never hurts.
        let pre = simulate_with(graph, &arch, &best, &SimOptions { prefetch: true })
            .expect("valid solution");
        assert!(pre.total_latency <= report.total_latency, "{name}: prefetch slower");
        // Analysis invariants.
        let analysis = SolutionAnalysis::analyze(graph, &arch, &best);
        assert_eq!(analysis.partitions.len() as u32, best.partitions_used());
        for p in &analysis.partitions {
            assert!(p.area_utilization > 0.0 && p.area_utilization <= 1.0, "{name}");
            assert!(p.parallelism >= 1.0 - 1e-9, "{name}: parallelism below 1");
        }
        assert!(analysis.memory_pressure <= 1.0, "{name}: memory over capacity");
    }
}

#[test]
fn fft_16_full_stack() {
    let g = rtrpart::workloads::fft::fft_graph(16, 4).expect("valid shape");
    full_stack(&g, "fft_16");
}

#[test]
fn fft_8_fine_grained_full_stack() {
    let g = rtrpart::workloads::fft::fft_graph(8, 1).expect("valid shape");
    full_stack(&g, "fft_8");
}

#[test]
fn matmul_full_stack() {
    let g = rtrpart::workloads::matmul::matmul_graph(2, 2).expect("valid shape");
    full_stack(&g, "matmul");
}

#[test]
fn jpeg_full_stack() {
    let g = rtrpart::workloads::jpeg::jpeg_pipeline().expect("static construction");
    full_stack(&g, "jpeg");
}

#[test]
fn text_round_trips_for_new_workloads() {
    for (name, g) in [
        ("fft", rtrpart::workloads::fft::fft_graph(16, 2).unwrap()),
        ("jpeg", rtrpart::workloads::jpeg::jpeg_pipeline().unwrap()),
    ] {
        let parsed = TaskGraph::from_text(&g.to_text()).unwrap();
        assert_eq!(g, parsed, "{name}");
    }
}

#[test]
fn solution_text_round_trips_through_the_cli_format() {
    let g = rtrpart::workloads::jpeg::jpeg_pipeline().unwrap();
    let r_max = g.total_min_area().units();
    let arch = Architecture::new(Area::new(r_max), 4096, Latency::from_us(1.0));
    let part = TemporalPartitioner::new(&g, &arch, quick_params()).unwrap();
    let best = part.explore().unwrap().best.expect("feasible");
    let text = best.to_text(&g);
    let parsed = rtrpart::Solution::from_text(&g, &text).expect("round trip");
    assert_eq!(best, parsed);
}
